/root/repo/target/release/deps/numa_ablation-cc2cb95c3281ef91.d: crates/bench/src/bin/numa_ablation.rs

/root/repo/target/release/deps/numa_ablation-cc2cb95c3281ef91: crates/bench/src/bin/numa_ablation.rs

crates/bench/src/bin/numa_ablation.rs:
