/root/repo/target/release/deps/md_neighbor-d002be5de9739d8c.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/release/deps/libmd_neighbor-d002be5de9739d8c.rlib: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/release/deps/libmd_neighbor-d002be5de9739d8c.rmeta: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
