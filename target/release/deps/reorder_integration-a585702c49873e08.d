/root/repo/target/release/deps/reorder_integration-a585702c49873e08.d: tests/reorder_integration.rs

/root/repo/target/release/deps/reorder_integration-a585702c49873e08: tests/reorder_integration.rs

tests/reorder_integration.rs:
