/root/repo/target/release/deps/zz_tmp_conformance_check-8f645755aa9adf35.d: tests/zz_tmp_conformance_check.rs

/root/repo/target/release/deps/zz_tmp_conformance_check-8f645755aa9adf35: tests/zz_tmp_conformance_check.rs

tests/zz_tmp_conformance_check.rs:
