/root/repo/target/release/deps/sweep-55792df174bd3fcb.d: crates/bench/src/bin/sweep.rs

/root/repo/target/release/deps/sweep-55792df174bd3fcb: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
