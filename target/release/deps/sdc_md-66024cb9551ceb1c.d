/root/repo/target/release/deps/sdc_md-66024cb9551ceb1c.d: src/lib.rs

/root/repo/target/release/deps/libsdc_md-66024cb9551ceb1c.rlib: src/lib.rs

/root/repo/target/release/deps/libsdc_md-66024cb9551ceb1c.rmeta: src/lib.rs

src/lib.rs:
