/root/repo/target/release/deps/sdc_md-46fa1248a8c63979.d: src/lib.rs

/root/repo/target/release/deps/libsdc_md-46fa1248a8c63979.rlib: src/lib.rs

/root/repo/target/release/deps/libsdc_md-46fa1248a8c63979.rmeta: src/lib.rs

src/lib.rs:
