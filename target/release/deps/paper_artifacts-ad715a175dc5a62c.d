/root/repo/target/release/deps/paper_artifacts-ad715a175dc5a62c.d: tests/paper_artifacts.rs

/root/repo/target/release/deps/paper_artifacts-ad715a175dc5a62c: tests/paper_artifacts.rs

tests/paper_artifacts.rs:
