/root/repo/target/release/deps/table1-168f0af0e542698c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-168f0af0e542698c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
