/root/repo/target/release/deps/proptest-308796da42267bb4.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-308796da42267bb4.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-308796da42267bb4.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
