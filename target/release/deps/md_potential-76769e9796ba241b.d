/root/repo/target/release/deps/md_potential-76769e9796ba241b.d: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

/root/repo/target/release/deps/libmd_potential-76769e9796ba241b.rlib: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

/root/repo/target/release/deps/libmd_potential-76769e9796ba241b.rmeta: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

crates/potential/src/lib.rs:
crates/potential/src/cutoff.rs:
crates/potential/src/eam/mod.rs:
crates/potential/src/eam/analytic.rs:
crates/potential/src/eam/file.rs:
crates/potential/src/eam/tabulated.rs:
crates/potential/src/pair/mod.rs:
crates/potential/src/pair/lj.rs:
crates/potential/src/pair/morse.rs:
crates/potential/src/spline.rs:
crates/potential/src/traits.rs:
