/root/repo/target/release/deps/zz_tmp_timing-b764d8184f0e9ba1.d: tests/zz_tmp_timing.rs

/root/repo/target/release/deps/zz_tmp_timing-b764d8184f0e9ba1: tests/zz_tmp_timing.rs

tests/zz_tmp_timing.rs:
