/root/repo/target/release/deps/memory_report-eba3da699f68bae8.d: crates/bench/src/bin/memory_report.rs

/root/repo/target/release/deps/memory_report-eba3da699f68bae8: crates/bench/src/bin/memory_report.rs

crates/bench/src/bin/memory_report.rs:
