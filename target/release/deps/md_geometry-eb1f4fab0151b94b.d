/root/repo/target/release/deps/md_geometry-eb1f4fab0151b94b.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/release/deps/libmd_geometry-eb1f4fab0151b94b.rlib: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/release/deps/libmd_geometry-eb1f4fab0151b94b.rmeta: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/lattice.rs:
crates/geometry/src/simbox.rs:
crates/geometry/src/vec3.rs:
