/root/repo/target/release/deps/rand-87e5965a0213af5e.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-87e5965a0213af5e.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-87e5965a0213af5e.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
