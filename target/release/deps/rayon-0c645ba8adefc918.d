/root/repo/target/release/deps/rayon-0c645ba8adefc918.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-0c645ba8adefc918.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-0c645ba8adefc918.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
