/root/repo/target/release/deps/parking_lot-18f51ebe241992ac.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-18f51ebe241992ac.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-18f51ebe241992ac.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
