/root/repo/target/release/deps/md_perfmodel-0c9c2ff734767155.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

/root/repo/target/release/deps/libmd_perfmodel-0c9c2ff734767155.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

/root/repo/target/release/deps/libmd_perfmodel-0c9c2ff734767155.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/table.rs:
