/root/repo/target/release/deps/reorder_ablation-acb35c3046eb77ba.d: crates/bench/src/bin/reorder_ablation.rs

/root/repo/target/release/deps/reorder_ablation-acb35c3046eb77ba: crates/bench/src/bin/reorder_ablation.rs

crates/bench/src/bin/reorder_ablation.rs:
