/root/repo/target/release/deps/md_neighbor-a509dcb5c006b9c3.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/release/deps/libmd_neighbor-a509dcb5c006b9c3.rlib: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/release/deps/libmd_neighbor-a509dcb5c006b9c3.rmeta: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
