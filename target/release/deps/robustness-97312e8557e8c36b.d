/root/repo/target/release/deps/robustness-97312e8557e8c36b.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-97312e8557e8c36b: tests/robustness.rs

tests/robustness.rs:
