/root/repo/target/release/deps/mdrun-8a974b129b1c8400.d: crates/bench/src/bin/mdrun.rs

/root/repo/target/release/deps/mdrun-8a974b129b1c8400: crates/bench/src/bin/mdrun.rs

crates/bench/src/bin/mdrun.rs:
