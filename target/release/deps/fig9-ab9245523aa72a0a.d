/root/repo/target/release/deps/fig9-ab9245523aa72a0a.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-ab9245523aa72a0a: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
