/root/repo/target/release/deps/sdc_core-f1ff90a7f7d15650.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs

/root/repo/target/release/deps/libsdc_core-f1ff90a7f7d15650.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs

/root/repo/target/release/deps/libsdc_core-f1ff90a7f7d15650.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/decomposition.rs:
crates/core/src/plan.rs:
crates/core/src/scatter.rs:
crates/core/src/shared.rs:
crates/core/src/strategies/mod.rs:
crates/core/src/strategies/atomic.rs:
crates/core/src/strategies/critical.rs:
crates/core/src/strategies/localwrite.rs:
crates/core/src/strategies/locked.rs:
crates/core/src/strategies/privatized.rs:
crates/core/src/strategies/redundant.rs:
crates/core/src/strategies/sdc.rs:
crates/core/src/strategies/serial.rs:
