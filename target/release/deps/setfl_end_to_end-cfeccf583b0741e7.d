/root/repo/target/release/deps/setfl_end_to_end-cfeccf583b0741e7.d: tests/setfl_end_to_end.rs

/root/repo/target/release/deps/setfl_end_to_end-cfeccf583b0741e7: tests/setfl_end_to_end.rs

tests/setfl_end_to_end.rs:
