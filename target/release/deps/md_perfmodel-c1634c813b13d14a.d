/root/repo/target/release/deps/md_perfmodel-c1634c813b13d14a.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/release/deps/libmd_perfmodel-c1634c813b13d14a.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/release/deps/libmd_perfmodel-c1634c813b13d14a.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/rebuild.rs:
crates/perfmodel/src/table.rs:
