/root/repo/target/release/deps/sdc_bench-79ee8503e6b2887f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdc_bench-79ee8503e6b2887f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsdc_bench-79ee8503e6b2887f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
