/root/repo/target/release/deps/physics-e1f0b3b1aed173a8.d: tests/physics.rs

/root/repo/target/release/deps/physics-e1f0b3b1aed173a8: tests/physics.rs

tests/physics.rs:
