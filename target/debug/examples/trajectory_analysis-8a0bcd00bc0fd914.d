/root/repo/target/debug/examples/trajectory_analysis-8a0bcd00bc0fd914.d: examples/trajectory_analysis.rs Cargo.toml

/root/repo/target/debug/examples/libtrajectory_analysis-8a0bcd00bc0fd914.rmeta: examples/trajectory_analysis.rs Cargo.toml

examples/trajectory_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
