/root/repo/target/debug/examples/melt-41823f7acc29bbdd.d: examples/melt.rs Cargo.toml

/root/repo/target/debug/examples/libmelt-41823f7acc29bbdd.rmeta: examples/melt.rs Cargo.toml

examples/melt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
