/root/repo/target/debug/examples/energetic_impact-dc0b1f89b0d4822d.d: examples/energetic_impact.rs

/root/repo/target/debug/examples/energetic_impact-dc0b1f89b0d4822d: examples/energetic_impact.rs

examples/energetic_impact.rs:
