/root/repo/target/debug/examples/energetic_impact-21fc73c5aad3848f.d: examples/energetic_impact.rs Cargo.toml

/root/repo/target/debug/examples/libenergetic_impact-21fc73c5aad3848f.rmeta: examples/energetic_impact.rs Cargo.toml

examples/energetic_impact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
