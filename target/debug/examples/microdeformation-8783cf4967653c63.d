/root/repo/target/debug/examples/microdeformation-8783cf4967653c63.d: examples/microdeformation.rs

/root/repo/target/debug/examples/microdeformation-8783cf4967653c63: examples/microdeformation.rs

examples/microdeformation.rs:
