/root/repo/target/debug/examples/strategy_showdown-bb7abdda33bed4cc.d: examples/strategy_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libstrategy_showdown-bb7abdda33bed4cc.rmeta: examples/strategy_showdown.rs Cargo.toml

examples/strategy_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
