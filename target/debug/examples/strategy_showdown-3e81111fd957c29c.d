/root/repo/target/debug/examples/strategy_showdown-3e81111fd957c29c.d: examples/strategy_showdown.rs

/root/repo/target/debug/examples/strategy_showdown-3e81111fd957c29c: examples/strategy_showdown.rs

examples/strategy_showdown.rs:
