/root/repo/target/debug/examples/dump_model-e5e0b1d9a8198e15.d: crates/perfmodel/examples/dump_model.rs Cargo.toml

/root/repo/target/debug/examples/libdump_model-e5e0b1d9a8198e15.rmeta: crates/perfmodel/examples/dump_model.rs Cargo.toml

crates/perfmodel/examples/dump_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
