/root/repo/target/debug/examples/microdeformation-2063653604b9d047.d: examples/microdeformation.rs Cargo.toml

/root/repo/target/debug/examples/libmicrodeformation-2063653604b9d047.rmeta: examples/microdeformation.rs Cargo.toml

examples/microdeformation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
