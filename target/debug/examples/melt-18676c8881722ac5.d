/root/repo/target/debug/examples/melt-18676c8881722ac5.d: examples/melt.rs

/root/repo/target/debug/examples/melt-18676c8881722ac5: examples/melt.rs

examples/melt.rs:
