/root/repo/target/debug/examples/dump_model-388d4bb24a755826.d: crates/perfmodel/examples/dump_model.rs

/root/repo/target/debug/examples/dump_model-388d4bb24a755826: crates/perfmodel/examples/dump_model.rs

crates/perfmodel/examples/dump_model.rs:
