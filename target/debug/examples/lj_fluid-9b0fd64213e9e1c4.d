/root/repo/target/debug/examples/lj_fluid-9b0fd64213e9e1c4.d: examples/lj_fluid.rs Cargo.toml

/root/repo/target/debug/examples/liblj_fluid-9b0fd64213e9e1c4.rmeta: examples/lj_fluid.rs Cargo.toml

examples/lj_fluid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
