/root/repo/target/debug/examples/trajectory_analysis-429856b66d21bedd.d: examples/trajectory_analysis.rs

/root/repo/target/debug/examples/trajectory_analysis-429856b66d21bedd: examples/trajectory_analysis.rs

examples/trajectory_analysis.rs:
