/root/repo/target/debug/examples/quickstart-8163cd9925442054.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8163cd9925442054: examples/quickstart.rs

examples/quickstart.rs:
