/root/repo/target/debug/examples/lj_fluid-d272b8be041a726c.d: examples/lj_fluid.rs

/root/repo/target/debug/examples/lj_fluid-d272b8be041a726c: examples/lj_fluid.rs

examples/lj_fluid.rs:
