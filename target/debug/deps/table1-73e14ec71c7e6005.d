/root/repo/target/debug/deps/table1-73e14ec71c7e6005.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-73e14ec71c7e6005.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
