/root/repo/target/debug/deps/md_neighbor-29add14d64144064.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs Cargo.toml

/root/repo/target/debug/deps/libmd_neighbor-29add14d64144064.rmeta: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs Cargo.toml

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
