/root/repo/target/debug/deps/fig9-4655b2145e08f120.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-4655b2145e08f120: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
