/root/repo/target/debug/deps/reorder_integration-244d1cffbb585e7b.d: tests/reorder_integration.rs Cargo.toml

/root/repo/target/debug/deps/libreorder_integration-244d1cffbb585e7b.rmeta: tests/reorder_integration.rs Cargo.toml

tests/reorder_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
