/root/repo/target/debug/deps/md_sim-217c001d030ee251.d: crates/sim/src/lib.rs crates/sim/src/analysis/mod.rs crates/sim/src/analysis/averager.rs crates/sim/src/analysis/msd.rs crates/sim/src/analysis/rdf.rs crates/sim/src/analysis/vacf.rs crates/sim/src/checkpoint.rs crates/sim/src/forces/mod.rs crates/sim/src/forces/eam.rs crates/sim/src/forces/pair.rs crates/sim/src/health.rs crates/sim/src/integrate.rs crates/sim/src/output.rs crates/sim/src/sim.rs crates/sim/src/stress.rs crates/sim/src/system.rs crates/sim/src/thermo.rs crates/sim/src/thermostat.rs crates/sim/src/timing.rs crates/sim/src/units.rs crates/sim/src/velocity.rs Cargo.toml

/root/repo/target/debug/deps/libmd_sim-217c001d030ee251.rmeta: crates/sim/src/lib.rs crates/sim/src/analysis/mod.rs crates/sim/src/analysis/averager.rs crates/sim/src/analysis/msd.rs crates/sim/src/analysis/rdf.rs crates/sim/src/analysis/vacf.rs crates/sim/src/checkpoint.rs crates/sim/src/forces/mod.rs crates/sim/src/forces/eam.rs crates/sim/src/forces/pair.rs crates/sim/src/health.rs crates/sim/src/integrate.rs crates/sim/src/output.rs crates/sim/src/sim.rs crates/sim/src/stress.rs crates/sim/src/system.rs crates/sim/src/thermo.rs crates/sim/src/thermostat.rs crates/sim/src/timing.rs crates/sim/src/units.rs crates/sim/src/velocity.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/analysis/mod.rs:
crates/sim/src/analysis/averager.rs:
crates/sim/src/analysis/msd.rs:
crates/sim/src/analysis/rdf.rs:
crates/sim/src/analysis/vacf.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/forces/mod.rs:
crates/sim/src/forces/eam.rs:
crates/sim/src/forces/pair.rs:
crates/sim/src/health.rs:
crates/sim/src/integrate.rs:
crates/sim/src/output.rs:
crates/sim/src/sim.rs:
crates/sim/src/stress.rs:
crates/sim/src/system.rs:
crates/sim/src/thermo.rs:
crates/sim/src/thermostat.rs:
crates/sim/src/timing.rs:
crates/sim/src/units.rs:
crates/sim/src/velocity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
