/root/repo/target/debug/deps/setfl_end_to_end-95ce08e9c48bf570.d: tests/setfl_end_to_end.rs

/root/repo/target/debug/deps/setfl_end_to_end-95ce08e9c48bf570: tests/setfl_end_to_end.rs

tests/setfl_end_to_end.rs:
