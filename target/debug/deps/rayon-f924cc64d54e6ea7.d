/root/repo/target/debug/deps/rayon-f924cc64d54e6ea7.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f924cc64d54e6ea7.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-f924cc64d54e6ea7.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
