/root/repo/target/debug/deps/sdc_md-6a34de91810dd96e.d: src/lib.rs

/root/repo/target/debug/deps/libsdc_md-6a34de91810dd96e.rmeta: src/lib.rs

src/lib.rs:
