/root/repo/target/debug/deps/rayon-e41442527586b0b4.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-e41442527586b0b4.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
