/root/repo/target/debug/deps/robustness-597703af9e2a9776.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-597703af9e2a9776: tests/robustness.rs

tests/robustness.rs:
