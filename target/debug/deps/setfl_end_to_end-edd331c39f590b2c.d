/root/repo/target/debug/deps/setfl_end_to_end-edd331c39f590b2c.d: tests/setfl_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsetfl_end_to_end-edd331c39f590b2c.rmeta: tests/setfl_end_to_end.rs Cargo.toml

tests/setfl_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
