/root/repo/target/debug/deps/memory_report-3dc59db56de8f78c.d: crates/bench/src/bin/memory_report.rs

/root/repo/target/debug/deps/memory_report-3dc59db56de8f78c: crates/bench/src/bin/memory_report.rs

crates/bench/src/bin/memory_report.rs:
