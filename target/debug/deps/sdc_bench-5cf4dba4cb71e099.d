/root/repo/target/debug/deps/sdc_bench-5cf4dba4cb71e099.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdc_bench-5cf4dba4cb71e099.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
