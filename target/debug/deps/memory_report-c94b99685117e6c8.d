/root/repo/target/debug/deps/memory_report-c94b99685117e6c8.d: crates/bench/src/bin/memory_report.rs Cargo.toml

/root/repo/target/debug/deps/libmemory_report-c94b99685117e6c8.rmeta: crates/bench/src/bin/memory_report.rs Cargo.toml

crates/bench/src/bin/memory_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
