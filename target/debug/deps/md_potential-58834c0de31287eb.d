/root/repo/target/debug/deps/md_potential-58834c0de31287eb.d: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs Cargo.toml

/root/repo/target/debug/deps/libmd_potential-58834c0de31287eb.rmeta: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs Cargo.toml

crates/potential/src/lib.rs:
crates/potential/src/cutoff.rs:
crates/potential/src/eam/mod.rs:
crates/potential/src/eam/analytic.rs:
crates/potential/src/eam/file.rs:
crates/potential/src/eam/tabulated.rs:
crates/potential/src/pair/mod.rs:
crates/potential/src/pair/lj.rs:
crates/potential/src/pair/morse.rs:
crates/potential/src/spline.rs:
crates/potential/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
