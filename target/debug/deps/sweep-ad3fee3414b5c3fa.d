/root/repo/target/debug/deps/sweep-ad3fee3414b5c3fa.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-ad3fee3414b5c3fa: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
