/root/repo/target/debug/deps/sdc_md-c621d0f80ab31e32.d: src/lib.rs

/root/repo/target/debug/deps/sdc_md-c621d0f80ab31e32: src/lib.rs

src/lib.rs:
