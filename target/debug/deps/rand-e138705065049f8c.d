/root/repo/target/debug/deps/rand-e138705065049f8c.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e138705065049f8c.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e138705065049f8c.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
