/root/repo/target/debug/deps/sdc_bench-e61b7135a339409d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdc_bench-e61b7135a339409d.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdc_bench-e61b7135a339409d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
