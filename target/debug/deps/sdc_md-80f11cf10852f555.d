/root/repo/target/debug/deps/sdc_md-80f11cf10852f555.d: src/lib.rs

/root/repo/target/debug/deps/libsdc_md-80f11cf10852f555.rlib: src/lib.rs

/root/repo/target/debug/deps/libsdc_md-80f11cf10852f555.rmeta: src/lib.rs

src/lib.rs:
