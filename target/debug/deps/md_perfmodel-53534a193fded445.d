/root/repo/target/debug/deps/md_perfmodel-53534a193fded445.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/libmd_perfmodel-53534a193fded445.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/libmd_perfmodel-53534a193fded445.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/rebuild.rs:
crates/perfmodel/src/table.rs:
