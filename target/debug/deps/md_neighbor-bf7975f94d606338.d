/root/repo/target/debug/deps/md_neighbor-bf7975f94d606338.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/debug/deps/md_neighbor-bf7975f94d606338: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
