/root/repo/target/debug/deps/physics-e5529051336494fe.d: tests/physics.rs

/root/repo/target/debug/deps/physics-e5529051336494fe: tests/physics.rs

tests/physics.rs:
