/root/repo/target/debug/deps/cross_strategy-0e93b8d8c3c15f7e.d: tests/cross_strategy.rs

/root/repo/target/debug/deps/cross_strategy-0e93b8d8c3c15f7e: tests/cross_strategy.rs

tests/cross_strategy.rs:
