/root/repo/target/debug/deps/memory_report-c11623634610acf8.d: crates/bench/src/bin/memory_report.rs

/root/repo/target/debug/deps/libmemory_report-c11623634610acf8.rmeta: crates/bench/src/bin/memory_report.rs

crates/bench/src/bin/memory_report.rs:
