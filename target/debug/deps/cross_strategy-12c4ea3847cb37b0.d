/root/repo/target/debug/deps/cross_strategy-12c4ea3847cb37b0.d: tests/cross_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libcross_strategy-12c4ea3847cb37b0.rmeta: tests/cross_strategy.rs Cargo.toml

tests/cross_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
