/root/repo/target/debug/deps/reorder_ablation-a8a055e013541a02.d: crates/bench/src/bin/reorder_ablation.rs

/root/repo/target/debug/deps/reorder_ablation-a8a055e013541a02: crates/bench/src/bin/reorder_ablation.rs

crates/bench/src/bin/reorder_ablation.rs:
