/root/repo/target/debug/deps/zz_tmp_conformance_check-dfae69cb4004fb56.d: tests/zz_tmp_conformance_check.rs

/root/repo/target/debug/deps/libzz_tmp_conformance_check-dfae69cb4004fb56.rmeta: tests/zz_tmp_conformance_check.rs

tests/zz_tmp_conformance_check.rs:
