/root/repo/target/debug/deps/mdrun-35547191375c04c3.d: crates/bench/src/bin/mdrun.rs

/root/repo/target/debug/deps/mdrun-35547191375c04c3: crates/bench/src/bin/mdrun.rs

crates/bench/src/bin/mdrun.rs:
