/root/repo/target/debug/deps/numa_ablation-027a7aea5a43b76f.d: crates/bench/src/bin/numa_ablation.rs

/root/repo/target/debug/deps/numa_ablation-027a7aea5a43b76f: crates/bench/src/bin/numa_ablation.rs

crates/bench/src/bin/numa_ablation.rs:
