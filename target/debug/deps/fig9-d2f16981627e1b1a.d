/root/repo/target/debug/deps/fig9-d2f16981627e1b1a.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-d2f16981627e1b1a.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
