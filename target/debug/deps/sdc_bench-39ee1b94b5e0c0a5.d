/root/repo/target/debug/deps/sdc_bench-39ee1b94b5e0c0a5.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_bench-39ee1b94b5e0c0a5.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
