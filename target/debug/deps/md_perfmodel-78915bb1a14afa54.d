/root/repo/target/debug/deps/md_perfmodel-78915bb1a14afa54.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmd_perfmodel-78915bb1a14afa54.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
