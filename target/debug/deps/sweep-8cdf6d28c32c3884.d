/root/repo/target/debug/deps/sweep-8cdf6d28c32c3884.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-8cdf6d28c32c3884.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
