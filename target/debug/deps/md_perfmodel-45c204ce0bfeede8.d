/root/repo/target/debug/deps/md_perfmodel-45c204ce0bfeede8.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libmd_perfmodel-45c204ce0bfeede8.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs Cargo.toml

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/rebuild.rs:
crates/perfmodel/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
