/root/repo/target/debug/deps/md_perfmodel-30e6d79925438d55.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/md_perfmodel-30e6d79925438d55: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/rebuild.rs:
crates/perfmodel/src/table.rs:
