/root/repo/target/debug/deps/criterion-80b22dac7f40880a.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-80b22dac7f40880a.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-80b22dac7f40880a.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
