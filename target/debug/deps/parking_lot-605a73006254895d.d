/root/repo/target/debug/deps/parking_lot-605a73006254895d.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-605a73006254895d.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-605a73006254895d.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
