/root/repo/target/debug/deps/sdc_core-cd6edc617f67dd40.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_core-cd6edc617f67dd40.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/decomposition.rs:
crates/core/src/plan.rs:
crates/core/src/scatter.rs:
crates/core/src/shared.rs:
crates/core/src/strategies/mod.rs:
crates/core/src/strategies/atomic.rs:
crates/core/src/strategies/critical.rs:
crates/core/src/strategies/localwrite.rs:
crates/core/src/strategies/locked.rs:
crates/core/src/strategies/privatized.rs:
crates/core/src/strategies/redundant.rs:
crates/core/src/strategies/sdc.rs:
crates/core/src/strategies/serial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
