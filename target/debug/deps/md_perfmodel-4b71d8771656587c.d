/root/repo/target/debug/deps/md_perfmodel-4b71d8771656587c.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/md_perfmodel-4b71d8771656587c: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/table.rs:
