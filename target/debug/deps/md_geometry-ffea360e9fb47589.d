/root/repo/target/debug/deps/md_geometry-ffea360e9fb47589.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/debug/deps/libmd_geometry-ffea360e9fb47589.rmeta: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/lattice.rs:
crates/geometry/src/simbox.rs:
crates/geometry/src/vec3.rs:
