/root/repo/target/debug/deps/md_geometry-3e4152e7a51c638b.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs Cargo.toml

/root/repo/target/debug/deps/libmd_geometry-3e4152e7a51c638b.rmeta: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs Cargo.toml

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/lattice.rs:
crates/geometry/src/simbox.rs:
crates/geometry/src/vec3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
