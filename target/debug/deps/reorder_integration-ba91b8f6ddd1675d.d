/root/repo/target/debug/deps/reorder_integration-ba91b8f6ddd1675d.d: tests/reorder_integration.rs

/root/repo/target/debug/deps/reorder_integration-ba91b8f6ddd1675d: tests/reorder_integration.rs

tests/reorder_integration.rs:
