/root/repo/target/debug/deps/sdc_md-2a8589559e7c8422.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_md-2a8589559e7c8422.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
