/root/repo/target/debug/deps/setfl_end_to_end-43a13d18a0f35a71.d: tests/setfl_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libsetfl_end_to_end-43a13d18a0f35a71.rmeta: tests/setfl_end_to_end.rs Cargo.toml

tests/setfl_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
