/root/repo/target/debug/deps/fig9-098c5bab1e031e28.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-098c5bab1e031e28.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
