/root/repo/target/debug/deps/physics-d16ee17191f14d1c.d: tests/physics.rs Cargo.toml

/root/repo/target/debug/deps/libphysics-d16ee17191f14d1c.rmeta: tests/physics.rs Cargo.toml

tests/physics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
