/root/repo/target/debug/deps/mdrun-d3bfcf308d34ab3b.d: crates/bench/src/bin/mdrun.rs

/root/repo/target/debug/deps/libmdrun-d3bfcf308d34ab3b.rmeta: crates/bench/src/bin/mdrun.rs

crates/bench/src/bin/mdrun.rs:
