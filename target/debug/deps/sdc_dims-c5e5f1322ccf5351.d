/root/repo/target/debug/deps/sdc_dims-c5e5f1322ccf5351.d: crates/bench/benches/sdc_dims.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_dims-c5e5f1322ccf5351.rmeta: crates/bench/benches/sdc_dims.rs Cargo.toml

crates/bench/benches/sdc_dims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
