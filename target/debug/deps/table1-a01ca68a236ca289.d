/root/repo/target/debug/deps/table1-a01ca68a236ca289.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a01ca68a236ca289: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
