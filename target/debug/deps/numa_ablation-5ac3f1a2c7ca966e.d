/root/repo/target/debug/deps/numa_ablation-5ac3f1a2c7ca966e.d: crates/bench/src/bin/numa_ablation.rs

/root/repo/target/debug/deps/libnuma_ablation-5ac3f1a2c7ca966e.rmeta: crates/bench/src/bin/numa_ablation.rs

crates/bench/src/bin/numa_ablation.rs:
