/root/repo/target/debug/deps/reorder_ablation-392137f7338efd02.d: crates/bench/src/bin/reorder_ablation.rs

/root/repo/target/debug/deps/reorder_ablation-392137f7338efd02: crates/bench/src/bin/reorder_ablation.rs

crates/bench/src/bin/reorder_ablation.rs:
