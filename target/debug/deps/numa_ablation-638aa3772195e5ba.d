/root/repo/target/debug/deps/numa_ablation-638aa3772195e5ba.d: crates/bench/src/bin/numa_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libnuma_ablation-638aa3772195e5ba.rmeta: crates/bench/src/bin/numa_ablation.rs Cargo.toml

crates/bench/src/bin/numa_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
