/root/repo/target/debug/deps/robustness-f461cac1b599b490.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-f461cac1b599b490.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
