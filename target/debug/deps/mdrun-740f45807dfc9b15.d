/root/repo/target/debug/deps/mdrun-740f45807dfc9b15.d: crates/bench/src/bin/mdrun.rs

/root/repo/target/debug/deps/mdrun-740f45807dfc9b15: crates/bench/src/bin/mdrun.rs

crates/bench/src/bin/mdrun.rs:
