/root/repo/target/debug/deps/md_neighbor-da91eeab938ba8f7.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/debug/deps/libmd_neighbor-da91eeab938ba8f7.rlib: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/debug/deps/libmd_neighbor-da91eeab938ba8f7.rmeta: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
