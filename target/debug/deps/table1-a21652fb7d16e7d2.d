/root/repo/target/debug/deps/table1-a21652fb7d16e7d2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-a21652fb7d16e7d2.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
