/root/repo/target/debug/deps/robustness-340942900468815e.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-340942900468815e.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
