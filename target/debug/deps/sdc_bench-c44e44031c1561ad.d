/root/repo/target/debug/deps/sdc_bench-c44e44031c1561ad.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sdc_bench-c44e44031c1561ad: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
