/root/repo/target/debug/deps/paper_artifacts-d4383efed8e5261d.d: tests/paper_artifacts.rs

/root/repo/target/debug/deps/paper_artifacts-d4383efed8e5261d: tests/paper_artifacts.rs

tests/paper_artifacts.rs:
