/root/repo/target/debug/deps/md_sim-07b4dde1a0c2fca3.d: crates/sim/src/lib.rs crates/sim/src/analysis/mod.rs crates/sim/src/analysis/averager.rs crates/sim/src/analysis/msd.rs crates/sim/src/analysis/rdf.rs crates/sim/src/analysis/vacf.rs crates/sim/src/checkpoint.rs crates/sim/src/forces/mod.rs crates/sim/src/forces/eam.rs crates/sim/src/forces/pair.rs crates/sim/src/health.rs crates/sim/src/integrate.rs crates/sim/src/output.rs crates/sim/src/sim.rs crates/sim/src/stress.rs crates/sim/src/system.rs crates/sim/src/thermo.rs crates/sim/src/thermostat.rs crates/sim/src/timing.rs crates/sim/src/units.rs crates/sim/src/velocity.rs

/root/repo/target/debug/deps/libmd_sim-07b4dde1a0c2fca3.rlib: crates/sim/src/lib.rs crates/sim/src/analysis/mod.rs crates/sim/src/analysis/averager.rs crates/sim/src/analysis/msd.rs crates/sim/src/analysis/rdf.rs crates/sim/src/analysis/vacf.rs crates/sim/src/checkpoint.rs crates/sim/src/forces/mod.rs crates/sim/src/forces/eam.rs crates/sim/src/forces/pair.rs crates/sim/src/health.rs crates/sim/src/integrate.rs crates/sim/src/output.rs crates/sim/src/sim.rs crates/sim/src/stress.rs crates/sim/src/system.rs crates/sim/src/thermo.rs crates/sim/src/thermostat.rs crates/sim/src/timing.rs crates/sim/src/units.rs crates/sim/src/velocity.rs

/root/repo/target/debug/deps/libmd_sim-07b4dde1a0c2fca3.rmeta: crates/sim/src/lib.rs crates/sim/src/analysis/mod.rs crates/sim/src/analysis/averager.rs crates/sim/src/analysis/msd.rs crates/sim/src/analysis/rdf.rs crates/sim/src/analysis/vacf.rs crates/sim/src/checkpoint.rs crates/sim/src/forces/mod.rs crates/sim/src/forces/eam.rs crates/sim/src/forces/pair.rs crates/sim/src/health.rs crates/sim/src/integrate.rs crates/sim/src/output.rs crates/sim/src/sim.rs crates/sim/src/stress.rs crates/sim/src/system.rs crates/sim/src/thermo.rs crates/sim/src/thermostat.rs crates/sim/src/timing.rs crates/sim/src/units.rs crates/sim/src/velocity.rs

crates/sim/src/lib.rs:
crates/sim/src/analysis/mod.rs:
crates/sim/src/analysis/averager.rs:
crates/sim/src/analysis/msd.rs:
crates/sim/src/analysis/rdf.rs:
crates/sim/src/analysis/vacf.rs:
crates/sim/src/checkpoint.rs:
crates/sim/src/forces/mod.rs:
crates/sim/src/forces/eam.rs:
crates/sim/src/forces/pair.rs:
crates/sim/src/health.rs:
crates/sim/src/integrate.rs:
crates/sim/src/output.rs:
crates/sim/src/sim.rs:
crates/sim/src/stress.rs:
crates/sim/src/system.rs:
crates/sim/src/thermo.rs:
crates/sim/src/thermostat.rs:
crates/sim/src/timing.rs:
crates/sim/src/units.rs:
crates/sim/src/velocity.rs:
