/root/repo/target/debug/deps/cross_strategy-5e80567f38269e1b.d: tests/cross_strategy.rs

/root/repo/target/debug/deps/cross_strategy-5e80567f38269e1b: tests/cross_strategy.rs

tests/cross_strategy.rs:
