/root/repo/target/debug/deps/rand-ea090faf8fea1a52.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-ea090faf8fea1a52.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
