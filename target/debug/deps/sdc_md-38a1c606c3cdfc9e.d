/root/repo/target/debug/deps/sdc_md-38a1c606c3cdfc9e.d: src/lib.rs

/root/repo/target/debug/deps/sdc_md-38a1c606c3cdfc9e: src/lib.rs

src/lib.rs:
