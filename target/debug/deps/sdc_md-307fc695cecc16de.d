/root/repo/target/debug/deps/sdc_md-307fc695cecc16de.d: src/lib.rs

/root/repo/target/debug/deps/libsdc_md-307fc695cecc16de.rlib: src/lib.rs

/root/repo/target/debug/deps/libsdc_md-307fc695cecc16de.rmeta: src/lib.rs

src/lib.rs:
