/root/repo/target/debug/deps/fig9-31db42e91010f931.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-31db42e91010f931.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
