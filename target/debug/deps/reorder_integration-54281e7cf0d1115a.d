/root/repo/target/debug/deps/reorder_integration-54281e7cf0d1115a.d: tests/reorder_integration.rs Cargo.toml

/root/repo/target/debug/deps/libreorder_integration-54281e7cf0d1115a.rmeta: tests/reorder_integration.rs Cargo.toml

tests/reorder_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
