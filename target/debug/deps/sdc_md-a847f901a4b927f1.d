/root/repo/target/debug/deps/sdc_md-a847f901a4b927f1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_md-a847f901a4b927f1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
