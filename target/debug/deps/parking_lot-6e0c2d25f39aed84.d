/root/repo/target/debug/deps/parking_lot-6e0c2d25f39aed84.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-6e0c2d25f39aed84.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
