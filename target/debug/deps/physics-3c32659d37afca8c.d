/root/repo/target/debug/deps/physics-3c32659d37afca8c.d: tests/physics.rs Cargo.toml

/root/repo/target/debug/deps/libphysics-3c32659d37afca8c.rmeta: tests/physics.rs Cargo.toml

tests/physics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
