/root/repo/target/debug/deps/table1-60c47cd252085c9d.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-60c47cd252085c9d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
