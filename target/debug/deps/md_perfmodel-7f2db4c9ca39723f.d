/root/repo/target/debug/deps/md_perfmodel-7f2db4c9ca39723f.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/libmd_perfmodel-7f2db4c9ca39723f.rlib: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/libmd_perfmodel-7f2db4c9ca39723f.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/table.rs:
