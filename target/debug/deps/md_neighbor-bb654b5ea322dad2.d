/root/repo/target/debug/deps/md_neighbor-bb654b5ea322dad2.d: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

/root/repo/target/debug/deps/libmd_neighbor-bb654b5ea322dad2.rmeta: crates/neighbor/src/lib.rs crates/neighbor/src/cell_grid.rs crates/neighbor/src/csr.rs crates/neighbor/src/reorder.rs crates/neighbor/src/stats.rs crates/neighbor/src/verlet.rs

crates/neighbor/src/lib.rs:
crates/neighbor/src/cell_grid.rs:
crates/neighbor/src/csr.rs:
crates/neighbor/src/reorder.rs:
crates/neighbor/src/stats.rs:
crates/neighbor/src/verlet.rs:
