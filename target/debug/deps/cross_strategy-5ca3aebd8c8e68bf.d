/root/repo/target/debug/deps/cross_strategy-5ca3aebd8c8e68bf.d: tests/cross_strategy.rs Cargo.toml

/root/repo/target/debug/deps/libcross_strategy-5ca3aebd8c8e68bf.rmeta: tests/cross_strategy.rs Cargo.toml

tests/cross_strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
