/root/repo/target/debug/deps/sdc_bench-cb1fa9da1d001e41.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdc_bench-cb1fa9da1d001e41.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsdc_bench-cb1fa9da1d001e41.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
