/root/repo/target/debug/deps/md_geometry-2429b17e94b2a9a7.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/debug/deps/libmd_geometry-2429b17e94b2a9a7.rlib: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/debug/deps/libmd_geometry-2429b17e94b2a9a7.rmeta: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/lattice.rs:
crates/geometry/src/simbox.rs:
crates/geometry/src/vec3.rs:
