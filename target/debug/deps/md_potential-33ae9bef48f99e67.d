/root/repo/target/debug/deps/md_potential-33ae9bef48f99e67.d: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

/root/repo/target/debug/deps/libmd_potential-33ae9bef48f99e67.rlib: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

/root/repo/target/debug/deps/libmd_potential-33ae9bef48f99e67.rmeta: crates/potential/src/lib.rs crates/potential/src/cutoff.rs crates/potential/src/eam/mod.rs crates/potential/src/eam/analytic.rs crates/potential/src/eam/file.rs crates/potential/src/eam/tabulated.rs crates/potential/src/pair/mod.rs crates/potential/src/pair/lj.rs crates/potential/src/pair/morse.rs crates/potential/src/spline.rs crates/potential/src/traits.rs

crates/potential/src/lib.rs:
crates/potential/src/cutoff.rs:
crates/potential/src/eam/mod.rs:
crates/potential/src/eam/analytic.rs:
crates/potential/src/eam/file.rs:
crates/potential/src/eam/tabulated.rs:
crates/potential/src/pair/mod.rs:
crates/potential/src/pair/lj.rs:
crates/potential/src/pair/morse.rs:
crates/potential/src/spline.rs:
crates/potential/src/traits.rs:
