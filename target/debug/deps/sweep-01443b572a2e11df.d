/root/repo/target/debug/deps/sweep-01443b572a2e11df.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-01443b572a2e11df: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
