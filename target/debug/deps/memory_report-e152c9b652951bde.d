/root/repo/target/debug/deps/memory_report-e152c9b652951bde.d: crates/bench/src/bin/memory_report.rs

/root/repo/target/debug/deps/memory_report-e152c9b652951bde: crates/bench/src/bin/memory_report.rs

crates/bench/src/bin/memory_report.rs:
