/root/repo/target/debug/deps/criterion-d13ec594d8d3e60a.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d13ec594d8d3e60a.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
