/root/repo/target/debug/deps/table1-0551a62fe355cab4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0551a62fe355cab4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
