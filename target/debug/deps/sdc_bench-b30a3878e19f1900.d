/root/repo/target/debug/deps/sdc_bench-b30a3878e19f1900.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsdc_bench-b30a3878e19f1900.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
