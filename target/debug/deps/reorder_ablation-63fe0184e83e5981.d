/root/repo/target/debug/deps/reorder_ablation-63fe0184e83e5981.d: crates/bench/src/bin/reorder_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libreorder_ablation-63fe0184e83e5981.rmeta: crates/bench/src/bin/reorder_ablation.rs Cargo.toml

crates/bench/src/bin/reorder_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
