/root/repo/target/debug/deps/numa_ablation-f7b09e2d7e3aac85.d: crates/bench/src/bin/numa_ablation.rs

/root/repo/target/debug/deps/numa_ablation-f7b09e2d7e3aac85: crates/bench/src/bin/numa_ablation.rs

crates/bench/src/bin/numa_ablation.rs:
