/root/repo/target/debug/deps/fig9-a5762abd28ea752e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-a5762abd28ea752e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
