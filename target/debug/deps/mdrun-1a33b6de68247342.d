/root/repo/target/debug/deps/mdrun-1a33b6de68247342.d: crates/bench/src/bin/mdrun.rs Cargo.toml

/root/repo/target/debug/deps/libmdrun-1a33b6de68247342.rmeta: crates/bench/src/bin/mdrun.rs Cargo.toml

crates/bench/src/bin/mdrun.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
