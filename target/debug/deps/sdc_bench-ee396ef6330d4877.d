/root/repo/target/debug/deps/sdc_bench-ee396ef6330d4877.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sdc_bench-ee396ef6330d4877: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
