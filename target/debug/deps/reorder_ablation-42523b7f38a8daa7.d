/root/repo/target/debug/deps/reorder_ablation-42523b7f38a8daa7.d: crates/bench/src/bin/reorder_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libreorder_ablation-42523b7f38a8daa7.rmeta: crates/bench/src/bin/reorder_ablation.rs Cargo.toml

crates/bench/src/bin/reorder_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
