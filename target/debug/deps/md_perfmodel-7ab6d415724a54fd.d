/root/repo/target/debug/deps/md_perfmodel-7ab6d415724a54fd.d: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

/root/repo/target/debug/deps/libmd_perfmodel-7ab6d415724a54fd.rmeta: crates/perfmodel/src/lib.rs crates/perfmodel/src/case.rs crates/perfmodel/src/machine.rs crates/perfmodel/src/model.rs crates/perfmodel/src/rebuild.rs crates/perfmodel/src/table.rs

crates/perfmodel/src/lib.rs:
crates/perfmodel/src/case.rs:
crates/perfmodel/src/machine.rs:
crates/perfmodel/src/model.rs:
crates/perfmodel/src/rebuild.rs:
crates/perfmodel/src/table.rs:
