/root/repo/target/debug/deps/md_geometry-f4fcae5ea4af07c4.d: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

/root/repo/target/debug/deps/md_geometry-f4fcae5ea4af07c4: crates/geometry/src/lib.rs crates/geometry/src/aabb.rs crates/geometry/src/lattice.rs crates/geometry/src/simbox.rs crates/geometry/src/vec3.rs

crates/geometry/src/lib.rs:
crates/geometry/src/aabb.rs:
crates/geometry/src/lattice.rs:
crates/geometry/src/simbox.rs:
crates/geometry/src/vec3.rs:
