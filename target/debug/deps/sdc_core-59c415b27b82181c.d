/root/repo/target/debug/deps/sdc_core-59c415b27b82181c.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs

/root/repo/target/debug/deps/libsdc_core-59c415b27b82181c.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/decomposition.rs crates/core/src/plan.rs crates/core/src/scatter.rs crates/core/src/shared.rs crates/core/src/strategies/mod.rs crates/core/src/strategies/atomic.rs crates/core/src/strategies/critical.rs crates/core/src/strategies/localwrite.rs crates/core/src/strategies/locked.rs crates/core/src/strategies/privatized.rs crates/core/src/strategies/redundant.rs crates/core/src/strategies/sdc.rs crates/core/src/strategies/serial.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/decomposition.rs:
crates/core/src/plan.rs:
crates/core/src/scatter.rs:
crates/core/src/shared.rs:
crates/core/src/strategies/mod.rs:
crates/core/src/strategies/atomic.rs:
crates/core/src/strategies/critical.rs:
crates/core/src/strategies/localwrite.rs:
crates/core/src/strategies/locked.rs:
crates/core/src/strategies/privatized.rs:
crates/core/src/strategies/redundant.rs:
crates/core/src/strategies/sdc.rs:
crates/core/src/strategies/serial.rs:
