/root/repo/target/debug/deps/reorder_ablation-00f418bcc6d3f342.d: crates/bench/src/bin/reorder_ablation.rs

/root/repo/target/debug/deps/libreorder_ablation-00f418bcc6d3f342.rmeta: crates/bench/src/bin/reorder_ablation.rs

crates/bench/src/bin/reorder_ablation.rs:
