/root/repo/target/debug/deps/sweep-47b6608eee527810.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/libsweep-47b6608eee527810.rmeta: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
