/root/repo/target/debug/deps/mdrun-212734e464d186eb.d: crates/bench/src/bin/mdrun.rs

/root/repo/target/debug/deps/mdrun-212734e464d186eb: crates/bench/src/bin/mdrun.rs

crates/bench/src/bin/mdrun.rs:
