/root/repo/target/debug/deps/paper_artifacts-007469d76c958552.d: tests/paper_artifacts.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_artifacts-007469d76c958552.rmeta: tests/paper_artifacts.rs Cargo.toml

tests/paper_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
