/root/repo/target/debug/deps/sweep-bf3bc5849b670065.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-bf3bc5849b670065.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
