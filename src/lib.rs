//! # sdc-md — Spatial Decomposition Coloring for molecular dynamics
//!
//! Facade crate for the `sdc-md` workspace, a from-scratch Rust reproduction
//! of *"Efficient Parallel Implementation of Molecular Dynamics with Embedded
//! Atom Method on Multi-core Platforms"* (Hu, Liu & Li, ICPP Workshops 2009).
//!
//! The workspace implements:
//!
//! * [`geometry`] — vectors, periodic boxes, BCC/FCC lattices;
//! * [`neighbor`] — linked-cell binning, Verlet half/full neighbor lists in
//!   CSR form, and the paper's data-reordering optimizations (§II.D);
//! * [`potential`] — an analytic Johnson-style Fe EAM potential, a
//!   spline-tabulated EAM, and Lennard-Jones / Morse pair potentials;
//! * [`core`] — the paper's contribution: **Spatial Decomposition Coloring**
//!   plus the baseline strategies it is compared against (critical section,
//!   atomics, share-array privatization, redundant computation);
//! * [`sim`] — a complete MD engine (three-phase EAM forces, velocity
//!   Verlet, thermostats, observables, phase-resolved timing);
//! * [`perfmodel`] — a calibrated multicore cost model that regenerates the
//!   paper's Table 1 and Fig. 9 on machines without 16 physical cores.
//!
//! ## Quickstart
//!
//! ```
//! use sdc_md::prelude::*;
//!
//! // A small BCC iron crystal (the paper's workload, scaled down).
//! let spec = LatticeSpec::bcc_fe(9);
//! let mut sim = Simulation::builder(spec)
//!     .potential(AnalyticEam::fe())
//!     .strategy(StrategyKind::Sdc { dims: 3 })
//!     .threads(2)
//!     .temperature(300.0)
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration");
//!
//! sim.run(5);
//! let t = sim.thermo();
//! assert!(t.temperature > 0.0);
//! assert!(t.potential_energy < 0.0); // bound crystal
//! ```

pub use md_geometry as geometry;
pub use md_neighbor as neighbor;
pub use md_perfmodel as perfmodel;
pub use md_potential as potential;
pub use md_sim as sim;
pub use sdc_core as core;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use md_geometry::{Aabb, Axis, Lattice, LatticeSpec, SimBox, Vec3};
    pub use md_neighbor::{CellGrid, Csr, NeighborList, NeighborListKind, VerletConfig};
    pub use md_potential::{
        AnalyticEam, EamPotential, LennardJones, Morse, PairPotential, TabulatedEam,
    };
    pub use md_sim::{
        CheckpointError, EngineError, FaultInjector, ForceEngine, InjectedFault, PotentialChoice,
        RecoveryConfig, RecoveryError, RecoveryReport, SimFault, Simulation, SimulationBuilder,
        System, Thermo, Thermostat, Watchdog, WatchdogConfig,
    };
    pub use sdc_core::{
        ColoredDecomposition, DecompositionConfig, DowngradeEvent, ParallelContext, ScatterExec,
        SdcPlan, StrategyKind,
    };
}
