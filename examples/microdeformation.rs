//! Micro-deformation of pure iron — the paper's §III.B workload ("our four
//! test cases were designed to observe micro-deformation behaviors of the
//! pure Fe metals material").
//!
//! The crystal is thermalized, then strained uniaxially in small increments;
//! at each strain the virial stress is recorded, producing a stress–strain
//! curve whose initial slope is an elastic modulus.
//!
//! ```text
//! cargo run --release --example microdeformation
//! ```

use sdc_md::prelude::*;
use sdc_md::sim::units::EV_PER_A3_TO_GPA;
use sdc_md::sim::StressTensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LatticeSpec::bcc_fe(12);
    let mut sim = Simulation::builder(spec)
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(4)
        .temperature(50.0) // cold crystal: clean elastic response
        .seed(7)
        .thermostat(Thermostat::Berendsen {
            target: 50.0,
            tau: 0.05,
        })
        .build()?;

    println!("equilibrating {} atoms at 50 K…", sim.system().len());
    sim.run(100);
    let tensor0 = sim.engine().pressure_tensor(sim.system());
    let sxx0 = tensor0.components[0] * EV_PER_A3_TO_GPA;
    println!("reference σ_xx: {sxx0:.2} GPa\n");

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "strain", "σ_xx(GPa)", "σ_yy(GPa)", "vonMises", "PE/atom (eV)", "T (K)"
    );
    let step_strain = 0.002; // 0.2 % per increment
    let mut total_strain = 0.0;
    let mut first_slope: Option<f64> = None;
    let mut prev_stress = 0.0;
    for k in 0..8 {
        // Uniaxial stretch along x.
        sim.deform(Vec3::new(1.0 + step_strain, 1.0, 1.0));
        total_strain = (1.0 + total_strain) * (1.0 + step_strain) - 1.0;
        sim.run(40); // relax at the new strain
        let t = sim.thermo();
        let tensor: StressTensor = sim.engine().pressure_tensor(sim.system());
        // Tensile stress along the pull axis, relative to the reference
        // state (P_ab is pressure-like: negative under tension).
        let stress = -(tensor.components[0] * EV_PER_A3_TO_GPA - sxx0);
        let syy = -(tensor.components[1] * EV_PER_A3_TO_GPA - sxx0);
        println!(
            "{:>8.4} {:>12.3} {:>12.3} {:>12.3} {:>14.4} {:>8.1}",
            total_strain,
            stress,
            syy,
            tensor.von_mises() * EV_PER_A3_TO_GPA,
            t.potential_energy / sim.system().len() as f64,
            t.temperature
        );
        if k == 0 {
            first_slope = Some(stress / total_strain);
        }
        assert!(
            stress >= prev_stress - 0.5,
            "elastic regime: stress should grow with strain"
        );
        assert!(stress > syy - 0.5, "pull axis carries the load");
        prev_stress = stress;
    }

    if let Some(slope) = first_slope {
        println!(
            "\ninitial stress/strain slope ≈ {slope:.0} GPa \
             (order of magnitude of iron's elastic moduli, ~100–240 GPa)"
        );
    }
    Ok(())
}
