//! All strategies, one crystal: verifies that every parallelization strategy
//! computes identical physics, then times them head-to-head (the measured
//! counterpart of the paper's Fig. 9 on whatever machine this runs on).
//!
//! ```text
//! cargo run --release --example strategy_showdown
//! ```

use sdc_md::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LatticeSpec::bcc_fe(17);
    let threads = 4;
    let steps = 10;
    println!(
        "{} Fe atoms, {threads} threads, {steps} timed steps per strategy\n",
        spec.atom_count()
    );

    let strategies = [
        StrategyKind::Serial,
        StrategyKind::Sdc { dims: 1 },
        StrategyKind::Sdc { dims: 2 },
        StrategyKind::Sdc { dims: 3 },
        StrategyKind::Critical,
        StrategyKind::Atomic,
        StrategyKind::Locks,
        StrategyKind::LocalWrite,
        StrategyKind::Privatized,
        StrategyKind::Redundant,
    ];

    let mut reference_energy: Option<f64> = None;
    let mut serial_time: Option<f64> = None;
    println!(
        "{:<12} {:>14} {:>12} {:>10} {:>22}",
        "strategy", "s/step (D+F)", "speedup", "rebuilds", "total energy (eV)"
    );
    for strategy in strategies {
        let t = if strategy == StrategyKind::Serial { 1 } else { threads };
        let mut sim = Simulation::builder(spec)
            .potential(AnalyticEam::fe())
            .strategy(strategy)
            .threads(t)
            .temperature(300.0)
            .seed(42)
            .build()?;
        sim.run(2); // warm-up
        sim.reset_timers();
        let wall = Instant::now();
        sim.run(steps);
        let _ = wall.elapsed();
        let per_step = sim.timers().paper_time().as_secs_f64() / steps as f64;
        let energy = sim.thermo().total;

        // Same seed + deterministic integrator ⇒ identical trajectories up
        // to FP summation order: total energies agree tightly.
        match reference_energy {
            None => reference_energy = Some(energy),
            Some(e0) => assert!(
                (energy - e0).abs() < 1e-6 * e0.abs(),
                "{strategy}: energy {energy} deviates from serial {e0}"
            ),
        }
        let speedup = match serial_time {
            None => {
                serial_time = Some(per_step);
                1.0
            }
            Some(s) => s / per_step,
        };
        println!(
            "{:<12} {:>14.5} {:>12.2} {:>10} {:>22.6}",
            strategy.name(),
            per_step,
            speedup,
            sim.engine().rebuilds(),
            energy
        );
    }

    println!("\nall strategies agree on the physics ✓");
    println!("(on a single-core host the speedup column stays near 1; run on a");
    println!("multi-core machine — or use `cargo run -p sdc-bench --bin fig9` —");
    println!("to see the paper's ordering emerge)");
    Ok(())
}
