//! Energetic atoms in an iron crystal — the paper's §III.B setup notes that
//! its test cases differ in "the number of atoms and initial energy of the
//! particular atoms". This example realizes that scenario as a miniature
//! cascade: a small cluster of atoms receives a large kinetic kick, and the
//! crystal absorbs it. It is also the most hostile workload for the SDC
//! machinery — violent motion forces frequent list + decomposition rebuilds
//! while energy must stay conserved.
//!
//! ```text
//! cargo run --release --example energetic_impact
//! ```

use sdc_md::prelude::*;
use sdc_md::sim::analysis::MsdTracker;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(12))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(4)
        .temperature(100.0)
        .seed(99)
        .dt(2e-4) // short steps: fast projectiles
        .skin(0.8)
        .build()?;
    let n = sim.system().len();

    // Kick 8 "particular atoms" near the box center to ~25 eV each —
    // two orders of magnitude above thermal.
    let center = sim.system().sim_box().lengths() * 0.5;
    let mut kicked = Vec::new();
    {
        let system = sim.system_mut();
        let positions = system.positions().to_vec();
        for (a, p) in positions.iter().enumerate() {
            if (*p - center).norm() < 4.0 {
                kicked.push(a);
            }
        }
        for (k, &a) in kicked.iter().enumerate() {
            // Outward radial kicks, ~93 Å/ps ≈ 25 eV for iron.
            let dir = (positions[a] - center).normalized();
            let dir = if dir == Vec3::ZERO { Vec3::new(1.0, 0.0, 0.0) } else { dir };
            system.velocities_mut()[a] = dir * (90.0 + 2.0 * k as f64);
        }
    }
    sim.refresh_forces();
    let t0 = sim.thermo();
    println!(
        "{} atoms; kicked {} central atoms to ~25 eV each (T jumped to {:.0} K)",
        n,
        kicked.len(),
        t0.temperature
    );
    println!("\n{}", Thermo::header());
    println!("{t0}");

    let mut msd = MsdTracker::new(sim.system());
    let e0 = t0.total;
    for _ in 0..6 {
        sim.run(50);
        msd.sample(sim.system());
        println!("{}", sim.thermo());
    }
    let t1 = sim.thermo();
    let drift = ((t1.total - e0) / e0).abs();
    println!(
        "\nenergy drift through the cascade: {drift:.2e} (relative), {} rebuilds",
        sim.engine().rebuilds()
    );
    assert!(drift < 5e-3, "energy must survive the cascade");
    assert!(
        sim.engine().rebuilds() >= 2,
        "a cascade must force several list+decomposition rebuilds"
    );

    // The kick thermalizes: kinetic energy spreads from 8 atoms to all of
    // them, leaving the crystal warmer but intact away from the core.
    println!(
        "final T = {:.0} K (kick energy spread over the whole crystal), MSD = {:.3} Å²",
        t1.temperature,
        msd.msd()
    );
    assert!(t1.temperature > 150.0, "crystal must have heated up");
    Ok(())
}
