//! Quickstart: simulate BCC iron with the EAM potential, parallelized with
//! the paper's Spatial Decomposition Coloring method.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdc_md::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 17³-cell BCC iron crystal: 9,826 atoms — big enough for a 3-D
    // decomposition, small enough to run in seconds.
    let spec = LatticeSpec::bcc_fe(17);
    println!(
        "BCC Fe, {} atoms, box {:.1} Å, EAM cutoff 5.67 Å",
        spec.atom_count(),
        spec.sim_box().lengths().x
    );

    let mut sim = Simulation::builder(spec)
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(4)
        .temperature(300.0)
        .seed(2009)
        .build()?;

    // Show the coloring the engine built. On a box too small for 3-D SDC
    // the builder degrades gracefully and there is no plan to show.
    for event in sim.downgrades() {
        println!("note: {event}");
    }
    match sim.engine().plan() {
        Some(plan) => {
            let d = plan.decomposition();
            println!(
                "decomposition: {:?} subdomains, {} colors, {} subdomains/color\n",
                d.counts(),
                d.color_count(),
                d.subdomains_per_color()
            );
        }
        None => println!("running with {} (no SDC plan)\n", sim.engine().strategy()),
    }

    println!("{}", Thermo::header());
    println!("{}", sim.thermo());
    for _ in 0..5 {
        sim.run(20);
        println!("{}", sim.thermo());
    }

    println!("\nphase timing (the paper times Density + Force only):");
    println!("{}", sim.timers());
    Ok(())
}
