//! SDC beyond EAM: a Lennard-Jones system driven through the same Spatial
//! Decomposition Coloring machinery — the paper's conclusion claims "our
//! method can be applied in MD simulations with other potentials", and this
//! example is that claim running.
//!
//! ```text
//! cargo run --release --example lj_fluid
//! ```

use sdc_md::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An FCC argon-like LJ crystal: ε = 0.0104 eV, σ = 3.4 Å, rc = 2.5 σ.
    let (eps, sigma) = (0.0104, 3.4);
    let a = 1.5496 * sigma; // FCC equilibrium lattice constant in σ units
    let spec = LatticeSpec::new(Lattice::Fcc, a, [8, 8, 8]);
    println!(
        "LJ argon: {} atoms, FCC a = {a:.2} Å, rc = {:.2} Å",
        spec.atom_count(),
        2.5 * sigma
    );

    let mut sim = Simulation::builder(spec)
        .pair_potential(LennardJones::new(eps, sigma, 2.5 * sigma))
        .mass(39.948) // argon
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(4)
        .temperature(30.0)
        .seed(77)
        .dt(5e-3)
        .build()?;

    for event in sim.downgrades() {
        println!("note: {event}");
    }
    match sim.engine().plan() {
        Some(plan) => {
            let d = plan.decomposition();
            println!(
                "SDC plan: {:?} subdomains, {} colors — same coloring machinery as EAM\n",
                d.counts(),
                d.color_count()
            );
        }
        None => println!("running with {} (no SDC plan)\n", sim.engine().strategy()),
    }

    println!("{}", Thermo::header());
    println!("{}", sim.thermo());
    let e0 = sim.thermo().total;
    for _ in 0..5 {
        sim.run(40);
        println!("{}", sim.thermo());
    }
    let e1 = sim.thermo().total;
    let drift = ((e1 - e0) / e0).abs();
    println!("\nNVE energy drift over 200 steps: {:.2e} (relative)", drift);
    assert!(drift < 1e-3, "energy conservation holds for LJ + SDC");

    // Cross-check against the serial engine: identical forces.
    let mut serial = Simulation::builder(spec)
        .pair_potential(LennardJones::new(eps, sigma, 2.5 * sigma))
        .mass(39.948)
        .strategy(StrategyKind::Serial)
        .temperature(30.0)
        .seed(77)
        .dt(5e-3)
        .build()?;
    serial.run(200);
    let d_total = (serial.thermo().total - e1).abs();
    println!("serial-vs-SDC total-energy difference after 200 steps: {d_total:.2e} eV");
    assert!(d_total < 1e-6 * e1.abs());
    println!("SDC reproduces the serial LJ trajectory ✓");
    Ok(())
}
