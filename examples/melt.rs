//! Heating a small iron crystal through loss of crystalline order.
//!
//! Ramps the thermostat target upward and tracks temperature, potential
//! energy and mean-squared displacement (MSD). As the lattice destabilizes
//! the MSD switches from bounded thermal rattling to diffusive growth —
//! the classic computational melting signature.
//!
//! ```text
//! cargo run --release --example melt
//! ```

use sdc_md::prelude::*;

fn msd(reference: &[Vec3], sim: &Simulation) -> f64 {
    // Positions wrap under PBC; for the short runs here atoms move far less
    // than half a box, so the minimum-image displacement is the physical one.
    let bx = sim.system().sim_box();
    reference
        .iter()
        .zip(sim.system().positions())
        .map(|(&a, &b)| bx.min_image(b, a).norm_sq())
        .sum::<f64>()
        / reference.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = LatticeSpec::bcc_fe(10);
    let mut sim = Simulation::builder(spec)
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Privatized) // SDC needs ≥ 24 Å boxes; SAP works anywhere
        .threads(2)
        .temperature(300.0)
        .seed(3)
        .dt(2e-3)
        .thermostat(Thermostat::Berendsen {
            target: 300.0,
            tau: 0.05,
        })
        .build()?;

    let reference = sim.system().positions().to_vec();
    println!(
        "heating {} Fe atoms: 300 K → 3500 K ramp\n",
        sim.system().len()
    );
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "target(K)", "T(K)", "PE/atom (eV)", "MSD (Å²)"
    );

    let mut last_msd = 0.0;
    for stage in 0..8 {
        let target = 300.0 + 450.0 * stage as f64;
        sim.set_thermostat(Thermostat::Berendsen { target, tau: 0.05 });
        sim.run(150);
        let t = sim.thermo();
        last_msd = msd(&reference, &sim);
        println!(
            "{:>10.0} {:>10.0} {:>14.4} {:>12.3}",
            target,
            t.temperature,
            t.potential_energy / sim.system().len() as f64,
            last_msd
        );
    }

    // At 3000+ K the iron-like crystal is far above any melting point: atoms
    // must have left their lattice sites (nearest-neighbor distance 2.48 Å,
    // so MSD well above ~1 Å² means broken crystalline order).
    println!(
        "\nfinal MSD = {last_msd:.2} Å² — {}",
        if last_msd > 1.0 {
            "crystalline order lost (molten)"
        } else {
            "still crystalline"
        }
    );
    Ok(())
}
