//! Trajectory output and analysis: runs copper (the workspace's second EAM
//! parameterization) at room temperature, dumps an extended-XYZ trajectory
//! plus a CSV thermo log, and computes the standard observables — RDF, MSD
//! and the velocity autocorrelation function.
//!
//! ```text
//! cargo run --release --example trajectory_analysis
//! ```

use sdc_md::prelude::*;
use sdc_md::sim::analysis::{MsdTracker, Rdf, Vacf};
use sdc_md::sim::output::{ThermoLog, XyzWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FCC copper, 4000 atoms.
    let spec = LatticeSpec::new(Lattice::Fcc, 3.615, [10, 10, 10]);
    let mut sim = Simulation::builder(spec)
        .potential(AnalyticEam::cu())
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(4)
        .temperature(300.0)
        .seed(64)
        .build()?;
    println!(
        "FCC Cu, {} atoms, 3-D SDC on {} subdomains",
        sim.system().len(),
        sim.engine()
            .plan()
            .map(|p| p.decomposition().subdomain_count())
            .unwrap_or(0)
    );

    let dir = std::env::temp_dir();
    let traj_path = dir.join("cu_trajectory.xyz");
    let log_path = dir.join("cu_thermo.csv");
    let mut traj = XyzWriter::create(&traj_path, "Cu")?;
    let mut log = ThermoLog::create(&log_path)?;

    let mut msd = MsdTracker::new(sim.system());
    let mut vacf = Vacf::new(sim.system());
    let mut rdf = Rdf::new(5.5, 275);

    for block in 0..10 {
        sim.run(20);
        msd.sample(sim.system());
        let c = vacf.sample(sim.system());
        rdf.sample(sim.system());
        traj.write_frame(sim.system(), sim.step_count())?;
        log.log(&sim.thermo())?;
        if block % 3 == 0 {
            println!(
                "step {:>4}: T = {:>6.1} K, MSD = {:.4} Å², VACF = {:+.3}",
                sim.step_count(),
                sim.thermo().temperature,
                msd.msd(),
                c
            );
        }
    }
    traj.flush()?;
    log.flush()?;

    // Structure: the first RDF peak must sit at the FCC nearest-neighbor
    // distance a/√2 = 2.556 Å (thermally broadened).
    let peak = rdf.peak_position();
    println!("\nRDF first peak at {peak:.3} Å (FCC NN distance: 2.556 Å)");
    assert!((peak - 2.556).abs() < 0.15, "peak out of place");

    // A solid at 300 K: atoms rattle but stay bound — MSD well below the
    // squared nearest-neighbor distance.
    println!("final MSD: {:.4} Å² (solid: bounded rattling)", msd.msd());
    assert!(msd.msd() < 1.0);

    println!(
        "\nwrote {} XYZ frames to {} and {} CSV rows to {}",
        traj.frames(),
        traj_path.display(),
        log.rows(),
        log_path.display()
    );
    Ok(())
}
