//! The §II.D data-reordering optimization, end to end: relabeling atoms must
//! not change the physics, only the memory layout.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use sdc_md::prelude::*;

fn shuffled_system(n: usize, seed: u64) -> System {
    let (bx, mut pos) = LatticeSpec::bcc_fe(n).build();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    System::new(bx, pos, 55.845)
}

#[test]
fn reordering_preserves_total_energy_and_temperature() {
    let build = |reorder: bool| {
        Simulation::from_system(shuffled_system(9, 3))
            .potential(AnalyticEam::fe())
            .strategy(StrategyKind::Sdc { dims: 2 })
            .threads(2)
            .temperature(300.0)
            .seed(5)
            .reorder(reorder)
            .build()
            .unwrap()
    };
    let mut plain = build(false);
    let mut sorted = build(true);
    plain.run(30);
    sorted.run(30);
    let (a, b) = (plain.thermo(), sorted.thermo());
    // Different initial labels get different random velocities per label,
    // but the macroscopic state must match statistically; with identical
    // *physical* initial conditions (reorder only relabels after velocity
    // init on the same system+seed) totals match tightly.
    assert!(
        (a.total - b.total).abs() < 1e-6 * a.total.abs(),
        "total {} vs {}",
        a.total,
        b.total
    );
}

#[test]
fn reordering_survives_rebuilds_mid_run() {
    let mut sim = Simulation::from_system(shuffled_system(9, 11))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(2)
        .temperature(800.0)
        .seed(17)
        .reorder(true)
        .skin(0.3)
        .build()
        .unwrap();
    let e0 = sim.thermo().total;
    sim.run(120);
    assert!(sim.engine().rebuilds() >= 1, "must exercise a reorder+rebuild");
    let e1 = sim.thermo().total;
    assert!(((e1 - e0) / e0).abs() < 1e-4, "drift through reorders: {e0} → {e1}");
}

#[test]
fn spatial_sort_improves_neighbor_index_locality() {
    use sdc_md::neighbor::reorder::spatial_permutation;
    let system = shuffled_system(9, 23);
    let (bx, pos) = (system.sim_box(), system.positions());
    let nl = NeighborList::build(bx, pos, VerletConfig::half(5.67, 0.3));
    let spread = |csr: &Csr| -> f64 {
        let mut total = 0.0;
        for (i, row) in csr.iter_rows() {
            for &j in row {
                total += (j as f64 - i as f64).abs();
            }
        }
        total / csr.entries() as f64
    };
    let before = spread(nl.csr());
    let perm = spatial_permutation(bx, pos, 5.97);
    let sorted_pos = perm.apply(pos);
    let nl_sorted = NeighborList::build(bx, &sorted_pos, VerletConfig::half(5.67, 0.3));
    let after = spread(nl_sorted.csr());
    // The whole point of §II.D: after the sort, neighbor indices are close
    // to their owners, so inner-loop reads walk nearby memory.
    assert!(
        after < before * 0.6,
        "mean |j−i| did not improve: {before:.1} → {after:.1}"
    );
}
