//! End-to-end physical invariants through the public API.

use sdc_md::prelude::*;

#[test]
fn nve_conserves_energy_through_rebuilds() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(2)
        .temperature(600.0)
        .seed(8)
        .dt(1e-3)
        .skin(0.4)
        .build()
        .unwrap();
    let e0 = sim.thermo().total;
    sim.run(150);
    let e1 = sim.thermo().total;
    assert!(
        ((e1 - e0) / e0).abs() < 1e-4,
        "energy drift: {e0} → {e1}"
    );
    // 600 K for 150 fs moves atoms enough to trigger at least one
    // list + decomposition rebuild; conservation must survive it.
    assert!(sim.engine().rebuilds() >= 1, "test must exercise rebuilds");
}

#[test]
fn momentum_stays_zero() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Redundant)
        .threads(2)
        .temperature(500.0)
        .seed(4)
        .build()
        .unwrap();
    sim.run(50);
    assert!(sim.system().momentum().norm() < 1e-6);
}

#[test]
fn berendsen_thermostat_reaches_target() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Serial)
        .temperature(900.0)
        .seed(6)
        .thermostat(Thermostat::Berendsen {
            target: 300.0,
            tau: 0.02,
        })
        .build()
        .unwrap();
    sim.run(250);
    let t = sim.thermo().temperature;
    assert!((120.0..480.0).contains(&t), "T = {t}");
}

#[test]
fn cold_crystal_cohesive_energy_is_iron_like() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Serial)
        .build()
        .unwrap();
    sim.run(1);
    let per_atom = sim.thermo().potential_energy / sim.system().len() as f64;
    // Analytic iron-like EAM: a few eV of cohesion per atom (real Fe: −4.28).
    assert!((-8.0..-2.0).contains(&per_atom), "E/atom = {per_atom}");
}

#[test]
fn compression_raises_pressure_tension_lowers_it() {
    let build = || {
        Simulation::builder(LatticeSpec::bcc_fe(9))
            .potential(AnalyticEam::fe())
            .strategy(StrategyKind::Serial)
            .build()
            .unwrap()
    };
    let p_ref = build().thermo().pressure_gpa;
    let mut squeezed = build();
    squeezed.deform(Vec3::splat(0.98));
    let mut stretched = build();
    stretched.deform(Vec3::splat(1.02));
    assert!(squeezed.thermo().pressure_gpa > p_ref + 1.0);
    assert!(stretched.thermo().pressure_gpa < p_ref - 1.0);
}

#[test]
fn heating_raises_potential_energy_monotonically() {
    // Equipartition: a hotter crystal sits higher in its potential wells.
    let mut per_atom = Vec::new();
    for temperature in [100.0, 400.0, 800.0] {
        let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
            .potential(AnalyticEam::fe())
            .strategy(StrategyKind::Privatized)
            .threads(2)
            .temperature(temperature)
            .seed(9)
            .thermostat(Thermostat::Rescale {
                target: temperature,
                every: 10,
            })
            .build()
            .unwrap();
        sim.run(80);
        per_atom.push(sim.thermo().potential_energy / sim.system().len() as f64);
    }
    assert!(
        per_atom[0] < per_atom[1] && per_atom[1] < per_atom[2],
        "PE/atom not monotone in T: {per_atom:?}"
    );
}

#[test]
fn lj_and_morse_pair_potentials_run_under_sdc() {
    // The conclusion's "other potentials" claim, end to end.
    let spec = LatticeSpec::new(Lattice::Fcc, 5.27, [7, 7, 7]);
    for use_morse in [false, true] {
        let builder = Simulation::builder(spec)
            .mass(39.948)
            .strategy(StrategyKind::Sdc { dims: 2 })
            .threads(2)
            .temperature(20.0)
            .seed(12)
            .dt(5e-3);
        let mut sim = if use_morse {
            builder.pair_potential(Morse::new(0.0104, 1.2, 3.82, 8.5))
        } else {
            builder.pair_potential(LennardJones::new(0.0104, 3.4, 8.5))
        }
        .build()
        .unwrap();
        let e0 = sim.thermo().total;
        sim.run(40);
        let e1 = sim.thermo().total;
        assert!(((e1 - e0) / e0).abs() < 1e-3, "drift for morse={use_morse}");
    }
}
