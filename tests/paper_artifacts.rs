//! The paper's evaluation artifacts, reproduced and compared cell by cell.
//!
//! These tests pin the *shape* agreement between the modeled reproduction
//! and the published Table 1 / Fig. 9 / §II.B geometry claims; EXPERIMENTS.md
//! documents the full side-by-side numbers.

use md_perfmodel::{fig9_rows, speedup, table1_rows, CaseGeometry, MachineParams, THREAD_SWEEP};
use sdc_md::core::StrategyKind;

/// The paper's Table 1 (same layout as `sdc_bench::PAPER_TABLE1`, inlined
/// here to keep the integration test free-standing).
const PAPER: [[[Option<f64>; 6]; 3]; 4] = [
    [
        [Some(1.71), Some(2.46), Some(3.07), Some(4.17), None, None],
        [Some(1.70), Some(2.46), Some(3.07), Some(4.74), Some(5.90), Some(6.43)],
        [Some(1.66), Some(2.40), Some(2.99), Some(4.61), Some(5.74), Some(6.30)],
    ],
    [
        [Some(1.84), Some(2.64), Some(3.37), Some(6.24), Some(6.33), None],
        [Some(1.84), Some(2.65), Some(3.39), Some(6.20), Some(8.89), Some(10.90)],
        [Some(1.82), Some(2.65), Some(3.36), Some(6.16), Some(8.76), Some(10.78)],
    ],
    [
        [Some(1.86), Some(2.76), Some(3.67), Some(6.82), Some(9.76), Some(9.59)],
        [Some(1.87), Some(2.78), Some(3.64), Some(6.74), Some(9.73), Some(12.31)],
        [Some(1.86), Some(2.75), Some(3.64), Some(6.64), Some(9.65), Some(12.29)],
    ],
    [
        [Some(1.88), Some(2.79), Some(3.66), Some(6.30), Some(9.97), Some(9.82)],
        [Some(1.87), Some(2.80), Some(3.65), Some(6.77), Some(9.84), Some(12.42)],
        [Some(1.87), Some(2.80), Some(3.67), Some(6.74), Some(9.82), Some(12.34)],
    ],
];

#[test]
fn modeled_table1_tracks_the_paper_on_2d_and_3d_rows() {
    // The multi-dimensional rows are the paper's headline (its §IV calls
    // them "scalable"); the model must land within 35 % of every published
    // cell, and within 20 % on the large cases at 2/4/8/16 threads.
    let rows = table1_rows(&MachineParams::default());
    let mut checked = 0;
    for row in &rows {
        if row.dims == 1 {
            continue; // 1-D depends on the paper's unstated slab count
        }
        let ci = match row.case.as_str() {
            "small(1)" => 0,
            "medium(2)" => 1,
            "large(3)" => 2,
            _ => 3,
        };
        for (k, &p) in THREAD_SWEEP.iter().enumerate() {
            let (Some(ours), Some(paper)) = (row.speedups[k], PAPER[ci][row.dims - 1][k]) else {
                continue;
            };
            let rel = (ours - paper).abs() / paper;
            // The paper's small case saturates hard above 8 threads
            // (54k-atom arrays × 16 threads on a 2009 4-socket box —
            // false-sharing/NUMA effects outside this model); those cells
            // are reported but not bounded here (see EXPERIMENTS.md).
            if ci == 0 && p > 8 {
                continue;
            }
            let bound = if ci == 0 { 0.60 } else { 0.35 };
            assert!(
                rel < bound,
                "{} {}D P={p}: modeled {ours:.2} vs paper {paper:.2} ({:.0}% off)",
                row.case,
                row.dims,
                rel * 100.0
            );
            if ci >= 2 && matches!(p, 2 | 4 | 8 | 16) {
                assert!(
                    rel < 0.20,
                    "{} {}D P={p}: large-case cell {ours:.2} vs {paper:.2}",
                    row.case,
                    row.dims
                );
            }
            checked += 1;
        }
    }
    assert!(checked >= 40, "only {checked} cells compared");
}

#[test]
fn table1_blank_pattern_is_a_superset_of_the_papers() {
    // Wherever the paper prints a blank, our maximal-even decomposition
    // also cannot run it. (We additionally blank small-case 1-D at 8
    // threads — our rule yields 6 slabs; documented in EXPERIMENTS.md.)
    let rows = table1_rows(&MachineParams::default());
    for row in &rows {
        let ci = match row.case.as_str() {
            "small(1)" => 0,
            "medium(2)" => 1,
            "large(3)" => 2,
            _ => 3,
        };
        #[allow(clippy::needless_range_loop)]
        for k in 0..6 {
            if PAPER[ci][row.dims - 1][k].is_none() {
                assert!(
                    row.speedups[k].is_none(),
                    "{} {}D col {k}: paper blank, model filled",
                    row.case,
                    row.dims
                );
            }
        }
    }
}

#[test]
fn fig9_ordering_matches_the_papers_panels() {
    let rows = fig9_rows(&MachineParams::default());
    // 16 series, and at 16 threads the ordering in every panel is
    // SDC > RC > SAP > CS (paper Fig. 9, all four subplots).
    assert_eq!(rows.len(), 16);
    for case in ["small(1)", "medium(2)", "large(3)", "large(4)"] {
        let get = |s: StrategyKind| {
            rows.iter()
                .find(|r| r.case == case && r.strategy == s)
                .and_then(|r| r.speedups[5])
                .unwrap()
        };
        let sdc = get(StrategyKind::Sdc { dims: 2 });
        let cs = get(StrategyKind::Critical);
        let sap = get(StrategyKind::Privatized);
        let rc = get(StrategyKind::Redundant);
        assert!(
            sdc > rc && rc > sap && sap > cs,
            "{case}: ordering at 16 threads: sdc {sdc:.2}, rc {rc:.2}, sap {sap:.2}, cs {cs:.2}"
        );
    }
}

#[test]
fn section_iv_sdc_vs_rc_factor() {
    // "SDC method can gain about 1.7-fold increase in performance as
    // compared to RC method on medium and large test cases."
    let m = MachineParams::default();
    for case_id in 2..=4 {
        let case = CaseGeometry::paper_case(case_id);
        let sdc = speedup(&m, &case, StrategyKind::Sdc { dims: 2 }, 16).unwrap();
        let rc = speedup(&m, &case, StrategyKind::Redundant, 16).unwrap();
        let f = sdc / rc;
        assert!((1.4..=2.0).contains(&f), "case {case_id}: factor {f:.2}");
    }
}

#[test]
fn section_iib_subdomain_count_claims() {
    // "there are 340 subdomains with each color in medium test case, and
    // there are nearly 5000 subdomains with each color in large test case"
    // — same order of magnitude from our maximal-even rule (exact counts
    // depend on the paper's unstated skin).
    let medium = CaseGeometry::paper_case(2).decomposition(3).unwrap();
    assert!(
        (100..=700).contains(&medium.subdomains_per_color()),
        "medium: {}",
        medium.subdomains_per_color()
    );
    let large = CaseGeometry::paper_case(4).decomposition(3).unwrap();
    assert!(
        (2500..=7000).contains(&large.subdomains_per_color()),
        "large: {}",
        large.subdomains_per_color()
    );
}

// The §I workload-ratio check ("EAM is nearly more than twice the
// pair-potential work") lives in tests/eam_workload.rs: it is the one
// wall-clock-sensitive test in this suite and needs its own test binary
// so concurrently-running sibling tests cannot preempt its timing loop.
