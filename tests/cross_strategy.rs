//! Cross-crate integration: every parallelization strategy, driven through
//! the full public API (builder → integrator → observables), produces the
//! same physics.

use sdc_md::prelude::*;

fn fe_sim(strategy: StrategyKind, threads: usize, n: usize) -> Simulation {
    Simulation::builder(LatticeSpec::bcc_fe(n))
        .potential(AnalyticEam::fe())
        .strategy(strategy)
        .threads(threads)
        .temperature(300.0)
        .seed(1234)
        .build()
        .expect("buildable configuration")
}

#[test]
fn all_strategies_agree_after_a_short_run() {
    // 17³ cells: large enough that every color class holds several
    // subdomains, so SDC's parallelism is actually exercised.
    let mut reference: Option<f64> = None;
    for strategy in [
        StrategyKind::Serial,
        StrategyKind::Sdc { dims: 1 },
        StrategyKind::Sdc { dims: 2 },
        StrategyKind::Sdc { dims: 3 },
        StrategyKind::Critical,
        StrategyKind::Atomic,
        StrategyKind::Locks,
        StrategyKind::LocalWrite,
        StrategyKind::Privatized,
        StrategyKind::Redundant,
    ] {
        let threads = if strategy == StrategyKind::Serial { 1 } else { 3 };
        let mut sim = fe_sim(strategy, threads, 17);
        sim.run(5);
        let e = sim.thermo().total;
        match reference {
            None => reference = Some(e),
            Some(e0) => assert!(
                (e - e0).abs() < 1e-6 * e0.abs(),
                "{strategy}: total energy {e} vs serial {e0}"
            ),
        }
    }
}

#[test]
fn deterministic_strategies_reproduce_trajectories_across_thread_counts() {
    for strategy in [
        StrategyKind::Sdc { dims: 2 },
        StrategyKind::Privatized,
        StrategyKind::Redundant,
    ] {
        // 1 thread takes the serial list-build path, 4 threads the parallel
        // one (the builder default) — so this also pins that the parallel
        // list build never perturbs a trajectory.
        let mut one = fe_sim(strategy, 1, 17);
        let mut four = fe_sim(strategy, 4, 17);
        one.run(5);
        four.run(5);
        if strategy == StrategyKind::Privatized {
            // SAP's chunking depends on the thread count, so summation
            // order (and hence bits) differ — but physics must agree.
            let (a, b) = (one.thermo().total, four.thermo().total);
            assert!((a - b).abs() < 1e-8 * a.abs(), "{strategy}: {a} vs {b}");
        } else {
            // SDC's per-subdomain order and RC's per-atom order are
            // independent of the thread count: bitwise identical.
            assert_eq!(
                one.system().positions(),
                four.system().positions(),
                "{strategy} not thread-count invariant"
            );
        }
        // The active neighbor CSR must be bitwise identical regardless of
        // thread count or list-build path.
        assert_eq!(
            one.engine().neighbor_list().csr().offsets(),
            four.engine().neighbor_list().csr().offsets(),
            "{strategy}: neighbor offsets diverged across thread counts"
        );
        assert_eq!(
            one.engine().neighbor_list().csr().indices(),
            four.engine().neighbor_list().csr().indices(),
            "{strategy}: neighbor indices diverged across thread counts"
        );
    }
}

#[test]
fn parallel_and_serial_list_builds_give_identical_trajectories() {
    // Same seed, same thread count, same strategy — only the list-build
    // path differs. A melt hot enough to force several rebuilds (and, with
    // reorder on, several parallel permutation applications) must stay
    // bitwise identical.
    let build = |parallel: bool| {
        Simulation::builder(LatticeSpec::bcc_fe(17))
            .potential(AnalyticEam::fe())
            .strategy(StrategyKind::Sdc { dims: 2 })
            .threads(4)
            .temperature(1200.0)
            .seed(99)
            .reorder(true)
            .parallel_neighbor(parallel)
            .build()
            .expect("buildable configuration")
    };
    let mut serial_list = build(false);
    let mut parallel_list = build(true);
    assert!(!serial_list.engine().parallel_list());
    assert!(parallel_list.engine().parallel_list());
    serial_list.run(40);
    parallel_list.run(40);
    assert!(
        parallel_list.engine().rebuilds() > 0,
        "melt never rebuilt; the parallel path went unexercised"
    );
    assert_eq!(
        serial_list.engine().rebuilds(),
        parallel_list.engine().rebuilds(),
        "rebuild cadence must not depend on the build path"
    );
    assert_eq!(
        serial_list.system().positions(),
        parallel_list.system().positions(),
        "trajectories diverged between serial and parallel list builds"
    );
    assert_eq!(
        serial_list.engine().neighbor_list().csr().offsets(),
        parallel_list.engine().neighbor_list().csr().offsets()
    );
    assert_eq!(
        serial_list.engine().neighbor_list().csr().indices(),
        parallel_list.engine().neighbor_list().csr().indices()
    );
}

#[test]
fn sdc_engine_exposes_a_valid_plan() {
    let sim = fe_sim(StrategyKind::Sdc { dims: 3 }, 2, 17);
    let plan = sim.engine().plan().expect("plan exists");
    let d = plan.decomposition();
    assert_eq!(d.color_count(), 8);
    assert!(d.subdomains_per_color() >= 2);
    // The actual engine-facing invariant, checked through the public API.
    plan.validate_footprints(sim.engine().neighbor_list().csr())
        .expect("footprints disjoint");
    d.validate(sim.system().sim_box()).expect("coloring valid");
}

#[test]
fn strategies_work_with_tabulated_eam_too() {
    let analytic = AnalyticEam::fe();
    let tab = TabulatedEam::standard(&analytic, analytic.rho_e());
    let mut serial = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(TabulatedEam::standard(&analytic, analytic.rho_e()))
        .strategy(StrategyKind::Serial)
        .temperature(200.0)
        .seed(5)
        .build()
        .unwrap();
    let mut sap = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(tab)
        .strategy(StrategyKind::Privatized)
        .threads(2)
        .temperature(200.0)
        .seed(5)
        .build()
        .unwrap();
    serial.run(5);
    sap.run(5);
    let (a, b) = (serial.thermo().total, sap.thermo().total);
    assert!((a - b).abs() < 1e-8 * a.abs());
}

#[test]
fn undecomposable_boxes_fail_loudly_not_wrongly() {
    // A 6-cell box (17.2 Å) cannot host two 2·(5.67+0.3) subdomains. With
    // fallback disabled that is a hard, descriptive error…
    let err = Simulation::builder(LatticeSpec::bcc_fe(6))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 1 })
        .strategy_fallback(false)
        .build()
        .err()
        .expect("must refuse to build");
    assert!(err.to_string().contains("decomposition"));
    // …and with the default fallback it degrades to striped locks,
    // recording the downgrade instead of failing.
    let degraded = Simulation::builder(LatticeSpec::bcc_fe(6))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 1 })
        .build()
        .unwrap();
    assert_eq!(degraded.engine().strategy(), StrategyKind::Locks);
    assert_eq!(degraded.downgrades().len(), 1);
    // The same box runs fine with strategies that need no decomposition.
    let mut ok = Simulation::builder(LatticeSpec::bcc_fe(6))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Privatized)
        .threads(2)
        .temperature(100.0)
        .build()
        .unwrap();
    ok.run(3);
    assert!(ok.thermo().total.is_finite());
}

#[test]
fn sdc_stays_correct_while_atoms_drift_between_rebuilds() {
    // The footprint-disjointness argument is anchored to *build-time*
    // positions. Atoms then drift (up to skin/2) before the next rebuild —
    // this test pins that SDC forces remain identical to serial forces on
    // exactly such a drifted state.
    let mut hot = Simulation::builder(LatticeSpec::bcc_fe(17))
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(4)
        .temperature(900.0)
        .seed(31)
        .skin(0.6) // generous skin: long drift windows
        .build()
        .unwrap();
    // March until we are mid-window: at least one step after the last
    // rebuild, with real drift accumulated.
    hot.run(25);
    let rebuilds_before = hot.engine().rebuilds();
    hot.run(3);
    assert_eq!(
        hot.engine().rebuilds(),
        rebuilds_before,
        "want a drifted state strictly between rebuilds; lower the step count"
    );

    // Recompute forces on the *same* drifted state with a serial engine.
    let mut serial_system = hot.system().clone();
    let mut serial_engine = sdc_md::sim::ForceEngine::new(
        &serial_system,
        sdc_md::sim::PotentialChoice::Eam(std::sync::Arc::new(AnalyticEam::fe())),
        StrategyKind::Serial,
        1,
        0.6,
    )
    .unwrap();
    serial_engine.compute(&mut serial_system);

    // And once more with the SDC engine (fresh plan on the same state).
    let mut sdc_system = hot.system().clone();
    let mut sdc_engine = sdc_md::sim::ForceEngine::new(
        &sdc_system,
        sdc_md::sim::PotentialChoice::Eam(std::sync::Arc::new(AnalyticEam::fe())),
        StrategyKind::Sdc { dims: 3 },
        4,
        0.6,
    )
    .unwrap();
    sdc_engine.compute(&mut sdc_system);

    for (k, (a, b)) in serial_system
        .forces()
        .iter()
        .zip(sdc_system.forces())
        .enumerate()
    {
        assert!(
            (*a - *b).norm() < 1e-10,
            "drifted state: force[{k}] {a} vs {b}"
        );
    }
    // The running simulation's own forces (computed with the *old* plan on
    // the drifted positions) must match too: that is the actual invariant
    // in production.
    for (k, (a, b)) in hot.system().forces().iter().zip(sdc_system.forces()).enumerate() {
        assert!(
            (*a - *b).norm() < 1e-9,
            "old-plan force[{k}] {a} vs {b}"
        );
    }
}
