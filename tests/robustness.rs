//! End-to-end robustness: fault detection → rollback → completion, graceful
//! strategy degradation, and crash-safe checkpointing through the public API.

use proptest::prelude::*;
use sdc_md::prelude::*;
use sdc_md::sim::checkpoint::{
    atomic_write, checkpoint_tmp_path, load_checkpoint, read_checkpoint, save_checkpoint,
    write_checkpoint,
};
use sdc_md::sim::health::corrupt_file_byte;

fn fe_sim(spec: LatticeSpec, strategy: StrategyKind) -> Simulation {
    Simulation::builder(spec)
        .potential(AnalyticEam::fe())
        .strategy(strategy)
        .threads(2)
        .temperature(300.0)
        .seed(11)
        .build()
        .expect("buildable")
}

#[test]
fn injected_nan_force_rolls_back_to_last_checkpoint_and_completes() {
    let mut sim = fe_sim(LatticeSpec::bcc_fe(7), StrategyKind::Privatized);
    let dt0 = sim.dt();
    let cfg = RecoveryConfig {
        checkpoint_every: 10,
        ..RecoveryConfig::default()
    };
    // NaN the forces at step 25 — between the checkpoints at 10 and 20.
    let mut injector = FaultInjector::new(25, InjectedFault::NanForce { atom: 3 });
    let report = sim
        .run_with_recovery_observed(40, &cfg, |system, step| {
            injector.poke(system, step);
        })
        .expect("run completes despite the fault");
    assert!(injector.fired());
    assert_eq!(report.steps_completed, 40);
    assert_eq!(sim.step_count(), 40);
    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.faults.len(), 1);
    assert!(matches!(
        report.faults[0].fault,
        SimFault::NonFiniteForce { atom: 3, step: 25 }
    ));
    assert!(report.final_dt < dt0, "dt backoff applied");
    // The final state is fully healthy.
    let t = sim.thermo();
    assert!(t.total.is_finite());
    assert!(sim.system().positions().iter().all(|p| p.is_finite()));
}

#[test]
fn recovery_persists_checkpoints_a_new_process_can_resume_from() {
    let path = std::env::temp_dir().join("sdc_md_robustness_resume.ckpt");
    let _ = std::fs::remove_file(&path);
    let mut sim = fe_sim(LatticeSpec::bcc_fe(7), StrategyKind::Privatized);
    let cfg = RecoveryConfig {
        checkpoint_every: 15,
        checkpoint_path: Some(path.clone()),
        ..RecoveryConfig::default()
    };
    sim.run_with_recovery(30, &cfg).unwrap();
    // "Crash" here: a fresh simulation resumes from the persisted file.
    let (system, step) = load_checkpoint(&path).expect("persisted checkpoint is valid");
    assert_eq!(step, 15, "last mid-run snapshot");
    let mut resumed = Simulation::from_system(system)
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Privatized)
        .threads(2)
        .build()
        .unwrap();
    resumed.run(5);
    assert!(resumed.thermo().total.is_finite());
    let _ = std::fs::remove_file(path);
}

#[test]
fn sdc3_degrades_to_the_only_feasible_dims_with_recorded_events() {
    // 25.8 × 17.2 × 17.2 Å: only the x axis can host two ≥ 2·range
    // subdomains, so of the SDC variants only dims = 1 is feasible.
    let spec = LatticeSpec::new(Lattice::Bcc, 2.8665, [9, 6, 6]);
    let sim = fe_sim(spec, StrategyKind::Sdc { dims: 3 });
    assert_eq!(sim.engine().strategy(), StrategyKind::Sdc { dims: 1 });
    let events = sim.downgrades();
    assert_eq!(events.len(), 2, "3 → 2 → 1");
    assert_eq!(events[0].from, StrategyKind::Sdc { dims: 3 });
    assert_eq!(events[0].to, StrategyKind::Sdc { dims: 2 });
    assert_eq!(events[1].from, StrategyKind::Sdc { dims: 2 });
    assert_eq!(events[1].to, StrategyKind::Sdc { dims: 1 });
    assert!(sim.engine().plan().is_some(), "dims = 1 really runs SDC");
    // And the degraded simulation does real physics.
    let mut sim = sim;
    let e0 = sim.thermo().total;
    sim.run(20);
    let e1 = sim.thermo().total;
    assert!(((e1 - e0) / e0).abs() < 1e-4, "NVE holds after degradation");
}

#[test]
fn fully_infeasible_sdc_lands_on_locks_and_matches_serial_physics() {
    // 17.2 Å on every axis: no SDC variant fits; chain ends at Locks.
    let sdc = fe_sim(LatticeSpec::bcc_fe(6), StrategyKind::Sdc { dims: 3 });
    assert_eq!(sdc.engine().strategy(), StrategyKind::Locks);
    assert_eq!(sdc.downgrades().len(), 3);
    assert!(sdc.engine().plan().is_none());
    let mut sdc = sdc;
    let mut serial = fe_sim(LatticeSpec::bcc_fe(6), StrategyKind::Serial);
    sdc.run(10);
    serial.run(10);
    let (a, b) = (sdc.thermo().total, serial.thermo().total);
    assert!((a - b).abs() < 1e-6 * b.abs(), "{a} vs {b}");
}

#[test]
fn interrupted_checkpoint_write_never_corrupts_the_previous_one() {
    let path = std::env::temp_dir().join("sdc_md_robustness_atomic.ckpt");
    let _ = std::fs::remove_file(&path);
    let sim = fe_sim(LatticeSpec::bcc_fe(5), StrategyKind::Serial);
    save_checkpoint(&path, sim.system(), 100).unwrap();
    let before = std::fs::read(&path).unwrap();
    // Simulate a kill between the temp-file write and the rename: the
    // writer starts emitting bytes, then dies.
    let result = atomic_write(&path, |f| {
        use std::io::Write;
        f.write_all(b"sdc-md-checkpoint v2\nstep 999\nbox 1 1 ")?;
        Err(CheckpointError::Malformed("killed mid-write".into()))
    });
    assert!(result.is_err());
    // Target file is byte-identical to the pre-crash checkpoint, the temp
    // sibling is gone, and the file still loads.
    assert_eq!(std::fs::read(&path).unwrap(), before);
    assert!(!checkpoint_tmp_path(&path).exists());
    let (_, step) = load_checkpoint(&path).unwrap();
    assert_eq!(step, 100);
    let _ = std::fs::remove_file(path);
}

#[test]
fn corrupted_checkpoint_is_detected_not_loaded() {
    let path = std::env::temp_dir().join("sdc_md_robustness_corrupt.ckpt");
    let sim = fe_sim(LatticeSpec::bcc_fe(5), StrategyKind::Serial);
    save_checkpoint(&path, sim.system(), 7).unwrap();
    // Flip one byte in the middle of the atom table.
    let size = std::fs::metadata(&path).unwrap().len() as usize;
    corrupt_file_byte(&path, size / 2).unwrap();
    match load_checkpoint(&path) {
        Err(CheckpointError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // Truncation is also caught.
    save_checkpoint(&path, sim.system(), 7).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(load_checkpoint(&path).is_err());
    let _ = std::fs::remove_file(path);
}

/// An arbitrary dynamic state: random box (with random periodicity),
/// mass, and per-atom positions/velocities.
fn arb_state() -> impl Strategy<Value = System> {
    (
        (10.0..40.0f64, 10.0..40.0f64, 10.0..40.0f64),
        [any::<bool>(), any::<bool>(), any::<bool>()],
        0.5..250.0f64,
        proptest::collection::vec(
            (
                (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
                (-80.0..80.0f64, -80.0..80.0f64, -80.0..80.0f64),
            ),
            1..40,
        ),
    )
        .prop_map(|(lengths, periodic, mass, atoms)| {
            let lengths = Vec3::new(lengths.0, lengths.1, lengths.2);
            let sim_box = SimBox::with_periodicity(lengths, periodic);
            let positions = atoms
                .iter()
                .map(|((fx, fy, fz), _)| {
                    Vec3::new(fx * lengths.x, fy * lengths.y, fz * lengths.z)
                })
                .collect();
            let mut system = System::new(sim_box, positions, mass);
            for (v, (_, (vx, vy, vz))) in system.velocities_mut().iter_mut().zip(&atoms) {
                *v = Vec3::new(*vx, *vy, *vz);
            }
            system
        })
}

fn bits(vs: &[Vec3]) -> Vec<[u64; 3]> {
    vs.iter()
        .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_v2_round_trips_arbitrary_states_bitwise(
        system in arb_state(),
        step in any::<usize>(),
    ) {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &system, step).unwrap();
        let (restored, restored_step) = read_checkpoint(&buf[..]).unwrap();
        prop_assert_eq!(restored_step, step);
        prop_assert_eq!(restored.mass().to_bits(), system.mass().to_bits());
        prop_assert_eq!(
            bits(&[restored.sim_box().lengths()]),
            bits(&[system.sim_box().lengths()])
        );
        prop_assert_eq!(
            restored.sim_box().periodicity(),
            system.sim_box().periodicity()
        );
        prop_assert_eq!(bits(restored.positions()), bits(system.positions()));
        prop_assert_eq!(bits(restored.velocities()), bits(system.velocities()));
    }

    #[test]
    fn corrupted_footer_digit_is_always_rejected(
        system in arb_state(),
        digit in 0usize..16,
    ) {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &system, 1).unwrap();
        // The footer line is "checksum <16 hex digits>\n"; replace one
        // digit with a different hex digit.
        let hex_start = buf.len() - 17;
        let i = hex_start + digit;
        buf[i] = if buf[i] == b'0' { b'1' } else { b'0' };
        prop_assert!(matches!(
            read_checkpoint(&buf[..]).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn truncation_at_any_point_is_always_rejected(
        system in arb_state(),
        frac in 0.0..1.0f64,
    ) {
        let mut buf = Vec::new();
        write_checkpoint(&mut buf, &system, 2).unwrap();
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        buf.truncate(cut);
        prop_assert!(read_checkpoint(&buf[..]).is_err());
    }
}

#[test]
fn watchdog_catches_escape_from_an_open_box() {
    // A slab open along z: give one surface atom a huge outward velocity
    // and the watchdog must report the escape instead of running on.
    let spec = LatticeSpec::bcc_fe(7);
    let (bx, pos) = spec.build();
    let open = SimBox::with_periodicity(bx.lengths(), [true, true, false]);
    let system = System::new(open, pos, 55.845);
    let mut sim = Simulation::from_system(system)
        .potential(AnalyticEam::fe())
        .strategy(StrategyKind::Serial)
        .temperature(100.0)
        .seed(4)
        .build()
        .unwrap();
    let n = sim.system().len();
    sim.system_mut().velocities_mut()[n - 1] = Vec3::new(0.0, 0.0, 4000.0);
    let cfg = RecoveryConfig {
        checkpoint_every: 1000,
        max_retries: 0, // no retry: surface the fault
        ..RecoveryConfig::default()
    };
    let err = sim.run_with_recovery(200, &cfg).unwrap_err();
    match err {
        RecoveryError::RetriesExhausted { fault, .. } => {
            assert!(
                matches!(fault, SimFault::AtomEscaped { axis: 2, .. }),
                "expected escape along z, got {fault}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn retry_exhaustion_surfaces_the_root_cause_not_a_rollback_artifact() {
    // A persistent fault at step 25: the first hit NaNs a force, every
    // replay after a rollback NaNs a velocity instead. When the retry
    // budget runs out, the error must carry the FIRST fault of the streak
    // (the root cause), not whichever artifact tripped the watchdog last.
    let mut sim = fe_sim(LatticeSpec::bcc_fe(7), StrategyKind::Serial);
    let cfg = RecoveryConfig {
        checkpoint_every: 10,
        max_retries: 2,
        ..RecoveryConfig::default()
    };
    let mut hits = 0usize;
    let err = sim
        .run_with_recovery_observed(40, &cfg, |system, step| {
            if step == 25 {
                hits += 1;
                if hits == 1 {
                    system.forces_mut()[3].x = f64::NAN;
                } else {
                    system.velocities_mut()[3].x = f64::NAN;
                }
            }
        })
        .unwrap_err();
    assert!(hits > 1, "the fault must persist across rollbacks (hits = {hits})");
    match err {
        RecoveryError::RetriesExhausted { fault, retries } => {
            assert_eq!(retries, 2);
            assert!(
                matches!(fault, SimFault::NonFiniteForce { atom: 3, step: 25 }),
                "root cause must be the first fault of the streak, got {fault}"
            );
            assert_eq!(fault.kind(), "NonFiniteForce");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

#[test]
fn dt_backoff_state_is_consistent_between_report_and_simulation() {
    // After a recovered fault the shrunken dt persists (the old dt is what
    // faulted) and the report and the simulation must agree on it, so a
    // caller chaining further runs keeps integrating at the safe step.
    let mut sim = fe_sim(LatticeSpec::bcc_fe(7), StrategyKind::Serial);
    let dt0 = sim.dt();
    let cfg = RecoveryConfig {
        checkpoint_every: 10,
        ..RecoveryConfig::default()
    };
    let mut injector = FaultInjector::new(25, InjectedFault::NanForce { atom: 1 });
    let report = sim
        .run_with_recovery_observed(40, &cfg, |system, step| {
            injector.poke(system, step);
        })
        .expect("one transient fault is recoverable");
    assert_eq!(report.rollbacks, 1);
    assert!(report.final_dt < dt0, "dt backoff applied");
    assert_eq!(
        sim.dt(),
        report.final_dt,
        "simulation and report disagree on the post-recovery dt"
    );
    // A follow-up run starts from the consistent state and stays clean.
    let follow_up = sim.run_with_recovery(20, &cfg).expect("clean follow-up");
    assert_eq!(follow_up.rollbacks, 0);
    assert_eq!(sim.dt(), follow_up.final_dt);
}
