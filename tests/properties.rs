//! Property-based tests over the core data structures and the SDC
//! invariants, spanning crates.

use proptest::prelude::*;
use sdc_md::core::{ColoredDecomposition, DecompositionConfig, PairTerm, ParallelContext, ScatterExec, SdcPlan, StrategyKind};
use sdc_md::geometry::{SimBox, Vec3};
use sdc_md::neighbor::{Csr, NeighborList, Permutation, VerletConfig};

fn arb_vec3(limit: f64) -> impl Strategy<Value = Vec3> {
    (
        -limit..limit,
        -limit..limit,
        -limit..limit,
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wrap_is_idempotent_and_in_range(
        p in arb_vec3(500.0),
        lx in 1.0..100.0f64,
        ly in 1.0..100.0f64,
        lz in 1.0..100.0f64,
    ) {
        let b = SimBox::periodic(Vec3::new(lx, ly, lz));
        let w = b.wrap(p);
        for d in 0..3 {
            prop_assert!(w[d] >= 0.0 && w[d] < b.lengths()[d]);
        }
        prop_assert_eq!(b.wrap(w), w);
    }

    #[test]
    fn min_image_is_shorter_than_any_explicit_image(
        a in arb_vec3(50.0),
        c in arb_vec3(50.0),
        l in 10.0..60.0f64,
    ) {
        let b = SimBox::cubic(l);
        let (a, c) = (b.wrap(a), b.wrap(c));
        let d = b.min_image(a, c).norm();
        // Compare against all 27 explicit images.
        for sx in -1..=1i32 {
            for sy in -1..=1i32 {
                for sz in -1..=1i32 {
                    let shift = Vec3::new(sx as f64, sy as f64, sz as f64) * l;
                    let explicit = (a - (c + shift)).norm();
                    prop_assert!(d <= explicit + 1e-9);
                }
            }
        }
    }

    #[test]
    fn permutation_inverse_is_identity(order in proptest::collection::vec(0u32..64, 1..64)) {
        // Turn an arbitrary vector into a permutation by ranking.
        let mut idx: Vec<u32> = (0..order.len() as u32).collect();
        idx.sort_by_key(|&i| (order[i as usize], i));
        let p = Permutation::from_new_to_old(idx);
        let data: Vec<u32> = (0..p.len() as u32).collect();
        let round = p.inverse().apply(&p.apply(&data));
        prop_assert_eq!(&round, &data);
        let comp = p.compose(&p.inverse());
        prop_assert_eq!(comp.apply(&data), data);
    }

    #[test]
    fn csr_mirror_preserves_edge_multiset(
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 0..60)
    ) {
        let csr = Csr::from_pairs(20, &pairs);
        let mirrored = csr.mirrored();
        prop_assert_eq!(mirrored.entries(), csr.entries());
        let mut fwd: Vec<(u32, u32)> = csr
            .iter_rows()
            .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
            .collect();
        let mut back: Vec<(u32, u32)> = mirrored
            .iter_rows()
            .flat_map(|(i, r)| r.iter().map(move |&j| (j, i as u32)))
            .collect();
        fwd.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(fwd, back);
    }

    #[test]
    fn decomposition_invariants_hold_for_random_boxes(
        lx in 40.0..150.0f64,
        ly in 40.0..150.0f64,
        lz in 40.0..150.0f64,
        range in 3.0..9.0f64,
        dims in 1usize..=3,
    ) {
        let b = SimBox::periodic(Vec3::new(lx, ly, lz));
        match ColoredDecomposition::new(&b, DecompositionConfig::new(dims, range)) {
            Ok(d) => {
                // Even counts, edge ≥ 2·range, equal color classes.
                for ax in 0..dims {
                    let n = d.counts()[ax];
                    prop_assert_eq!(n % 2, 0);
                    prop_assert!(b.lengths()[ax] / n as f64 >= 2.0 * range - 1e-9);
                }
                prop_assert_eq!(d.color_count(), 1 << dims);
                prop_assert_eq!(
                    d.subdomain_count(),
                    d.subdomains_per_color() * d.color_count()
                );
                d.validate(&b).map_err(TestCaseError::fail)?;
            }
            Err(_) => {
                // Rejection is only legal when some decomposed axis truly
                // cannot fit two 2·range subdomains.
                let fits = (0..dims).all(|ax| b.lengths()[ax] >= 4.0 * range);
                prop_assert!(!fits, "decomposition refused a feasible box");
            }
        }
    }

    #[test]
    fn sdc_scatter_equals_serial_on_random_atom_clouds(
        seed in 0u64..1000,
        n_atoms in 40usize..150,
    ) {
        // Random (non-lattice) configurations: the invariant must not
        // depend on crystal regularity.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let l = 30.0;
        let b = SimBox::cubic(l);
        let pos: Vec<Vec3> = (0..n_atoms)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let cutoff = 3.0;
        let nl = NeighborList::build(&b, &pos, VerletConfig::half(cutoff, 0.5));
        let plan = SdcPlan::build(&b, &pos, DecompositionConfig::new(3, cutoff + 0.5)).unwrap();
        plan.validate_footprints(nl.csr()).map_err(TestCaseError::fail)?;

        let kernel = |i: usize, j: usize| {
            let r2 = b.distance_sq(pos[i], pos[j]);
            (r2 < cutoff * cutoff).then(|| PairTerm::symmetric(1.0 / (1.0 + r2)))
        };
        let mut serial = vec![0.0f64; n_atoms];
        let ctx1 = ParallelContext::new(1);
        ScatterExec { ctx: &ctx1, half: nl.csr(), full: None, plan: None,
            localwrite: None, metrics: None, sap: None, taskgraph: None }
            .run(StrategyKind::Serial, &mut serial, &kernel);
        let ctx = ParallelContext::new(4);
        let mut par = vec![0.0f64; n_atoms];
        ScatterExec { ctx: &ctx, half: nl.csr(), full: None, plan: Some(&plan),
            localwrite: None, metrics: None, sap: None, taskgraph: None }
            .run(StrategyKind::Sdc { dims: 3 }, &mut par, &kernel);
        for (k, (a, c)) in serial.iter().zip(&par).enumerate() {
            prop_assert!((a - c).abs() < 1e-12, "atom {k}: {a} vs {c}");
        }
    }

    #[test]
    fn neighbor_lists_are_symmetric_under_relabeling(
        seed in 0u64..200,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let l = 24.0;
        let b = SimBox::cubic(l);
        let pos: Vec<Vec3> = (0..80)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let nl = NeighborList::build(&b, &pos, VerletConfig::full(3.5, 0.0));
        for (i, row) in nl.csr().iter_rows() {
            for &j in row {
                prop_assert!(nl.neighbors(j as usize).contains(&(i as u32)));
            }
        }
    }
}
