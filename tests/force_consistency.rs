//! Numerical-gradient force consistency and fused-path conformance.
//!
//! The net that catches sign/factor bugs in the EAM kernels: analytic
//! forces must equal the negative central-difference gradient of
//! `eam_energy`, per atom, for both potential backends, under Serial and
//! SDC, on both the fused and reference evaluation paths. A second suite
//! pins the fused path to the reference oracle on a rattled 8k-atom crystal
//! under every strategy — bitwise under Serial.

use sdc_md::prelude::*;
use sdc_md::sim::units::FE_MASS;
use std::sync::Arc;

/// Perturb the perfect crystal deterministically so forces are non-zero.
fn rattle(system: &mut System, amplitude: f64) {
    for (k, p) in system.positions_mut().iter_mut().enumerate() {
        let k = k as f64;
        p.x += amplitude * (0.917 * k).sin();
        p.y += amplitude * (1.311 * k).cos();
        p.z += amplitude * (2.113 * k).sin();
    }
    system.wrap();
}

fn analytic() -> PotentialChoice {
    PotentialChoice::Eam(Arc::new(AnalyticEam::fe()))
}

fn tabulated() -> PotentialChoice {
    let src = AnalyticEam::fe();
    PotentialChoice::Eam(Arc::new(TabulatedEam::standard(&src, src.rho_e())))
}

/// Central-difference check of `-dE/dx` against the analytic forces on a
/// deterministic subsample of atoms. `h = 1e-5` Å balances truncation
/// (O(h²) ≈ 1e-10) against f64 cancellation in the total energy
/// (|E|·ε/2h ≈ 4e-8 for the larger lattice), and stays far below the
/// half-skin rebuild threshold, so one engine and one neighbor list serve
/// every displacement.
fn check_force_consistency(
    label: &str,
    pot: PotentialChoice,
    strategy: StrategyKind,
    threads: usize,
    fused: bool,
    cells: usize,
) {
    let mut system = System::from_lattice(LatticeSpec::bcc_fe(cells), FE_MASS);
    rattle(&mut system, 0.05);
    let mut eng = ForceEngine::new(&system, pot, strategy, threads, 0.3).unwrap();
    eng.set_fused(fused);
    eng.compute(&mut system);
    let forces: Vec<Vec3> = system.forces().to_vec();
    let h = 1e-5;
    let stride = (system.len() / 7).max(1);
    for atom in (0..system.len()).step_by(stride) {
        for axis in 0..3 {
            let orig = system.positions()[atom];
            system.positions_mut()[atom][axis] = orig[axis] + h;
            eng.compute(&mut system);
            let ep = eng.potential_energy(&system);
            system.positions_mut()[atom][axis] = orig[axis] - h;
            eng.compute(&mut system);
            let em = eng.potential_energy(&system);
            system.positions_mut()[atom] = orig;
            let numeric = -(ep - em) / (2.0 * h);
            let f = forces[atom][axis];
            assert!(
                (f - numeric).abs() <= 1e-6 * f.abs().max(1.0),
                "{label}: atom {atom} axis {axis}: analytic {f}, numeric {numeric}"
            );
        }
    }
}

#[test]
fn forces_match_numerical_gradient_serial() {
    for (pot_name, pot) in [("analytic", analytic()), ("tabulated", tabulated())] {
        for fused in [true, false] {
            check_force_consistency(
                &format!("{pot_name}/serial/fused={fused}"),
                pot.clone(),
                StrategyKind::Serial,
                1,
                fused,
                5,
            );
        }
    }
}

#[test]
fn forces_match_numerical_gradient_sdc() {
    for (pot_name, pot) in [("analytic", analytic()), ("tabulated", tabulated())] {
        for fused in [true, false] {
            check_force_consistency(
                &format!("{pot_name}/sdc2d/fused={fused}"),
                pot.clone(),
                StrategyKind::Sdc { dims: 2 },
                2,
                fused,
                9,
            );
        }
    }
}

#[test]
fn fused_path_matches_reference_on_8k_atom_crystal_under_every_strategy() {
    for (pot_name, pot) in [("analytic", analytic()), ("tabulated", tabulated())] {
        // 2·16³ = 8192 atoms, rattled off the lattice.
        let mut sys_ref = System::from_lattice(LatticeSpec::bcc_fe(16), FE_MASS);
        rattle(&mut sys_ref, 0.05);
        let base = sys_ref.clone();
        // Oracle: the reference (dyn-dispatched) path under Serial.
        let mut eng_ref =
            ForceEngine::new(&sys_ref, pot.clone(), StrategyKind::Serial, 1, 0.3).unwrap();
        eng_ref.set_fused(false);
        eng_ref.compute(&mut sys_ref);
        let e_ref = eng_ref.potential_energy(&sys_ref);
        for strategy in StrategyKind::all() {
            let mut sys = base.clone();
            let mut eng = ForceEngine::new(&sys, pot.clone(), strategy, 3, 0.3).unwrap();
            assert!(eng.fused(), "fused must be the default");
            eng.compute(&mut sys);
            for (k, (a, b)) in sys_ref.forces().iter().zip(sys.forces()).enumerate() {
                assert!(
                    (*a - *b).norm() < 1e-10,
                    "{pot_name}/{strategy}: force[{k}] {a} vs {b}"
                );
            }
            let e = eng.potential_energy(&sys);
            assert!(
                (e - e_ref).abs() <= 1e-12 * e_ref.abs(),
                "{pot_name}/{strategy}: energy {e} vs oracle {e_ref}"
            );
            if strategy == StrategyKind::Serial {
                assert_eq!(
                    sys_ref.forces(),
                    sys.forces(),
                    "{pot_name}: fused Serial must be bitwise identical"
                );
                assert_eq!(sys_ref.rho(), sys.rho(), "{pot_name}: densities bitwise");
                assert_eq!(e, e_ref, "{pot_name}: energy bitwise");
            }
        }
    }
}

#[test]
fn out_of_table_density_is_reported_as_the_root_cause_and_recovers() {
    // A tabulated potential has a bounded embedding domain; past its edge
    // the evaluation is poisoned (NaN) in all builds instead of silently
    // extrapolating. Drive a blowup mid-run and assert the recovery loop
    // records DensityOutOfRange — the root cause — never the NaN-force
    // symptom, then rolls back and completes.
    let src = AnalyticEam::fe();
    let tab = TabulatedEam::standard(&src, src.rho_e());
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(7))
        .potential(tab)
        .strategy(StrategyKind::Serial)
        .temperature(300.0)
        .seed(11)
        .build()
        .expect("buildable");
    let cfg = RecoveryConfig {
        checkpoint_every: 10,
        ..RecoveryConfig::default()
    };
    let mut fired = false;
    let report = sim
        .run_with_recovery_observed(30, &cfg, |system, step| {
            if step == 15 && !fired {
                fired = true;
                // Shove atom 1 into atom 0's core: the host density there
                // exceeds ρ_max at the next force computation.
                let target = system.positions()[0] + Vec3::new(0.6, 0.0, 0.0);
                system.positions_mut()[1] = target;
            }
        })
        .expect("run completes despite the fault");
    assert!(fired);
    assert_eq!(report.steps_completed, 30);
    assert!(report.rollbacks >= 1, "the fault must trigger a rollback");
    assert!(
        report
            .faults
            .iter()
            .any(|f| matches!(f.fault, SimFault::DensityOutOfRange { .. })),
        "expected DensityOutOfRange, got {:?}",
        report.faults
    );
    assert!(
        !report
            .faults
            .iter()
            .any(|f| matches!(f.fault, SimFault::NonFiniteForce { .. })),
        "the root cause, not the NaN-force symptom, must be reported: {:?}",
        report.faults
    );
    assert!(sim.thermo().total.is_finite());
    assert!(sim.system().forces().iter().all(|f| f.is_finite()));
}
