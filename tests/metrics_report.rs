//! Golden test for the observability layer: the run-report JSON schema is
//! pinned key-by-key (field renames/removals must bump `SCHEMA_VERSION`),
//! and the measured quantities are cross-checked against each other — the
//! per-color SDC wall times must sum to (at most, and a good fraction of)
//! the paper-timed density+force phase walls, since the color regions are
//! the parallel interior of exactly those phases.

use md_geometry::LatticeSpec;
use md_potential::AnalyticEam;
use md_sim::metrics::report::{RunInfo, RunReport, ShardsInfo};
use md_sim::{JsonValue, PotentialChoice, Simulation, StrategyKind};
use std::sync::Arc;

fn run_metered(steps: usize) -> (Simulation, RunReport) {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(2)
        .temperature(300.0)
        .seed(7)
        .metrics(true)
        .build()
        .expect("build");
    for _ in 0..steps {
        sim.step();
    }
    let info = RunInfo {
        atoms: sim.system().len(),
        steps: sim.step_count(),
        threads: sim.engine().threads(),
        strategy: sim.engine().strategy().name().to_string(),
        dt_ps: 1e-3,
        balance: sim.engine().plan_choice().map(Into::into),
        shards: None,
    };
    let report = RunReport::collect(&info, sim.timers(), sim.metrics().expect("metrics on"));
    (sim, report)
}

fn keys(v: &JsonValue) -> Vec<&str> {
    v.as_obj()
        .expect("object")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect()
}

#[test]
fn report_schema_is_golden() {
    let (_, report) = run_metered(2);
    let doc = report.json();

    // Top-level layout, in order. Changing any of this is a schema break.
    assert_eq!(keys(doc), ["schema", "case", "phases", "spans", "scatter"]);
    assert_eq!(
        keys(doc.path("case").unwrap()),
        ["atoms", "steps", "threads", "strategy", "dt_ps"]
    );
    assert_eq!(
        keys(doc.path("phases").unwrap()),
        ["density", "embedding", "force", "neighbor", "other", "paper_seconds"]
    );
    assert_eq!(
        keys(doc.path("spans").unwrap()),
        ["step", "force_compute", "rebuild", "integrate"]
    );
    assert_eq!(
        keys(doc.path("spans.step").unwrap()),
        ["count", "total_seconds", "mean_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"]
    );
    assert_eq!(
        keys(doc.path("scatter").unwrap()),
        [
            "lock_acquisitions",
            "lock_crossings",
            "merges",
            "merge_seconds",
            "private_bytes",
            "duplicate_pairs",
            "color_barriers",
            "rebalances",
            "planned_imbalance",
            "tasks",
            "steals",
            "ready_latency",
            "colors",
            "threads",
            "imbalance"
        ]
    );
    let colors = doc.path("scatter.colors").and_then(|v| v.as_arr()).unwrap();
    assert!(!colors.is_empty(), "an SDC run must report color timings");
    assert_eq!(
        keys(&colors[0]),
        ["color", "sweeps", "total_seconds", "mean_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"]
    );
    let threads = doc.path("scatter.threads").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(threads.len(), 2);
    assert_eq!(keys(&threads[0]), ["thread", "busy_seconds", "wait_seconds"]);
    assert_eq!(
        keys(doc.path("scatter.imbalance").unwrap()),
        ["factor", "efficiency"]
    );
    assert_eq!(
        keys(doc.path("scatter.ready_latency").unwrap()),
        ["count", "total_seconds", "mean_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"]
    );

    // And the text form round-trips losslessly through the parser.
    let back = RunReport::parse(&report.to_string()).expect("parse back");
    assert_eq!(report.json(), back.json());
}

#[test]
fn balanced_run_report_pins_the_balance_section() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(StrategyKind::Sdc { dims: 3 })
        .threads(2)
        .temperature(300.0)
        .seed(7)
        .metrics(true)
        .balance(true)
        .build()
        .expect("build");
    sim.run(2);
    let info = RunInfo {
        atoms: sim.system().len(),
        steps: sim.step_count(),
        threads: sim.engine().threads(),
        strategy: sim.engine().strategy().name().to_string(),
        dt_ps: 1e-3,
        balance: sim.engine().plan_choice().map(Into::into),
        shards: None,
    };
    let report = RunReport::collect(&info, sim.timers(), sim.metrics().expect("metrics on"));
    let doc = report.json();
    assert_eq!(
        keys(doc),
        ["schema", "case", "phases", "spans", "scatter", "balance"]
    );
    assert_eq!(
        keys(doc.path("balance").unwrap()),
        [
            "dims",
            "counts",
            "max_per_axis",
            "predicted_seconds",
            "predicted_imbalance"
        ]
    );
    let dims = doc.path("balance.dims").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(info.strategy, format!("sdc{dims}d"));
    let planned = doc
        .path("scatter.planned_imbalance")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(planned >= 1.0, "planned imbalance {planned}");
    let predicted = doc
        .path("balance.predicted_seconds")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(predicted > 0.0);
    // Round-trips like everything else.
    let back = RunReport::parse(&report.to_string()).expect("parse back");
    assert_eq!(report.json(), back.json());
}

#[test]
fn color_walls_are_consistent_with_the_paper_phases() {
    let (sim, report) = run_metered(3);
    let doc = report.json();

    // 2-D SDC → 4 colors; density + force sweeps each traverse every color
    // once per compute, and build() runs one initial compute. With EAM the
    // embedding phase also scatters? No — embedding is a per-atom map; only
    // density and force sweep colors: sweeps per color = 2 × computes.
    let computes = (sim.step_count() + 1) as f64;
    let colors = doc.path("scatter.colors").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(colors.len(), 4, "2-D SDC has 4 colors");
    for c in colors {
        assert_eq!(
            c.path("sweeps").and_then(|v| v.as_f64()),
            Some(2.0 * computes),
            "each color is swept twice per force computation"
        );
    }
    let barriers = doc
        .path("scatter.color_barriers")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert_eq!(barriers, 4.0 * 2.0 * computes);

    // Σ per-color wall ≲ density+force phase wall: the color regions are
    // strictly inside the paper-timed phases, so the sum can't exceed them
    // (modulo timer overhead), and in a scatter-dominated run they are the
    // bulk of it. Bounds are deliberately loose for noisy CI machines.
    let color_sum: f64 = colors
        .iter()
        .map(|c| c.path("total_seconds").and_then(|v| v.as_f64()).unwrap())
        .sum();
    let paper = doc
        .path("phases.paper_seconds")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(paper > 0.0 && color_sum > 0.0);
    let ratio = color_sum / paper;
    assert!(
        (0.05..=1.20).contains(&ratio),
        "color walls {color_sum}s vs paper phases {paper}s (ratio {ratio})"
    );

    // Busy + wait bookkeeping: each thread's busy+wait equals the total
    // color wall, and busy time was actually attributed.
    let wall: f64 = colors
        .iter()
        .map(|c| c.path("total_seconds").and_then(|v| v.as_f64()).unwrap())
        .sum();
    let threads = doc.path("scatter.threads").and_then(|v| v.as_arr()).unwrap();
    let mut busy_sum = 0.0;
    for t in threads {
        let busy = t.path("busy_seconds").and_then(|v| v.as_f64()).unwrap();
        let wait = t.path("wait_seconds").and_then(|v| v.as_f64()).unwrap();
        assert!(busy >= 0.0 && wait >= 0.0);
        assert!(
            busy + wait <= wall * 1.001 + 1e-9,
            "busy {busy} + wait {wait} exceeds wall {wall}"
        );
        busy_sum += busy;
    }
    assert!(busy_sum > 0.0, "no busy time was attributed to any thread");

    let eff = doc
        .path("scatter.imbalance.efficiency")
        .and_then(|v| v.as_f64())
        .unwrap();
    let factor = doc
        .path("scatter.imbalance.factor")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "efficiency {eff}");
    assert!(factor >= 1.0, "imbalance factor {factor}");
}

#[test]
fn sharded_run_report_pins_the_shards_section() {
    // A sharded driver fills `RunInfo::shards` from its exchange stats;
    // the section's key set is part of the golden schema.
    let (sim, _) = run_metered(2);
    let info = RunInfo {
        atoms: sim.system().len(),
        steps: sim.step_count(),
        threads: sim.engine().threads(),
        strategy: sim.engine().strategy().name().to_string(),
        dt_ps: 1e-3,
        balance: None,
        shards: Some(ShardsInfo {
            count: 2,
            backend: "virtual".to_string(),
            codec: "binary".to_string(),
            ghost_sent: 640,
            ghost_installed: 640,
            migrated: 3,
            rebuilds: 2,
            wire_bytes_sent: 65536,
            wire_bytes_recv: 65536,
            wire_seconds: 0.125,
            compute_wait_seconds: 0.0625,
        }),
    };
    let report = RunReport::collect(&info, sim.timers(), sim.metrics().expect("metrics on"));
    let doc = report.json();
    assert_eq!(
        keys(doc),
        ["schema", "case", "phases", "spans", "scatter", "shards"]
    );
    assert_eq!(
        keys(doc.path("shards").unwrap()),
        [
            "count",
            "backend",
            "codec",
            "ghost_sent",
            "ghost_installed",
            "migrated",
            "rebuilds",
            "wire_bytes_sent",
            "wire_bytes_recv",
            "wire_seconds",
            "compute_wait_seconds"
        ]
    );
    assert_eq!(doc.path("shards.count").and_then(|v| v.as_f64()), Some(2.0));
    assert_eq!(
        doc.path("shards.backend").and_then(|v| v.as_str()),
        Some("virtual")
    );
    assert_eq!(
        doc.path("shards.codec").and_then(|v| v.as_str()),
        Some("binary")
    );
    // Round-trips like everything else.
    let back = RunReport::parse(&report.to_string()).expect("parse back");
    assert_eq!(report.json(), back.json());
}

#[test]
fn metered_and_unmetered_runs_agree_bitwise() {
    // The observability layer must be read-only: with identical seeds, a
    // metered run and a plain run produce identical trajectories — for the
    // barriered reference and for the taskgraph strategy alike.
    for strategy in [
        StrategyKind::Sdc { dims: 2 },
        StrategyKind::TaskGraph { dims: 2 },
    ] {
        let build = |metrics: bool| {
            Simulation::builder(LatticeSpec::bcc_fe(9))
                .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
                .strategy(strategy)
                .threads(2)
                .temperature(300.0)
                .seed(7)
                .metrics(metrics)
                .build()
                .expect("build")
        };
        let mut plain = build(false);
        let mut metered = build(true);
        for _ in 0..3 {
            plain.step();
            metered.step();
        }
        assert!(plain.metrics().is_none());
        assert_eq!(plain.system().positions(), metered.system().positions());
        assert_eq!(plain.system().velocities(), metered.system().velocities());
    }
}

#[test]
fn taskgraph_report_counts_tasks_instead_of_barriers() {
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(StrategyKind::TaskGraph { dims: 2 })
        .threads(2)
        .temperature(300.0)
        .seed(7)
        .metrics(true)
        .build()
        .expect("build");
    sim.run(2);
    assert_eq!(sim.engine().strategy(), StrategyKind::TaskGraph { dims: 2 });
    let info = RunInfo {
        atoms: sim.system().len(),
        steps: sim.step_count(),
        threads: sim.engine().threads(),
        strategy: sim.engine().strategy().name().to_string(),
        dt_ps: 1e-3,
        balance: sim.engine().plan_choice().map(Into::into),
        shards: None,
    };
    let report = RunReport::collect(&info, sim.timers(), sim.metrics().expect("metrics on"));
    let doc = report.json();
    assert_eq!(
        doc.path("case.strategy").and_then(|v| v.as_str()),
        Some("taskgraph2d")
    );
    // Every (subdomain × sweep × compute) becomes one task completion, and
    // no color barrier ever runs; ready latency saw every task.
    let tasks = doc.path("scatter.tasks").and_then(|v| v.as_f64()).unwrap();
    let subdomains = sim.engine().plan().expect("plan").decomposition().subdomain_count() as f64;
    let computes = (sim.step_count() + 1) as f64;
    assert_eq!(tasks, subdomains * 2.0 * computes);
    assert_eq!(
        doc.path("scatter.color_barriers").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    let ready = doc
        .path("scatter.ready_latency.count")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert_eq!(ready, tasks);
    let colors = doc.path("scatter.colors").and_then(|v| v.as_arr()).unwrap();
    assert!(colors.is_empty(), "no per-color walls under taskgraph");
    // Busy time is attributed by pool workers, so imbalance stays defined.
    let steals = doc.path("scatter.steals").and_then(|v| v.as_f64()).unwrap();
    assert!(steals >= 0.0);
    let back = RunReport::parse(&report.to_string()).expect("parse back");
    assert_eq!(report.json(), back.json());
}
