//! Analytic ground-truth tests for the trajectory-analysis observables:
//! cases with closed-form answers (force-free drift, frozen velocities,
//! an ideal gas) that the estimators must reproduce exactly or to
//! statistical accuracy.

use md_geometry::{LatticeSpec, SimBox, Vec3};
use md_sim::analysis::{MsdTracker, Rdf, Vacf};
use md_sim::velocity::init_velocities;
use md_sim::System;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const FE_MASS: f64 = 55.845;

/// Advances a force-free system: straight-line drift plus wrapping.
fn drift(system: &mut System, dt: f64) {
    let velocities = system.velocities().to_vec();
    for (p, v) in system.positions_mut().iter_mut().zip(&velocities) {
        *p += *v * dt;
    }
    system.wrap();
}

#[test]
fn ballistic_msd_grows_as_velocity_times_time_squared() {
    // Without forces every atom moves in a straight line, so
    // MSD(t) = ⟨|v|²⟩ · t² exactly — including through periodic wraps,
    // which is precisely what the tracker's minimum-image unwrapping must
    // see through.
    let mut system = System::from_lattice(LatticeSpec::bcc_fe(4), FE_MASS);
    init_velocities(&mut system, 600.0, 99);
    let v_sq: f64 = system.velocities().iter().map(|v| v.norm_sq()).sum::<f64>()
        / system.len() as f64;

    let mut tracker = MsdTracker::new(&system);
    let dt = 0.05; // ps — large enough to force boundary crossings
    for k in 1..=40 {
        drift(&mut system, dt);
        tracker.sample(&system);
        let t = k as f64 * dt;
        let expect = v_sq * t * t;
        let got = tracker.msd();
        assert!(
            (got - expect).abs() <= 1e-9 * expect.max(1.0),
            "step {k}: MSD {got} != ⟨v²⟩t² = {expect}"
        );
    }
}

#[test]
fn frozen_velocities_keep_the_vacf_at_one() {
    // If velocities never change, C(t) = ⟨v(0)·v(t)⟩/⟨v²⟩ is identically 1
    // and the Green–Kubo integral is just the elapsed time.
    let mut system = System::from_lattice(LatticeSpec::bcc_fe(4), FE_MASS);
    init_velocities(&mut system, 300.0, 7);
    let mut vacf = Vacf::new(&system);
    let dt = 0.01;
    for _ in 0..21 {
        drift(&mut system, dt); // positions move; velocities are frozen
        let c = vacf.sample(&system);
        assert!((c - 1.0).abs() < 1e-12, "C = {c}");
    }
    // 20 trapezoidal intervals of a constant 1.
    let integral = vacf.integral(dt);
    assert!((integral - 20.0 * dt).abs() < 1e-12, "∫C dt = {integral}");
}

#[test]
fn ideal_gas_rdf_is_flat_and_integrates_to_n_minus_one() {
    // Uncorrelated uniform positions: g(r) = (N−1)/N ≈ 1 at every r, and
    // ∫₀^{r_max} ρ g 4πr² dr — the expected neighbor count within r_max —
    // is (N−1) times the ball/box volume fraction; extrapolating the flat
    // g over the whole box recovers N−1, the total number of neighbors.
    let edge = 21.0;
    let n = 600;
    let frames = 8;
    let r_max = 7.0;
    let n_bins = 70;

    let mut rng = SmallRng::seed_from_u64(20090924);
    let mut rdf = Rdf::new(r_max, n_bins);
    for _ in 0..frames {
        let positions: Vec<Vec3> = (0..n)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                    rng.gen::<f64>() * edge,
                )
            })
            .collect();
        let system = System::new(SimBox::cubic(edge), positions, 39.948);
        rdf.sample(&system);
    }
    let g = rdf.finish();
    let density = n as f64 / edge.powi(3);
    let dr = r_max / n_bins as f64;

    // Flatness: beyond the first few (low-statistics) bins the ideal gas
    // has no structure. 8 frames × 600 atoms gives ~1% shell statistics.
    for (r, v) in g.iter().filter(|(r, _)| *r > 2.0) {
        assert!(
            (*v - 1.0).abs() < 0.15,
            "ideal gas g({r}) = {v}, expected ≈ 1"
        );
    }

    // Integral: Σ ρ g(r) 4πr² dr over [0, r_max) counts each atom's
    // expected neighbors inside the sphere; scaled by the box/ball volume
    // ratio it must recover all N−1 neighbors.
    let count: f64 = g
        .iter()
        .map(|(r, v)| density * v * 4.0 * std::f64::consts::PI * r * r * dr)
        .sum();
    let ball = 4.0 / 3.0 * std::f64::consts::PI * r_max.powi(3);
    let implied_total = count * edge.powi(3) / ball;
    let expect = n as f64 - 1.0;
    let rel = (implied_total - expect).abs() / expect;
    assert!(
        rel < 0.03,
        "implied neighbor total {implied_total}, expected N−1 = {expect} (rel err {rel})"
    );
}
