//! End-to-end: serialize the Fe potential to a DYNAMO setfl table, load it
//! back, and run real dynamics with the loaded potential — the workflow of
//! a user bringing their own tabulated potential file.

use sdc_md::potential::{read_setfl, write_setfl, SetflHeader};
use sdc_md::prelude::*;

#[test]
fn dynamics_with_a_loaded_setfl_table_match_the_analytic_source() {
    let src = AnalyticEam::fe();
    let mut buf = Vec::new();
    write_setfl(&mut buf, &src, &SetflHeader::fe(), 3000, 3.0 * src.rho_e(), 3000).unwrap();
    let (header, loaded) = read_setfl(&buf[..]).unwrap();
    assert_eq!(header.element, "Fe");
    assert_eq!(header.mass, 55.845);

    let run = |choice: PotentialChoice| {
        let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
            .potential_choice(choice)
            .strategy(StrategyKind::Sdc { dims: 2 })
            .threads(2)
            .temperature(300.0)
            .seed(21)
            .build()
            .unwrap();
        sim.run(20);
        sim.thermo()
    };
    let analytic = run(PotentialChoice::Eam(std::sync::Arc::new(src)));
    let tabulated = run(PotentialChoice::Eam(std::sync::Arc::new(loaded)));
    // Table resolution limits agreement, but 20 steps of dynamics must stay
    // extremely close in every observable.
    assert!(
        (analytic.total - tabulated.total).abs() < 1e-3 * analytic.total.abs(),
        "total energy: {} vs {}",
        analytic.total,
        tabulated.total
    );
    assert!(
        (analytic.temperature - tabulated.temperature).abs() < 1.0,
        "temperature: {} vs {}",
        analytic.temperature,
        tabulated.temperature
    );
}

#[test]
fn setfl_mass_feeds_a_consistent_simulation() {
    // The header's mass is the right one to pass to the builder.
    let header = SetflHeader::fe();
    let sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(AnalyticEam::fe())
        .mass(header.mass)
        .temperature(100.0)
        .build()
        .unwrap();
    assert_eq!(sim.system().mass(), 55.845);
}
