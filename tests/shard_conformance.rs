//! Sharded halo-exchange conformance battery (virtual ranks).
//!
//! Splitting the box into slab shards must not change the physics. Three
//! workloads — a thermal melt, a carved void, and an energetic impact —
//! run under 1, 2 and 4 virtual ranks at 1 and 2 worker threads each:
//!
//! 1. **Single shard is bitwise**: one shard runs the exact engine stack
//!    the unsharded `Simulation` runs, in the same order, so its
//!    trajectory must match the reference bit for bit.
//! 2. **Multi-shard is conformant**: 2 and 4 shards change only the
//!    summation order inside ghost regions, so every coordinate stays
//!    within 1e-10 of the unsharded trajectory over a short run.
//! 3. **Fixed shard count is deterministic**: repeating a run at the same
//!    shard count reproduces the trajectory bitwise.
//!
//! The Verlet skin is deliberately tight (0.05 Å) so thermal drift forces
//! neighbor-list rebuilds — and with them atom migration across slab
//! boundaries — inside the short runs.

use md_geometry::Vec3;
use md_potential::AnalyticEam;
use md_shard::{Codec, ShardStats, ShardWorld, WorldSpec};
use md_sim::{PotentialChoice, Simulation, StrategyKind, System};
use std::sync::Arc;

const CODECS: [Codec; 2] = [Codec::Json, Codec::Binary];

const FE_MASS: f64 = 55.845;
const CELLS: usize = 5;
const SKIN: f64 = 0.05;
const DT: f64 = 0.002;
const STEPS: u64 = 6;

#[derive(Clone, Copy, Debug)]
enum Workload {
    Melt,
    Void,
    Impact,
}

const WORKLOADS: [Workload; 3] = [Workload::Melt, Workload::Void, Workload::Impact];

fn base_system(workload: Workload) -> System {
    let (bx, pos) = md_geometry::LatticeSpec::bcc_fe(CELLS).build();
    let pos = match workload {
        Workload::Void => {
            let l = bx.lengths();
            let center = Vec3::new(l.x * 0.25, l.y * 0.25, l.z * 0.25);
            let radius = l.x * 0.2;
            pos.into_iter()
                .filter(|p| (*p - center).norm() > radius)
                .collect()
        }
        _ => pos,
    };
    System::new(bx, pos, FE_MASS)
}

/// The unsharded reference at step 0: velocities seeded, impact applied,
/// forces fresh. The same state seeds every shard world.
fn reference(workload: Workload, threads: usize) -> Simulation {
    let mut sim = Simulation::from_system(base_system(workload))
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(threads)
        .skin(SKIN)
        .dt(DT)
        .temperature(300.0)
        .seed(7)
        .build()
        .expect("reference build");
    if let Workload::Impact = workload {
        let l = sim.system().sim_box().lengths();
        let center = Vec3::new(l.x * 0.75, l.y * 0.75, l.z * 0.75);
        let radius = l.x * 0.15;
        let positions = sim.system().positions().to_vec();
        let mut struck = 0;
        for (i, p) in positions.iter().enumerate() {
            if (*p - center).norm() < radius {
                sim.system_mut().velocities_mut()[i] *= 4.0;
                struck += 1;
            }
        }
        assert!(struck > 0, "impact cluster is empty");
        sim.refresh_forces();
    }
    sim
}

fn spec(threads: usize) -> WorldSpec {
    WorldSpec {
        potential: "fe".to_string(),
        tabulated: false,
        fused: true,
        simd: true,
        strategy: "sdc2d".to_string(),
        threads,
        skin: SKIN,
        dt: DT,
        mass: FE_MASS,
    }
}

fn run_world(
    start: &System,
    threads: usize,
    shards: usize,
    codec: Codec,
) -> (Vec<Vec3>, Vec<Vec3>, ShardStats) {
    let mut world =
        ShardWorld::virtual_world(start, &spec(threads), shards, codec).expect("world boot");
    world.refresh_forces().expect("refresh");
    world.run(STEPS).expect("run");
    assert_eq!(world.step_count(), STEPS);
    let (pos, vel) = world.gather().expect("gather");
    let stats = world.stats().expect("stats");
    world.shutdown();
    (pos, vel, stats)
}

fn assert_bitwise(a: &[Vec3], b: &[Vec3], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for d in 0..3 {
            assert_eq!(
                x[d].to_bits(),
                y[d].to_bits(),
                "{what}: atom {i} component {d}: {} vs {}",
                x[d],
                y[d]
            );
        }
    }
}

fn assert_close(a: &[Vec3], b: &[Vec3], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for d in 0..3 {
            assert!(
                (x[d] - y[d]).abs() <= tol,
                "{what}: atom {i} component {d}: {} vs {}",
                x[d],
                y[d]
            );
        }
    }
}

#[test]
fn single_shard_replays_the_unsharded_engine_bitwise() {
    for workload in WORKLOADS {
        for threads in [1usize, 2] {
            let mut sim = reference(workload, threads);
            let start = sim.system().clone();
            sim.run(STEPS as usize);
            for codec in CODECS {
                let (pos, vel, _) = run_world(&start, threads, 1, codec);
                let what = format!("{workload:?} t{threads} 1-shard {}", codec.name());
                assert_bitwise(sim.system().positions(), &pos, &format!("{what} pos"));
                assert_bitwise(sim.system().velocities(), &vel, &format!("{what} vel"));
            }
        }
    }
}

#[test]
fn multi_shard_trajectories_conform_to_the_unsharded_reference() {
    for workload in WORKLOADS {
        for threads in [1usize, 2] {
            let mut sim = reference(workload, threads);
            let start = sim.system().clone();
            sim.run(STEPS as usize);
            for shards in [2usize, 4] {
                for codec in CODECS {
                    let (pos, _, stats) = run_world(&start, threads, shards, codec);
                    let what =
                        format!("{workload:?} t{threads} {shards}-shard {}", codec.name());
                    assert_close(sim.system().positions(), &pos, 1e-10, &what);
                    // The battery must actually exercise the halo
                    // machinery: ghosts flow every step, every export a
                    // peer ships is installed at exactly one receiver
                    // (Σ sent == Σ installed), and the tight skin forces
                    // at least one rebuild (hence migration checks).
                    assert!(stats.ghost_sent > 0, "{what}: no ghosts shipped");
                    assert_eq!(
                        stats.ghost_sent, stats.ghost_installed,
                        "{what}: mesh lost or duplicated ghosts"
                    );
                    assert!(stats.rebuilds > 0, "{what}: skin never triggered a rebuild");
                }
            }
        }
    }
}

#[test]
fn fixed_shard_count_is_bitwise_reproducible() {
    let workload = Workload::Melt;
    for shards in [2usize, 4] {
        for codec in CODECS {
            let sim = reference(workload, 2);
            let start = sim.system().clone();
            let (pos_a, vel_a, stats_a) = run_world(&start, 2, shards, codec);
            let (pos_b, vel_b, stats_b) = run_world(&start, 2, shards, codec);
            let what = format!("{shards}-shard {} repeat", codec.name());
            assert_bitwise(&pos_a, &pos_b, &format!("{what} pos"));
            assert_bitwise(&vel_a, &vel_b, &format!("{what} vel"));
            assert_eq!(stats_a.rebuilds, stats_b.rebuilds, "{what}: rebuild cadence");
            assert_eq!(stats_a.migrated, stats_b.migrated, "{what}: migration count");
        }
    }
}

#[test]
fn json_and_binary_codecs_produce_the_same_trajectory_bitwise() {
    // Both codecs carry exact f64 bit patterns (hex strings vs raw LE
    // bits), so switching codec must not perturb the physics at all.
    let sim = reference(Workload::Melt, 2);
    let start = sim.system().clone();
    for shards in [2usize, 4] {
        let (pos_j, vel_j, stats_j) = run_world(&start, 2, shards, Codec::Json);
        let (pos_b, vel_b, stats_b) = run_world(&start, 2, shards, Codec::Binary);
        let what = format!("{shards}-shard cross-codec");
        assert_bitwise(&pos_j, &pos_b, &format!("{what} pos"));
        assert_bitwise(&vel_j, &vel_b, &format!("{what} vel"));
        assert_eq!(stats_j.ghost_sent, stats_b.ghost_sent, "{what}: ghost volume");
        assert_eq!(stats_j.migrated, stats_b.migrated, "{what}: migration count");
        // The binary frames must be materially leaner for the same
        // ghost traffic.
        assert!(
            stats_j.wire_bytes_sent > stats_b.wire_bytes_sent,
            "{what}: binary frames not smaller ({} vs {} B)",
            stats_j.wire_bytes_sent,
            stats_b.wire_bytes_sent
        );
    }
}

#[test]
fn migration_moves_atoms_across_slab_boundaries() {
    // The melt's boundary-plane atoms sit exactly on the 2-shard slab
    // boundary; thermal jitter pushes some across at the first rebuild.
    let sim = reference(Workload::Melt, 1);
    let start = sim.system().clone();
    let (_, _, stats) = run_world(&start, 1, 2, Codec::Json);
    assert!(stats.rebuilds > 0, "no rebuild in the melt run");
    assert!(
        stats.migrated > 0,
        "rebuilds happened but no atom changed owner"
    );
}
