//! Conformance, determinism and soak battery for the task-graph scatter
//! engine (the barrier-free execution of the SDC plan).
//!
//! Three layers:
//!
//! 1. **DAG safety/liveness (property tests)**: on random atom clouds and
//!    decomposition dimensionalities, the dependency graph (a) has exactly
//!    the edges a brute-force periodic halo-overlap oracle predicts, (b)
//!    never leaves two tasks with overlapping write footprints unordered,
//!    and (c) lets every task become runnable (Kahn's algorithm drains it).
//! 2. **Determinism battery**: taskgraph trajectories are bitwise-identical
//!    across thread counts and repeated runs on the carved-void and
//!    impact-cluster workloads, and within 1e-10 of the barriered SDC
//!    reference (the two orders differ — id order vs color order — so
//!    bitwise equality across engines is not expected, only conformance).
//! 3. **Stress/soak**: a 500-step melt with mid-run rebuilds and a
//!    hair-trigger rebalance threshold loses no task completions, and the
//!    `DowngradeEvent` fallback to barriered SDC fires cleanly when the
//!    pool cannot be built.

use md_geometry::{LatticeSpec, SimBox, Vec3};
use md_neighbor::{NeighborList, VerletConfig};
use md_potential::AnalyticEam;
use md_sim::{BalanceConfig, PotentialChoice, Simulation, StrategyKind, System};
use proptest::prelude::*;
use sdc_core::{DecompositionConfig, SdcPlan, TaskGraph};
use std::sync::Arc;

const FE_MASS: f64 = 55.845;

/// `inject_pool_failure` is a process-global consumed-on-next-build hook;
/// serialize every test that constructs a taskgraph pool so the injection
/// cannot be consumed by an unrelated build in a sibling test thread.
static POOL_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn pool_test_guard() -> std::sync::MutexGuard<'static, ()> {
    POOL_TESTS.lock().unwrap_or_else(|e| e.into_inner())
}

/// The carved-void workload of `tests/load_balance.rs`: a bcc iron crystal
/// with a sphere of radius 0.2·L removed from one octant.
fn void_system(cells: usize) -> System {
    let (bx, pos) = LatticeSpec::bcc_fe(cells).build();
    let l = bx.lengths();
    let center = Vec3::new(l.x * 0.25, l.y * 0.25, l.z * 0.25);
    let radius = l.x * 0.2;
    let kept: Vec<Vec3> = pos
        .into_iter()
        .filter(|p| (*p - center).norm() > radius)
        .collect();
    System::new(bx, kept, FE_MASS)
}

fn fe() -> PotentialChoice {
    PotentialChoice::Eam(Arc::new(AnalyticEam::fe()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dag_matches_the_halo_overlap_oracle_and_is_safe_and_live(
        seed in 0u64..500,
        n_atoms in 50usize..150,
        l in 24.0..40.0f64,
        dims in 1usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = SimBox::cubic(l);
        let pos: Vec<Vec3> = (0..n_atoms)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let (cutoff, skin) = (3.0, 0.5);
        let range = cutoff + skin;
        let nl = NeighborList::build(&b, &pos, VerletConfig::half(cutoff, skin));
        let plan = SdcPlan::build(&b, &pos, DecompositionConfig::new(dims, range)).unwrap();
        let d = plan.decomposition();
        let graph = TaskGraph::build(d, &b);
        let n = d.subdomain_count();
        prop_assert_eq!(graph.task_count(), n);

        // (a) Edge oracle: a conflict edge exists iff the two subdomains'
        // range-expanded AABBs intersect under periodic wrap — the same
        // predicate that defines SDC color safety.
        let mut expected_edges = 0usize;
        for a in 0..n {
            for c in (a + 1)..n {
                let overlap = d
                    .aabb(a)
                    .expanded(range)
                    .intersects_periodic(&d.aabb(c).expanded(range), &b);
                prop_assert_eq!(
                    graph.has_edge(a, c),
                    overlap,
                    "tasks {} and {}: edge vs oracle mismatch", a, c
                );
                if overlap {
                    expected_edges += 1;
                }
            }
        }
        prop_assert_eq!(graph.edge_count(), expected_edges);

        // (b) Safety: tasks left unordered by the DAG must have disjoint
        // write footprints on the *real* neighbor rows, so no interleaving
        // of runnable tasks can race on an output element.
        graph
            .validate_independence(&plan, nl.csr())
            .map_err(TestCaseError::fail)?;

        // (c) Liveness: Kahn's algorithm drains the whole graph — every
        // task becomes runnable exactly once, no deadlock or starvation.
        let mut indeg = graph.indegree().to_vec();
        let mut ready: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
        prop_assert!(!ready.is_empty() || n == 0, "nothing is initially runnable");
        let mut done = 0usize;
        while let Some(t) = ready.pop() {
            done += 1;
            for &dep in graph.dependents_of(t) {
                indeg[dep as usize] -= 1;
                if indeg[dep as usize] == 0 {
                    ready.push(dep as usize);
                }
            }
        }
        prop_assert_eq!(done, n, "some task never became runnable");
    }
}

fn taskgraph_trajectory(
    system: &System,
    dims: usize,
    threads: usize,
    steps: usize,
) -> (Vec<Vec3>, Vec<Vec3>) {
    let _g = pool_test_guard();
    let mut sim = Simulation::from_system(system.clone())
        .potential_choice(fe())
        .strategy(StrategyKind::TaskGraph { dims })
        .threads(threads)
        .temperature(300.0)
        .seed(23)
        .build()
        .expect("build");
    assert_eq!(
        sim.engine().strategy(),
        StrategyKind::TaskGraph { dims },
        "taskgraph must not have downgraded"
    );
    sim.run(steps);
    (
        sim.system().positions().to_vec(),
        sim.system().velocities().to_vec(),
    )
}

#[test]
fn taskgraph_trajectories_are_bitwise_identical_across_thread_counts() {
    // The accumulation order is fixed by the conflict DAG (ascending task
    // id between every overlapping pair), so the trajectory must not depend
    // on the worker count or on scheduling noise between repeated runs.
    let system = void_system(9);
    let mut thread_counts = vec![2usize, 4, 8];
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(t) = v.parse::<usize>() {
            if t >= 1 {
                thread_counts.push(t);
            }
        }
    }
    for dims in [2usize, 3] {
        let reference = taskgraph_trajectory(&system, dims, 1, 3);
        for &threads in &thread_counts {
            let got = taskgraph_trajectory(&system, dims, threads, 3);
            assert_eq!(reference.0, got.0, "positions differ at t{threads} d{dims}");
            assert_eq!(reference.1, got.1, "velocities differ at t{threads} d{dims}");
        }
        // Repeated runs at the same thread count: scheduling noise between
        // runs must not leak into the physics either.
        let again = taskgraph_trajectory(&system, dims, 4, 3);
        assert_eq!(reference.0, again.0, "repeat run diverged at d{dims}");
    }
}

#[test]
fn taskgraph_conforms_to_the_barriered_reference_on_the_carved_void() {
    let _g = pool_test_guard();
    let system = void_system(9);
    let forces_of = |strategy: StrategyKind, threads: usize| -> Vec<Vec3> {
        let sim = Simulation::from_system(system.clone())
            .potential_choice(fe())
            .strategy(strategy)
            .threads(threads)
            .build()
            .expect("build");
        sim.system().forces().to_vec()
    };
    let serial = forces_of(StrategyKind::Serial, 1);
    for dims in [1usize, 2, 3] {
        for threads in [1usize, 2, 4, 8] {
            let sdc = forces_of(StrategyKind::Sdc { dims }, threads);
            let graph = forces_of(StrategyKind::TaskGraph { dims }, threads);
            for (i, ((s, a), b)) in serial.iter().zip(&sdc).zip(&graph).enumerate() {
                for d in 0..3 {
                    assert!(
                        (a[d] - b[d]).abs() <= 1e-10,
                        "d{dims} t{threads} atom {i}.{d}: sdc {} vs graph {}",
                        a[d],
                        b[d]
                    );
                    assert!(
                        (s[d] - b[d]).abs() <= 1e-10,
                        "d{dims} t{threads} atom {i}.{d}: serial {} vs graph {}",
                        s[d],
                        b[d]
                    );
                }
            }
        }
    }
}

#[test]
fn taskgraph_tracks_serial_through_the_impact_heated_cluster() {
    let _g = pool_test_guard();
    // The impact workload of tests/load_balance.rs: quadruple the velocities
    // inside a cluster to provoke drift, rebuilds and re-planning.
    let build = |strategy: StrategyKind, threads: usize| {
        let mut sim = Simulation::from_system(void_system(9))
            .potential_choice(fe())
            .strategy(strategy)
            .threads(threads)
            .temperature(300.0)
            .seed(23)
            .build()
            .expect("build");
        let l = sim.system().sim_box().lengths();
        let center = Vec3::new(l.x * 0.75, l.y * 0.75, l.z * 0.75);
        let radius = l.x * 0.15;
        let positions = sim.system().positions().to_vec();
        for (i, p) in positions.iter().enumerate() {
            if (*p - center).norm() < radius {
                sim.system_mut().velocities_mut()[i] *= 4.0;
            }
        }
        sim.refresh_forces();
        sim.run(5);
        sim
    };
    let reference = build(StrategyKind::Serial, 1, );
    let bitwise_ref = build(StrategyKind::TaskGraph { dims: 3 }, 1);
    for threads in [2usize, 4, 8] {
        let graph = build(StrategyKind::TaskGraph { dims: 3 }, threads);
        // Bitwise vs the single-threaded taskgraph run…
        assert_eq!(
            bitwise_ref.system().positions(),
            graph.system().positions(),
            "taskgraph t{threads} not bitwise-deterministic on the impact workload"
        );
        // …and ≤ 1e-10 vs the serial oracle.
        for (i, (a, b)) in reference
            .system()
            .positions()
            .iter()
            .zip(graph.system().positions())
            .enumerate()
        {
            assert!(
                (*a - *b).norm() <= 1e-10,
                "t{threads}: atom {i} diverged: {a} vs {b}"
            );
        }
    }
}

#[test]
fn five_hundred_step_melt_loses_no_task_completions() {
    let _g = pool_test_guard();
    // Hot enough to force many neighbor rebuilds; the hair-trigger replan
    // threshold makes the balancer re-search at essentially every rebuild.
    let mut sim = Simulation::from_system(void_system(9))
        .potential_choice(fe())
        .strategy(StrategyKind::TaskGraph { dims: 3 })
        .threads(4)
        .temperature(1800.0)
        .seed(11)
        .metrics(true)
        .balance_config(BalanceConfig {
            replan_threshold: 1.01,
            ..BalanceConfig::default()
        })
        .build()
        .expect("build");
    assert!(sim.engine().downgrades().is_empty(), "unexpected downgrade");

    // build() ran one initial force compute under the post-balance plan.
    let tasks_per_compute = |sim: &Simulation| -> u64 {
        match sim.engine().strategy() {
            StrategyKind::TaskGraph { .. } => {
                let subdomains = sim
                    .engine()
                    .plan()
                    .expect("taskgraph keeps a plan")
                    .decomposition()
                    .subdomain_count() as u64;
                2 * subdomains // density + force sweeps
            }
            _ => 0,
        }
    };
    let mut expected = tasks_per_compute(&sim);
    for _ in 0..500 {
        sim.step();
        // Reading the engine *after* the step sees exactly the plan the
        // step's compute ran under (rebuilds happen before the compute).
        expected += tasks_per_compute(&sim);
    }
    let m = sim.metrics().expect("metrics on");
    assert_eq!(
        m.scatter.tasks.get(),
        expected,
        "task completions lost or duplicated across {} rebuilds",
        sim.engine().rebuilds()
    );
    assert_eq!(
        m.scatter.ready_latency.count(),
        expected,
        "ready-latency histogram missed tasks"
    );
    assert_eq!(m.scatter.color_barriers.get(), 0, "no color barriers may run");
    assert!(
        sim.engine().rebuilds() >= 3,
        "melt produced too few rebuilds ({}) to stress the graph rebuild path",
        sim.engine().rebuilds()
    );
    // The balancer stayed live throughout, and any rebalance it adopted
    // moved between plan-backed strategies only.
    assert!(sim.engine().plan_choice().is_some());
    for ev in sim.rebalances() {
        assert!(ev.from.plan_dims().is_some() && ev.to.plan_dims().is_some());
    }
    // Physics stayed finite through the melt.
    assert!(sim
        .system()
        .forces()
        .iter()
        .all(|f| f.norm().is_finite()));
}

#[test]
fn pool_construction_failure_downgrades_to_barriered_sdc() {
    let _g = pool_test_guard();
    sdc_core::taskgraph::inject_pool_failure(true);
    let mut sim = Simulation::from_system(void_system(9))
        .potential_choice(fe())
        .strategy(StrategyKind::TaskGraph { dims: 2 })
        .threads(4)
        .temperature(300.0)
        .seed(5)
        .metrics(true)
        .build()
        .expect("the fallback must keep construction alive");
    assert_eq!(sim.engine().strategy(), StrategyKind::Sdc { dims: 2 });
    let downgrade = &sim.downgrades()[0];
    assert_eq!(downgrade.from, StrategyKind::TaskGraph { dims: 2 });
    assert_eq!(downgrade.to, StrategyKind::Sdc { dims: 2 });
    assert!(downgrade.reason.contains("pool"));
    // The downgraded engine runs the barriered reference: color barriers
    // tick, no graph tasks do, and rebuilds never resurrect the dead pool.
    sim.run(3);
    assert_eq!(sim.engine().strategy(), StrategyKind::Sdc { dims: 2 });
    let m = sim.metrics().expect("metrics on");
    assert!(m.scatter.color_barriers.get() > 0);
    assert_eq!(m.scatter.tasks.get(), 0);
    assert!(sim.system().forces().iter().all(|f| f.norm().is_finite()));
}
