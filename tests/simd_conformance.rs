//! Conformance battery for the SIMD fused EAM path.
//!
//! The determinism contract under test: the lane-batched spline kernels are
//! **bitwise identical** to the scalar fused path — same rho, fp, forces,
//! trajectories — for every slot-providing strategy, at every thread count,
//! on both potential backends, across checkpoint round-trips, and in both
//! build profiles (tier-1 job 12 runs this file in release and again with
//! `MD_SIMD_SCALAR=1` so the runtime scalar fallback is exercised on any
//! host). Physics-level nets: central-difference force consistency on the
//! SIMD path, and the out-of-table density guard surfacing through the
//! watchdog as the structured root cause.

use sdc_md::prelude::*;
use sdc_md::sim::checkpoint::{load_checkpoint, save_checkpoint};
use std::path::PathBuf;

/// Perturb the perfect crystal deterministically so forces are non-zero.
fn rattle(system: &mut System, amplitude: f64) {
    for (k, p) in system.positions_mut().iter_mut().enumerate() {
        let k = k as f64;
        p.x += amplitude * (0.917 * k).sin();
        p.y += amplitude * (1.311 * k).cos();
        p.z += amplitude * (2.113 * k).sin();
    }
    system.wrap();
}

/// A seeded 9³-cell iron simulation with every knob pinned except the ones
/// under test.
fn sim_with(tabulated: bool, strategy: StrategyKind, threads: usize, simd: bool) -> Simulation {
    let builder = Simulation::builder(LatticeSpec::bcc_fe(9));
    let builder = if tabulated {
        let src = AnalyticEam::fe();
        builder.potential(TabulatedEam::standard(&src, src.rho_e()))
    } else {
        builder.potential(AnalyticEam::fe())
    };
    builder
        .strategy(strategy)
        .threads(threads)
        .temperature(320.0)
        .seed(7)
        .simd(simd)
        .build()
        .expect("buildable configuration")
}

fn assert_states_bitwise(a: &Simulation, b: &Simulation, what: &str) {
    assert_eq!(
        a.system().positions(),
        b.system().positions(),
        "{what}: positions must be bitwise equal"
    );
    assert_eq!(
        a.system().velocities(),
        b.system().velocities(),
        "{what}: velocities must be bitwise equal"
    );
    assert_eq!(
        a.system().forces(),
        b.system().forces(),
        "{what}: forces must be bitwise equal"
    );
    assert_eq!(
        a.system().rho(),
        b.system().rho(),
        "{what}: densities must be bitwise equal"
    );
}

/// The tentpole contract: multi-step trajectories under the SIMD path are
/// bitwise identical to the scalar fused path for every slot-providing
/// strategy and the whole thread matrix, on both potential backends.
#[test]
fn simd_trajectories_are_bitwise_identical_to_scalar_fused() {
    for tabulated in [false, true] {
        for strategy in [
            StrategyKind::Serial,
            StrategyKind::Sdc { dims: 3 },
            StrategyKind::TaskGraph { dims: 3 },
        ] {
            for threads in [1, 2, 4, 8] {
                let mut on = sim_with(tabulated, strategy, threads, true);
                let mut off = sim_with(tabulated, strategy, threads, false);
                assert!(on.engine().simd(), "SIMD must be the default");
                assert!(!off.engine().simd());
                for round in 0..3 {
                    on.run(4);
                    off.run(4);
                    assert_states_bitwise(
                        &on,
                        &off,
                        &format!("tab={tabulated} {strategy} t={threads} round {round}"),
                    );
                }
            }
        }
    }
}

/// Same configuration run twice must reproduce the trajectory bit for bit —
/// the run-to-run determinism half of the contract, on the SIMD default.
#[test]
fn simd_runs_are_deterministic_run_to_run() {
    for threads in [2, 4] {
        let mut a = sim_with(true, StrategyKind::Sdc { dims: 3 }, threads, true);
        let mut b = sim_with(true, StrategyKind::Sdc { dims: 3 }, threads, true);
        a.run(8);
        b.run(8);
        assert_states_bitwise(&a, &b, &format!("run-to-run t={threads}"));
    }
}

/// Central-difference force consistency on the SIMD path: analytic forces
/// must equal `-dE/dx` on both potential backends, under a slot-providing
/// parallel strategy, with the batched kernels doing the evaluation.
#[test]
fn simd_forces_match_numerical_gradient() {
    for (label, pot) in [
        (
            "analytic",
            PotentialChoice::Eam(std::sync::Arc::new(AnalyticEam::fe())),
        ),
        ("tabulated", {
            let src = AnalyticEam::fe();
            PotentialChoice::Eam(std::sync::Arc::new(TabulatedEam::standard(&src, src.rho_e())))
        }),
    ] {
        let mut system = System::from_lattice(
            LatticeSpec::bcc_fe(9),
            sdc_md::sim::units::FE_MASS,
        );
        rattle(&mut system, 0.05);
        let mut eng =
            ForceEngine::new(&system, pot, StrategyKind::Sdc { dims: 3 }, 2, 0.3).unwrap();
        assert!(eng.simd(), "SIMD must be the default");
        eng.compute(&mut system);
        assert!(
            eng.lane_occupancy().is_some_and(|o| o > 0.5 && o <= 1.0),
            "{label}: the SIMD pass must have built a cluster grouping"
        );
        let forces: Vec<Vec3> = system.forces().to_vec();
        let h = 1e-5;
        let stride = (system.len() / 5).max(1);
        for atom in (0..system.len()).step_by(stride) {
            for axis in 0..3 {
                let orig = system.positions()[atom];
                system.positions_mut()[atom][axis] = orig[axis] + h;
                eng.compute(&mut system);
                let ep = eng.potential_energy(&system);
                system.positions_mut()[atom][axis] = orig[axis] - h;
                eng.compute(&mut system);
                let em = eng.potential_energy(&system);
                system.positions_mut()[atom] = orig;
                let numeric = -(ep - em) / (2.0 * h);
                assert!(
                    (forces[atom][axis] - numeric).abs()
                        < 1e-4 * forces[atom][axis].abs().max(1.0),
                    "{label}: atom {atom} axis {axis}: analytic {} vs numeric {numeric}",
                    forces[atom][axis]
                );
            }
        }
    }
}

/// Satellite 3: cluster batching must not leak into observable state. The
/// checkpoint a SIMD run writes mid-run is byte-identical to the scalar
/// run's, and resuming that checkpoint with SIMD off continues bitwise
/// identically to resuming with SIMD on.
#[test]
fn checkpoint_roundtrip_is_bitwise_across_simd_settings() {
    let dir = std::env::temp_dir();
    let ckpt_on: PathBuf = dir.join(format!("simd-conf-on-{}.ckpt", std::process::id()));
    let ckpt_off: PathBuf = dir.join(format!("simd-conf-off-{}.ckpt", std::process::id()));

    let mut on = sim_with(true, StrategyKind::Sdc { dims: 2 }, 2, true);
    let mut off = sim_with(true, StrategyKind::Sdc { dims: 2 }, 2, false);
    on.run(6);
    off.run(6);
    save_checkpoint(&ckpt_on, on.system(), on.step_count()).expect("save simd-on checkpoint");
    save_checkpoint(&ckpt_off, off.system(), off.step_count()).expect("save simd-off checkpoint");
    let bytes_on = std::fs::read(&ckpt_on).expect("read simd-on checkpoint");
    let bytes_off = std::fs::read(&ckpt_off).expect("read simd-off checkpoint");
    assert_eq!(
        bytes_on, bytes_off,
        "a mid-run checkpoint must be byte-identical with clustering on or off"
    );

    let resume = |simd: bool| -> Simulation {
        let (system, step) = load_checkpoint(&ckpt_on).expect("load checkpoint");
        let src = AnalyticEam::fe();
        let mut sim = Simulation::from_system(system)
            .potential(TabulatedEam::standard(&src, src.rho_e()))
            .strategy(StrategyKind::Sdc { dims: 2 })
            .threads(2)
            .simd(simd)
            .start_step(step)
            .build()
            .expect("resumable");
        sim.run(4);
        sim
    };
    let resumed_off = resume(false);
    let resumed_on = resume(true);
    assert_states_bitwise(
        &resumed_on,
        &resumed_off,
        "resume from a clustering-on checkpoint under clustering off",
    );
    assert_eq!(resumed_off.step_count(), 10);

    let _ = std::fs::remove_file(&ckpt_on);
    let _ = std::fs::remove_file(&ckpt_off);
}

/// Satellite 2, exercised through the batched path and meaningful in
/// release builds (where `UniformSpline::locate` clamps silently instead of
/// debug-asserting): driving an atom into another's core pushes the host
/// density past the tabulated embedding domain, and the watchdog must
/// surface the structured `DensityOutOfRange` root cause — not a NaN
/// symptom — with the SIMD kernels doing the evaluation.
#[test]
fn out_of_table_density_surfaces_through_the_simd_path() {
    let src = AnalyticEam::fe();
    let tab = TabulatedEam::standard(&src, src.rho_e());
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(9))
        .potential(tab)
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(2)
        .temperature(300.0)
        .seed(11)
        .build()
        .expect("buildable");
    assert!(sim.engine().simd(), "the default path is under test");
    let cfg = RecoveryConfig {
        checkpoint_every: 10,
        ..RecoveryConfig::default()
    };
    let mut fired = false;
    let report = sim
        .run_with_recovery_observed(30, &cfg, |system, step| {
            if step == 15 && !fired {
                fired = true;
                let target = system.positions()[0] + Vec3::new(0.6, 0.0, 0.0);
                system.positions_mut()[1] = target;
            }
        })
        .expect("run completes despite the fault");
    assert!(fired);
    assert_eq!(report.steps_completed, 30);
    assert!(
        report
            .faults
            .iter()
            .any(|f| matches!(f.fault, SimFault::DensityOutOfRange { .. })),
        "expected DensityOutOfRange, got {:?}",
        report.faults
    );
    assert!(
        !report
            .faults
            .iter()
            .any(|f| matches!(f.fault, SimFault::NonFiniteForce { .. })),
        "the root cause, not the NaN-force symptom, must be reported: {:?}",
        report.faults
    );
}
