//! Non-uniform-density conformance and load-balance suite.
//!
//! The paper's benchmark crystals are uniform, so equal-volume subdomains
//! carry equal work and the SDC color barriers cost little. These tests
//! build the workloads that *break* that assumption — a carved spherical
//! void and an impact-heated cluster — and check two things:
//!
//! 1. **Conformance**: every strategy, balanced or not, at 1/2/4/8 threads,
//!    agrees with the serial oracle to ≤ 1e-10 per force component. The
//!    balancer may change the decomposition; it must never change physics.
//! 2. **Balance**: on the skewed pair distribution, LPT packing provably
//!    lowers the predicted thread imbalance versus in-order chunking, and
//!    the plan search never returns a plan with a worse predicted makespan
//!    than the default uncapped decomposition.

use md_geometry::{LatticeSpec, Vec3};
use md_neighbor::{NeighborList, VerletConfig};
use md_potential::AnalyticEam;
use md_sim::{BalanceConfig, PotentialChoice, Simulation, StrategyKind, System};
use sdc_core::schedule::{self, ColorSchedule, MakespanParams};
use sdc_core::{DecompositionConfig, SdcPlan};
use std::sync::Arc;

const FE_MASS: f64 = 55.845;
const CUTOFF: f64 = 5.67;
const SKIN: f64 = 0.3;
const RANGE: f64 = CUTOFF + SKIN;

/// A bcc iron crystal with a spherical void carved out of one octant —
/// the subdomains overlapping the void hold far fewer pairs than the rest.
fn void_system(cells: usize) -> System {
    let (bx, pos) = LatticeSpec::bcc_fe(cells).build();
    let l = bx.lengths();
    let center = Vec3::new(l.x * 0.25, l.y * 0.25, l.z * 0.25);
    let radius = l.x * 0.2;
    let kept: Vec<Vec3> = pos
        .into_iter()
        .filter(|p| (*p - center).norm() > radius)
        .collect();
    System::new(bx, kept, FE_MASS)
}

fn forces_of(system: &System, strategy: StrategyKind, threads: usize, balance: bool) -> Vec<Vec3> {
    let sim = Simulation::from_system(system.clone())
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(strategy)
        .threads(threads)
        .balance(balance)
        .build()
        .expect("build");
    sim.system().forces().to_vec()
}

fn assert_forces_match(reference: &[Vec3], got: &[Vec3], what: &str) {
    assert_eq!(reference.len(), got.len(), "{what}: atom count");
    for (i, (a, b)) in reference.iter().zip(got).enumerate() {
        for d in 0..3 {
            assert!(
                (a[d] - b[d]).abs() <= 1e-10,
                "{what}: atom {i} component {d}: {} vs {}",
                a[d],
                b[d]
            );
        }
    }
}

#[test]
fn every_strategy_matches_serial_on_the_carved_void() {
    let system = void_system(9);
    let reference = forces_of(&system, StrategyKind::Serial, 1, false);
    let strategies = [
        StrategyKind::Sdc { dims: 1 },
        StrategyKind::Sdc { dims: 2 },
        StrategyKind::Sdc { dims: 3 },
        StrategyKind::TaskGraph { dims: 1 },
        StrategyKind::TaskGraph { dims: 2 },
        StrategyKind::TaskGraph { dims: 3 },
        StrategyKind::Critical,
        StrategyKind::Atomic,
        StrategyKind::Locks,
        StrategyKind::LocalWrite,
        StrategyKind::Privatized,
        StrategyKind::Redundant,
    ];
    for threads in [1usize, 2, 4, 8] {
        for strategy in strategies {
            let got = forces_of(&system, strategy, threads, false);
            assert_forces_match(&reference, &got, &format!("{strategy} t{threads}"));
        }
        // Balanced SDC: the search may move to a different dims — physics
        // must not move with it.
        for dims in [1usize, 2, 3] {
            let got = forces_of(&system, StrategyKind::Sdc { dims }, threads, true);
            assert_forces_match(
                &reference,
                &got,
                &format!("balanced sdc{dims}d t{threads}"),
            );
        }
    }
}

#[test]
fn balanced_trajectory_tracks_serial_through_an_impact_heated_cluster() {
    // Heat a spherical cluster to provoke drift, rebuilds and (possibly)
    // mid-run re-planning; the balanced SDC trajectory must stay within
    // 1e-10 of the serial one after several steps.
    let build = |strategy: StrategyKind, threads: usize, balance: bool| {
        let mut sim = Simulation::from_system(void_system(9))
            .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
            .strategy(strategy)
            .threads(threads)
            .temperature(300.0)
            .seed(23)
            .metrics(balance)
            .balance(balance)
            .build()
            .expect("build");
        // Impact: quadruple the velocities inside a cluster near the origin.
        let l = sim.system().sim_box().lengths();
        let center = Vec3::new(l.x * 0.75, l.y * 0.75, l.z * 0.75);
        let radius = l.x * 0.15;
        let positions = sim.system().positions().to_vec();
        for (i, p) in positions.iter().enumerate() {
            if (*p - center).norm() < radius {
                sim.system_mut().velocities_mut()[i] *= 4.0;
            }
        }
        sim.refresh_forces();
        sim.run(5);
        sim
    };
    let reference = build(StrategyKind::Serial, 1, false);
    for threads in [2usize, 4] {
        let balanced = build(StrategyKind::Sdc { dims: 3 }, threads, true);
        for (i, (a, b)) in reference
            .system()
            .positions()
            .iter()
            .zip(balanced.system().positions())
            .enumerate()
        {
            assert!(
                (*a - *b).norm() <= 1e-10,
                "t{threads}: atom {i} diverged: {a} vs {b}"
            );
        }
        // The balancer stayed live through the rebuilds the impact caused.
        assert!(balanced.engine().plan_choice().is_some());
    }
}

#[test]
fn lpt_packing_lowers_the_predicted_imbalance_on_the_void() {
    // bcc_fe(17) fits 4 subdomains per axis (48.7 Å ≥ 4·2·5.97), so a 1-D
    // or 2-D decomposition has ≥ 2 tasks per color and ordering matters.
    let system = void_system(17);
    let nl = NeighborList::build(
        system.sim_box(),
        system.positions(),
        VerletConfig::half(CUTOFF, SKIN),
    );
    let plan = SdcPlan::build(
        system.sim_box(),
        system.positions(),
        DecompositionConfig::new(2, RANGE),
    )
    .expect("bcc_fe(17) hosts a 2-D split");
    let costs: Vec<f64> = plan
        .pair_counts(nl.csr())
        .iter()
        .map(|&c| c as f64)
        .collect();
    // The void skews per-subdomain pair counts noticeably.
    let max = costs.iter().cloned().fold(0.0, f64::max);
    let mean = costs.iter().sum::<f64>() / costs.len() as f64;
    assert!(max / mean > 1.05, "void produced no skew: {}", max / mean);

    for threads in [2usize, 4, 8] {
        let mut worst_gain: f64 = f64::INFINITY;
        for color in 0..plan.decomposition().color_count() {
            let ids = plan.decomposition().of_color(color);
            if ids.len() < 2 {
                continue;
            }
            let in_order = schedule::imbalance_of(&schedule::chunked_loads(ids, &costs, threads));
            let packed = schedule::imbalance_of(&schedule::packed_loads(
                &schedule::lpt_order(ids, &costs),
                &costs,
                threads,
            ));
            assert!(
                packed <= in_order + 1e-12,
                "t{threads} color {color}: LPT {packed} worse than in-order {in_order}"
            );
            worst_gain = worst_gain.min(in_order - packed);
        }
        assert!(worst_gain.is_finite(), "no color had multiple tasks");
    }

    // While tasks ≥ threads, the thread-aware imbalance never exceeds the
    // per-task one (with more threads than tasks, empty bins legitimately
    // inflate the max/mean ratio — that regime stays ≥ 1 but uncomparable).
    let threaded = plan.imbalance_threaded(nl.csr(), 2);
    assert!(threaded >= 1.0);
    assert!(threaded <= plan.imbalance(nl.csr()) + 1e-12);
    assert!(plan.imbalance_threaded(nl.csr(), 8) >= 1.0);
}

#[test]
fn plan_search_never_predicts_worse_than_the_default_decomposition() {
    let system = void_system(17);
    let nl = NeighborList::build(
        system.sim_box(),
        system.positions(),
        VerletConfig::half(CUTOFF, SKIN),
    );
    let machine = BalanceConfig::default().machine;
    for threads in [1usize, 2, 4, 8] {
        let params: MakespanParams = md_perfmodel::makespan_params(&machine, threads);
        let best = schedule::search_plans(
            system.sim_box(),
            system.positions(),
            nl.csr(),
            RANGE,
            &[1, 2, 3],
            threads,
            &params,
        )
        .expect("feasible");
        // Baseline: the uncapped 3-D decomposition mdrun defaults to.
        let default_plan = SdcPlan::build(
            system.sim_box(),
            system.positions(),
            DecompositionConfig::new(3, RANGE),
        )
        .unwrap();
        let costs: Vec<f64> = default_plan
            .pair_counts(nl.csr())
            .iter()
            .map(|&c| c as f64)
            .collect();
        let default_schedule = ColorSchedule::lpt(default_plan.decomposition(), &costs, threads);
        assert!(
            best.choice.predicted_seconds <= default_schedule.predicted_seconds(&params) + 1e-15,
            "t{threads}: search {} worse than default {}",
            best.choice.predicted_seconds,
            default_schedule.predicted_seconds(&params)
        );
        assert!(best.plan.schedule().is_some(), "winner carries its schedule");
        assert!(best.choice.predicted_imbalance >= 1.0);
    }
}
