//! Cross-build conformance suite for the parallel neighbor-list pipeline.
//!
//! The contract under test: [`NeighborList::build_parallel`] is **bitwise
//! identical** to the serial [`NeighborList::build`] — same CSR `offsets`,
//! same `indices` — at every thread count, for both list kinds, on arbitrary
//! boxes and densities; and both agree with the O(n²) brute-force reference
//! on the stored pair set. Plus the end-to-end skin invariant: between
//! rebuilds, no pair inside the bare cutoff is ever absent from the active
//! list.

use proptest::prelude::*;
use sdc_md::core::ParallelContext;
use sdc_md::prelude::*;
use std::sync::OnceLock;

/// Shared thread pools — building a pool per proptest case is wasteful and
/// (on the sweep's larger clouds) would dominate the run time.
fn ctx(threads: usize) -> &'static ParallelContext {
    static POOLS: OnceLock<Vec<ParallelContext>> = OnceLock::new();
    let pools = POOLS.get_or_init(|| {
        [1usize, 2, 4, 8]
            .into_iter()
            .map(ParallelContext::new)
            .collect()
    });
    match threads {
        1 => &pools[0],
        2 => &pools[1],
        4 => &pools[2],
        8 => &pools[3],
        other => panic!("no shared pool for {other} threads"),
    }
}

fn random_cloud(seed: u64, n: usize, l: f64) -> Vec<Vec3> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
        .collect()
}

fn sorted_pairs(nl: &NeighborList) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = nl
        .csr()
        .iter_rows()
        .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Small random clouds: serial, parallel (each tested thread count) and
    /// brute force must agree — the parallel build byte-for-byte, the brute
    /// force on the pair set.
    #[test]
    fn parallel_build_conforms_on_random_clouds(
        seed in 0u64..10_000,
        n in 64usize..320,
        l in 16.0..36.0f64,
        cutoff in 3.0..6.0f64,
        skin in 0.0..0.8f64,
        half in proptest::bool::ANY,
    ) {
        prop_assume!(l >= 2.0 * (cutoff + skin));
        let b = SimBox::cubic(l);
        let pos = random_cloud(seed, n, l);
        let cfg = if half {
            VerletConfig::half(cutoff, skin)
        } else {
            VerletConfig::full(cutoff, skin)
        };
        let serial = NeighborList::build(&b, &pos, cfg);
        let brute = NeighborList::build_brute_force(&b, &pos, cfg);
        prop_assert_eq!(sorted_pairs(&serial), sorted_pairs(&brute));
        for threads in [1usize, 2, 4, 8] {
            let parallel =
                ctx(threads).install(|| NeighborList::build_parallel(&b, &pos, cfg));
            prop_assert_eq!(
                serial.csr().offsets(), parallel.csr().offsets(),
                "offsets diverged at {} threads", threads
            );
            prop_assert_eq!(
                serial.csr().indices(), parallel.csr().indices(),
                "indices diverged at {} threads", threads
            );
        }
    }

    /// Clouds past the parallel-path thresholds (atom chunking at 1024,
    /// chunked counting sort at 2048): the real chunk/scatter machinery runs
    /// and must still be bitwise identical. Brute force is skipped — the
    /// serial build is already pinned to it above.
    #[test]
    fn parallel_build_is_bitwise_identical_on_large_clouds(
        seed in 0u64..10_000,
        n in 2_100usize..2_600,
        half in proptest::bool::ANY,
    ) {
        let l = 40.0;
        let b = SimBox::cubic(l);
        let pos = random_cloud(seed, n, l);
        let cfg = if half {
            VerletConfig::half(5.0, 0.5)
        } else {
            VerletConfig::full(5.0, 0.5)
        };
        let serial = NeighborList::build(&b, &pos, cfg);
        for threads in [2usize, 4, 8] {
            let parallel =
                ctx(threads).install(|| NeighborList::build_parallel(&b, &pos, cfg));
            prop_assert_eq!(serial.csr().offsets(), parallel.csr().offsets());
            prop_assert_eq!(serial.csr().indices(), parallel.csr().indices());
        }
    }
}

/// End-to-end skin invariant (the `skin/2` rebuild trigger): at every step
/// of an EAM melt, every pair currently inside the *bare* cutoff must be
/// present in the active (possibly stale) half list — otherwise forces
/// would silently drop interactions between rebuilds.
#[test]
fn no_in_cutoff_pair_is_ever_missing_between_rebuilds() {
    let cutoff = AnalyticEam::fe().cutoff();
    let mut sim = Simulation::builder(LatticeSpec::bcc_fe(5))
        .potential(AnalyticEam::fe())
        .temperature(1200.0) // hot: fast drift, frequent rebuilds
        .seed(7)
        .skin(0.3)
        .build()
        .unwrap();
    for step in 1..=60 {
        sim.step();
        let b = *sim.system().sim_box();
        let pos = sim.system().positions();
        let csr = sim.engine().neighbor_list().csr();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if b.distance_sq(pos[i], pos[j]) < cutoff * cutoff {
                    assert!(
                        csr.row(i).contains(&(j as u32)),
                        "step {step}: in-cutoff pair ({i}, {j}) missing from half list"
                    );
                }
            }
        }
    }
    assert!(
        sim.engine().rebuilds() > 0,
        "melt never triggered a rebuild; the test exercised nothing"
    );
}
