//! §I workload ratio, measured: one EAM step vs one Morse step with
//! identical cutoff and neighbor lists ("the computation workload required
//! by the embedded atom method is nearly more than twice the workload of
//! the pair-wise potential", §I).
//!
//! This is the one wall-clock-sensitive test in the suite, so it gets its
//! own test binary: cargo runs test *binaries* sequentially while tests
//! *within* a binary run concurrently, and on a loaded single-core host a
//! concurrent sibling preempting the timing loop can compress the measured
//! ratio arbitrarily. Trials are interleaved and each side keeps its
//! *minimum* time (noise only ever adds time). Debug builds compress the
//! true ~2× release-build ratio (bounds checks and unvectorized scalar code
//! tax the cheap pair kernel proportionally more), so the gate here is a
//! conservative 1.25; the release-build benches (`eam_vs_pair`) and
//! EXPERIMENTS.md §I carry the full-strength claim.

use sdc_md::core::StrategyKind;
use sdc_md::prelude::*;
use std::sync::Arc;

#[test]
fn section_i_eam_does_about_twice_the_pair_work() {
    let spec = LatticeSpec::bcc_fe(9);
    let time_one = |pot: PotentialChoice| {
        let system = System::from_lattice(spec, 55.845);
        let mut engine = ForceEngine::new(&system, pot, StrategyKind::Serial, 1, 0.3).unwrap();
        let mut system = system;
        engine.compute(&mut system); // warm-up
        engine.reset_timers();
        for _ in 0..5 {
            engine.compute(&mut system);
        }
        engine.timers().paper_time().as_secs_f64()
    };
    let eam_pot = || PotentialChoice::Eam(Arc::new(AnalyticEam::fe()));
    let pair_pot = || PotentialChoice::Pair(Arc::new(Morse::new(0.4, 1.6, 2.4824, 5.67)));
    let (mut eam, mut pair) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        eam = eam.min(time_one(eam_pot()));
        pair = pair.min(time_one(pair_pot()));
    }
    let ratio = eam / pair;
    assert!(ratio > 1.25, "EAM/pair work ratio {ratio:.2}");
}
