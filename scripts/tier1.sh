#!/usr/bin/env bash
# Tier-1 verification: everything a change must pass before merging.
#
#   ./scripts/tier1.sh            # release build + tests + lint + debug job
#
# Jobs:
#   1. release build              (the artifact we benchmark)
#   2. full test suite            (unit + integration + doc tests)
#   3. clippy, warnings are errors
#   4. debug-assertions test job  (re-runs the suite with debug_assertions
#      on, exercising the SDC footprint-disjointness checks and every
#      debug-only invariant; `cargo test` default profile already enables
#      them — this job pins that explicitly so a profile tweak cannot
#      silently turn them off)
#   5. thread-matrix test job     (re-runs the determinism-sensitive crates
#      under RAYON_NUM_THREADS=2 and =4, so the global-pool default thread
#      count cannot mask a parallel neighbor-build or scatter divergence)
#   6. metrics regression gate    (short metered mdrun, diffed against the
#      checked-in golden report; counters must match, timings may only
#      grow within a deliberately generous tolerance)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/6] release build"
cargo build --release --workspace

echo "==> [2/6] test suite"
cargo test --workspace -q

echo "==> [3/6] clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/6] debug-assertions test job"
RUSTFLAGS="-C debug-assertions=on" cargo test --workspace -q --profile dev

echo "==> [5/6] thread-matrix test job"
for t in 2 4; do
  echo "    RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q -p md-neighbor -p sdc-core -p sdc-md
done

echo "==> [6/6] metrics regression gate"
report="$(mktemp /tmp/tier1_metrics.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$report" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  scripts/metrics_baseline.json "$report" --tol 1.10 --time-tol 50
rm -f "$report"

echo "tier-1: all green"
