#!/usr/bin/env bash
# Tier-1 verification: everything a change must pass before merging.
#
#   ./scripts/tier1.sh            # release build + tests + lint + debug job
#
# Jobs:
#   1. release build              (the artifact we benchmark)
#   2. full test suite            (unit + integration + doc tests)
#   3. clippy, warnings are errors
#   4. debug-assertions test job  (re-runs the suite with debug_assertions
#      on, exercising the SDC footprint-disjointness checks and every
#      debug-only invariant; `cargo test` default profile already enables
#      them — this job pins that explicitly so a profile tweak cannot
#      silently turn them off)
#   5. thread-matrix test job     (re-runs the determinism-sensitive crates
#      under RAYON_NUM_THREADS=2 and =4, so the global-pool default thread
#      count cannot mask a parallel neighbor-build or scatter divergence)
#   6. metrics regression gate    (short metered mdrun, diffed against the
#      checked-in golden report; counters must match, timings may only
#      grow within a deliberately generous tolerance)
#   7. fused-path conformance     (the same short metered mdrun on the
#      reference and the fused EAM paths; every counter must match
#      *exactly* — the fused path may only change how fast the physics
#      runs, never what it does — plus the force-consistency suite under
#      RAYON_NUM_THREADS=2 and =4)
#   8. load-balance gate          (a balanced metered mdrun against the
#      plain run of the plan the search deterministically picks for the
#      gate case — sdc1d on the 9³ box, fewest barriers wins — with every
#      counter matching *exactly*: the balancer may only reorder and
#      re-split, never change the physics or the scatter bookkeeping;
#      plus the non-uniform-density conformance suite under
#      RAYON_NUM_THREADS=2 and =4)
#   9. mdserve chaos gate         (boots the job server, hammers it with a
#      concurrent client storm, then kill -9s it with jobs in flight and
#      restarts it on the same state directory: the journal replay must
#      re-queue the interrupted work and every job accepted before the
#      kill must complete from its checkpoint — zero accepted jobs lost)
#  10. task-graph gate            (the barrier-free scatter: conformance +
#      determinism battery under RAYON_NUM_THREADS=2 and =4, then an A/B
#      metered mdrun of taskgraph-vs-barriered SDC on the carved-void case
#      with every physics counter matching exactly — only the scheduling
#      regime, and therefore the scatter.* counters, may differ)
#  11. shard gate                 (the peer-mesh halo-exchange: the
#      conformance battery over both codecs plus the codec-generic fuzz
#      and the SIGKILL/resume chaos test — both run the JSON and binary
#      codecs — under RAYON_NUM_THREADS=2 and =4, then two A/B metered
#      mdruns: a 2-shard process-backend run against the unsharded
#      engine, and the same sharded case binary-vs-json — the physics
#      counters must match exactly in both; slabbing may only change
#      where the work runs, and the codec may only change how the bytes
#      are spelled)
#  12. SIMD gate                  (the lane-batched fused EAM kernels: the
#      conformance battery under RAYON_NUM_THREADS=2 and =4, the same
#      battery in release so the silent `UniformSpline::locate` clamp is
#      live, a MD_SIMD_SCALAR=1 leg so the runtime scalar fallback stays
#      conformant on any host, then an A/B metered mdrun of SIMD-vs-scalar
#      fused with every physics counter matching exactly — the batched
#      kernels may only change how fast the splines evaluate, never what
#      the physics does)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/12] release build"
cargo build --release --workspace

echo "==> [2/12] test suite"
cargo test --workspace -q

echo "==> [3/12] clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/12] debug-assertions test job"
RUSTFLAGS="-C debug-assertions=on" cargo test --workspace -q --profile dev

echo "==> [5/12] thread-matrix test job"
for t in 2 4; do
  echo "    RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q -p md-neighbor -p sdc-core -p sdc-md
done

echo "==> [6/12] metrics regression gate"
report="$(mktemp /tmp/tier1_metrics.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$report" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  scripts/metrics_baseline.json "$report" --tol 1.10 --time-tol 50
rm -f "$report"

echo "==> [7/12] fused-path conformance gate"
ref="$(mktemp /tmp/tier1_ref.XXXXXX.json)"
fus="$(mktemp /tmp/tier1_fused.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --no-fused --metrics-out "$ref" > /dev/null
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$fus" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$ref" "$fus" --tol 1.0 --time-tol 50
rm -f "$ref" "$fus"
for t in 2 4; do
  echo "    force-consistency suite, RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q --test force_consistency
done

echo "==> [8/12] load-balance gate"
def="$(mktemp /tmp/tier1_default.XXXXXX.json)"
bal="$(mktemp /tmp/tier1_balanced.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc1d --threads 2 --steps 20 --report 20 \
  --metrics-out "$def" > /dev/null
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc3d --threads 2 --steps 20 --report 20 \
  --balance --metrics-out "$bal" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$def" "$bal" --tol 1.0 --time-tol 50
rm -f "$def" "$bal"
for t in 2 4; do
  echo "    load-balance suite, RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q --test load_balance
done

echo "==> [9/12] mdserve chaos gate (client storm + kill-and-restart resume)"
sd="$(mktemp -d /tmp/tier1_mdserve.XXXXXX)"
# The server runs in its own process group (setsid): `kill -9` must reach
# the mdserve process itself, not just the timeout/cargo wrappers — SIGKILL
# is never forwarded, and an orphaned first server racing the restarted one
# on the same state directory makes resumed jobs fail intermittently.
setsid timeout 180 cargo run -q -p sdc-bench --release --bin mdserve -- \
  --dir "$sd/state" --port-file "$sd/port" --workers 2 > "$sd/serve1.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do [ -s "$sd/port" ] && break; sleep 0.1; done
[ -s "$sd/port" ] || { echo "mdserve never wrote its port file"; cat "$sd/serve1.log"; exit 1; }
echo "    client storm (4 clients x 3 jobs)"
timeout 120 cargo run -q -p sdc-bench --release --bin mdstorm -- \
  --port-file "$sd/port" --clients 4 --jobs 3 --steps 80
echo "    kill -9 with jobs in flight, restart, resume"
timeout 60 cargo run -q -p sdc-bench --release --bin mdstorm -- \
  --port-file "$sd/port" --clients 2 --jobs 2 --steps 2000 --no-await
kill -9 -- "-$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -f "$sd/port"
timeout 180 cargo run -q -p sdc-bench --release --bin mdserve -- \
  --dir "$sd/state" --port-file "$sd/port" --workers 2 > "$sd/serve2.log" 2>&1 &
serve2_pid=$!
for _ in $(seq 1 100); do [ -s "$sd/port" ] && break; sleep 0.1; done
[ -s "$sd/port" ] || { echo "restarted mdserve never wrote its port file"; cat "$sd/serve2.log"; exit 1; }
# Every job accepted before the kill must complete after the restart.
timeout 120 cargo run -q -p sdc-bench --release --bin mdstorm -- \
  --port-file "$sd/port" --await-only --shutdown drain
wait "$serve2_pid"
grep -q "re-queued" "$sd/serve2.log" || { echo "restart did not replay the journal"; cat "$sd/serve2.log"; exit 1; }
rm -rf "$sd"

echo "==> [10/12] task-graph gate (conformance + determinism + A/B vs barriered SDC)"
for t in 2 4; do
  echo "    taskgraph battery, RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q --test taskgraph_conformance
done
sdc="$(mktemp /tmp/tier1_sdc.XXXXXX.json)"
tg="$(mktemp /tmp/tier1_taskgraph.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --void --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$sdc" > /dev/null
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --void --strategy sdc2d --taskgraph --threads 2 --steps 20 --report 20 \
  --metrics-out "$tg" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$sdc" "$tg" --ab --tol 1.0 --time-tol 50
rm -f "$sdc" "$tg"

echo "==> [11/12] shard gate (conformance battery + codec fuzz + chaos + A/B legs)"
# The conformance battery, the codec-generic fuzz, and the SIGKILL/resume
# chaos test each cover both the JSON and the binary codec internally.
for t in 2 4; do
  echo "    shard battery, RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q --test shard_conformance
  RAYON_NUM_THREADS="$t" cargo test -q -p md-shard --test codec_fuzz --test process_chaos
done
# The process-backend smoke: mdrun needs the worker binary next to it.
cargo build -q --release -p md-shard
flat="$(mktemp /tmp/tier1_flat.XXXXXX.json)"
shrd="$(mktemp /tmp/tier1_shard.XXXXXX.json)"
shbn="$(mktemp /tmp/tier1_shard_bin.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$flat" > /dev/null
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --shards 2 --shard-backend process --metrics-out "$shrd" > /dev/null
# Counters must match exactly; the time tolerance is deliberately huge —
# every step crosses the peer-mesh wire, so sharded step *time* is a
# different regime, not a regression signal.
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$flat" "$shrd" --ab --tol 1.0 --time-tol 500
echo "    binary-codec leg (process backend, binary vs json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --shards 2 --shard-backend process --shard-codec binary \
  --metrics-out "$shbn" > /dev/null
# Same strategy, same shards: strict (non-A/B) diff. Every counter —
# physics spans, scatter bookkeeping, ghost/migration traffic — must be
# identical; only the wire volume and timings may move, and only down.
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$shrd" "$shbn" --tol 1.0 --time-tol 500
rm -f "$flat" "$shrd" "$shbn"

echo "==> [12/12] SIMD gate (conformance battery + scalar-fallback leg + A/B vs scalar fused)"
for t in 2 4; do
  echo "    SIMD battery, RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q --test simd_conformance
done
echo "    release-profile battery (silent spline clamp live)"
cargo test -q --release --test simd_conformance
echo "    runtime scalar-fallback leg (MD_SIMD_SCALAR=1)"
MD_SIMD_SCALAR=1 cargo test -q --test simd_conformance
scl="$(mktemp /tmp/tier1_scalar.XXXXXX.json)"
smd="$(mktemp /tmp/tier1_simd.XXXXXX.json)"
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --no-simd --metrics-out "$scl" > /dev/null
cargo run -q -p sdc-bench --release --bin mdrun -- \
  --cells 9 --strategy sdc2d --threads 2 --steps 20 --report 20 \
  --metrics-out "$smd" > /dev/null
cargo run -q -p sdc-bench --release --bin metrics_diff -- \
  "$scl" "$smd" --ab --tol 1.0 --time-tol 50
rm -f "$scl" "$smd"

echo "tier-1: all green"
