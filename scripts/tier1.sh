#!/usr/bin/env bash
# Tier-1 verification: everything a change must pass before merging.
#
#   ./scripts/tier1.sh            # release build + tests + lint + debug job
#
# Jobs:
#   1. release build              (the artifact we benchmark)
#   2. full test suite            (unit + integration + doc tests)
#   3. clippy, warnings are errors
#   4. debug-assertions test job  (re-runs the suite with debug_assertions
#      on, exercising the SDC footprint-disjointness checks and every
#      debug-only invariant; `cargo test` default profile already enables
#      them — this job pins that explicitly so a profile tweak cannot
#      silently turn them off)
#   5. thread-matrix test job     (re-runs the determinism-sensitive crates
#      under RAYON_NUM_THREADS=2 and =4, so the global-pool default thread
#      count cannot mask a parallel neighbor-build or scatter divergence)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/5] release build"
cargo build --release --workspace

echo "==> [2/5] test suite"
cargo test --workspace -q

echo "==> [3/5] clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/5] debug-assertions test job"
RUSTFLAGS="-C debug-assertions=on" cargo test --workspace -q --profile dev

echo "==> [5/5] thread-matrix test job"
for t in 2 4; do
  echo "    RAYON_NUM_THREADS=$t"
  RAYON_NUM_THREADS="$t" cargo test -q -p md-neighbor -p sdc-core -p sdc-md
done

echo "tier-1: all green"
