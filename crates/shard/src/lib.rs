//! Sharded halo-exchange domain decomposition (DESIGN.md §15).
//!
//! The crate splits the simulation box into slab subdomains along one axis;
//! each *shard* owns the atoms inside its slab and runs the existing
//! [`md_sim::ForceEngine`] stack locally on its owned atoms plus a halo of
//! *ghost* atoms imported from the other shards. Two exchanges per force
//! evaluation keep the EAM physics exact:
//!
//! 1. **positions** of every remote atom within `cutoff + skin` of the slab
//!    are shipped in before the density phase (EAM phases 1–2), and
//! 2. **embedding derivatives** `F'(ρ)` of those same atoms are shipped in
//!    between the density and the force phase (EAM phase 3), because the
//!    pair force needs the *owner's* fp for both endpoints.
//!
//! Forces computed on ghosts are discarded (no reverse communication), and
//! owned atoms migrate to their new shard at every neighbor-list rebuild.
//!
//! The decomposition is driven through a *control* protocol ([`msg::Msg`])
//! over an abstract [`world::Transport`], while halo payloads flow over a
//! direct peer mesh ([`mesh::PeerMesh`]) the driver brokers at boot. Both
//! planes speak the same selectable wire [`codec::Codec`] — hex-f64 JSON
//! or length-prefixed binary frames. Two backends:
//!
//! * [`world::MemTransport`] — *virtual ranks*: every shard lives in the
//!   driver process, control messages are routed through the real wire
//!   codec and halos through a [`mesh::ChannelMesh`] carrying codec
//!   frames, so the conformance battery exercises the exact bytes the
//!   process backend ships.
//! * [`proc::ProcessWorld`] — one `mdshard-worker` process per shard over
//!   Unix-domain sockets, halos over a [`mesh::SocketMesh`] of direct
//!   shard ↔ shard streams, with real inter-shard parallelism, per-shard
//!   checkpoints and typed fault detection when a worker dies.

pub mod ckpt;
pub mod codec;
pub mod core;
pub mod layout;
pub mod mesh;
pub mod msg;
pub mod proc;
pub mod world;

pub use ckpt::CkptError;
pub use codec::{Codec, CodecError};
pub use core::ShardCore;
pub use layout::ShardLayout;
pub use mesh::{ChannelMesh, MeshProvider, PeerMesh, SocketMesh};
pub use msg::{GhostExport, HaloCounters, InitSpec, Msg, PhaseStat, ShardAtom};
pub use proc::{ProcessWorld, SocketTransport};
pub use world::{MemTransport, ShardStats, ShardWorld, Transport, WorldSpec};

use md_potential::{AnalyticEam, LennardJones, TabulatedEam};
use md_sim::PotentialChoice;
use std::sync::Arc;

/// A failure of the sharded run: transport, codec, protocol or worker
/// lifecycle. Every variant names the rank it was observed on, so the
/// driver can report *which* shard died.
#[derive(Debug)]
pub enum ShardFault {
    /// An I/O error on a transport that is not a clean peer disappearance.
    Io {
        /// Rank of the link the error occurred on.
        rank: usize,
        /// The underlying error.
        error: std::io::Error,
    },
    /// The peer closed its end of the link (worker killed or exited).
    TransportClosed {
        /// Rank whose link went dead.
        rank: usize,
    },
    /// A frame arrived but could not be decoded.
    Codec {
        /// Rank the frame came from (or was being sent to).
        rank: usize,
        /// What was wrong with the bytes.
        error: CodecError,
    },
    /// A well-formed message violated the request/reply state machine.
    Protocol {
        /// Rank that broke the protocol.
        rank: usize,
        /// Human-readable description.
        detail: String,
    },
    /// A worker process failed to start or exited unexpectedly.
    WorkerExit {
        /// Rank of the worker.
        rank: usize,
        /// Exit status or spawn error description.
        status: String,
    },
    /// A checkpoint read/write failed.
    Ckpt(CkptError),
}

impl std::fmt::Display for ShardFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardFault::Io { rank, error } => write!(f, "shard {rank}: transport I/O error: {error}"),
            ShardFault::TransportClosed { rank } => {
                write!(f, "shard {rank}: transport closed (worker gone)")
            }
            ShardFault::Codec { rank, error } => write!(f, "shard {rank}: codec error: {error}"),
            ShardFault::Protocol { rank, detail } => {
                write!(f, "shard {rank}: protocol violation: {detail}")
            }
            ShardFault::WorkerExit { rank, status } => {
                write!(f, "shard {rank}: worker exited: {status}")
            }
            ShardFault::Ckpt(e) => write!(f, "shard checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ShardFault {}

impl From<CkptError> for ShardFault {
    fn from(e: CkptError) -> ShardFault {
        ShardFault::Ckpt(e)
    }
}

/// Builds the engine potential a shard worker runs, from the wire-level
/// `(name, tabulated)` pair. The construction mirrors `mdrun`'s exactly so
/// a single-shard run is bitwise identical to the unsharded engine.
pub fn build_potential(name: &str, tabulated: bool) -> Result<PotentialChoice, String> {
    match (name, tabulated) {
        ("fe", false) => Ok(PotentialChoice::Eam(Arc::new(AnalyticEam::fe()))),
        ("cu", false) => Ok(PotentialChoice::Eam(Arc::new(AnalyticEam::cu()))),
        ("fe", true) | ("cu", true) => {
            let src = if name == "fe" {
                AnalyticEam::fe()
            } else {
                AnalyticEam::cu()
            };
            Ok(PotentialChoice::Eam(Arc::new(TabulatedEam::standard(
                &src,
                src.rho_e(),
            ))))
        }
        ("lj", false) => Ok(PotentialChoice::Pair(Arc::new(LennardJones::new(
            0.0104, 3.4, 8.5,
        )))),
        ("lj", true) => Err("tabulated requires an EAM potential".to_string()),
        (other, _) => Err(format!("unknown potential '{other}'")),
    }
}
