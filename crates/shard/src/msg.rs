//! The driver ↔ shard message protocol.
//!
//! Strict request/reply pairs, driver-initiated; the driver is a star
//! relay, so "peer" payloads are per-rank vectors the driver reshuffles
//! (`MigOut.to[t]` from every source becomes `MigIn.atoms` at target `t`,
//! and likewise for ghost positions and embedding derivatives):
//!
//! | request            | reply      | shard work |
//! |--------------------|------------|------------|
//! | `Init`             | `Ready`    | adopt owned atoms, build layout |
//! | `Begin`            | `DispOut`  | half-kick, drift, wrap; report max displacement² |
//! | `Migrate`          | `MigOut`   | evict atoms that left the slab |
//! | `MigIn`            | `GhostOut` | adopt arrivals, pick ghost exports |
//! | `GhostIn`          | `FpOut`    | install ghosts, rebuild engine, density phase |
//! | `PosTick`          | `PosOut`   | read current export positions |
//! | `PosIn`            | `FpOut`    | refresh ghost positions, density phase |
//! | `FpIn`             | `StepDone` | install ghost `F'(ρ)`, force phase, (half-kick) |
//! | `Save`             | `Saved`    | write the per-shard checkpoint |
//! | `Gather`           | `State`    | report owned atoms |
//! | `Stats`            | `StatsOut` | report accumulated phase timers |
//! | `Shutdown`         | —          | exit |
//!
//! All floating-point state rides as hex bit patterns (see [`crate::codec`]).

use crate::codec::{f64_to_hex, hex_to_f64, CodecError};
use md_geometry::Vec3;
use md_sim::metrics::JsonValue;

/// One atom on the wire: its stable global id plus position and velocity.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAtom {
    /// Global atom id (index in the unsharded system), stable for life.
    pub gid: u64,
    /// Wrapped position (global coordinates).
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
}

/// Ghost export batch for one target rank: parallel `gids` / `pos` arrays
/// in the owner's deterministic export order (ascending gid).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GhostExport {
    /// Global ids of the exported atoms.
    pub gids: Vec<u64>,
    /// Their wrapped positions.
    pub pos: Vec<Vec3>,
}

/// One phase-timer sample in a `StatsOut` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name (`density`, `embedding`, `force`, `neighbor`, `other`).
    pub name: String,
    /// Accumulated wall seconds.
    pub seconds: f64,
    /// Number of recorded samples.
    pub count: u64,
}

/// Everything a shard needs to stand up its slab.
#[derive(Debug, Clone, PartialEq)]
pub struct InitSpec {
    /// This shard's rank.
    pub rank: usize,
    /// Total number of shards.
    pub n_ranks: usize,
    /// Decomposition axis index (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Global (fully periodic) box edge lengths.
    pub box_lengths: [f64; 3],
    /// Potential name (`fe`, `cu`, `lj`).
    pub potential: String,
    /// Use the tabulated EAM form.
    pub tabulated: bool,
    /// Use the fused EAM path.
    pub fused: bool,
    /// Scatter strategy name (parsed by `StrategyKind::parse`).
    pub strategy: String,
    /// Worker threads per shard.
    pub threads: usize,
    /// Verlet skin (Å).
    pub skin: f64,
    /// Time step (ps).
    pub dt: f64,
    /// Atomic mass (amu).
    pub mass: f64,
    /// Step counter to resume at.
    pub step: u64,
    /// The atoms this shard owns at `step`.
    pub atoms: Vec<ShardAtom>,
}

/// A protocol message. See the module table for pairing and direction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Msg {
    Init(Box<InitSpec>),
    Ready { rank: u64 },
    Begin,
    DispOut { max_sq: f64 },
    Migrate,
    MigOut { to: Vec<Vec<ShardAtom>> },
    MigIn { atoms: Vec<ShardAtom> },
    GhostOut { to: Vec<GhostExport> },
    GhostIn { from: Vec<GhostExport> },
    PosTick,
    PosOut { to: Vec<Vec<Vec3>> },
    PosIn { from: Vec<Vec<Vec3>> },
    FpOut { to: Vec<Vec<f64>> },
    FpIn { from: Vec<Vec<f64>>, kick: bool },
    StepDone { step: u64 },
    Save { dir: String },
    Saved { path: String },
    Gather,
    State { atoms: Vec<ShardAtom> },
    Stats,
    StatsOut { phases: Vec<PhaseStat> },
    Shutdown,
}

fn hx(x: f64) -> JsonValue {
    JsonValue::Str(f64_to_hex(x))
}

fn vec3_json(v: Vec3) -> JsonValue {
    JsonValue::Arr(vec![hx(v.x), hx(v.y), hx(v.z)])
}

fn atoms_json(atoms: &[ShardAtom]) -> JsonValue {
    JsonValue::Arr(
        atoms
            .iter()
            .map(|a| {
                JsonValue::obj(vec![
                    ("gid", JsonValue::num(a.gid as f64)),
                    ("pos", vec3_json(a.pos)),
                    ("vel", vec3_json(a.vel)),
                ])
            })
            .collect(),
    )
}

fn vec3s_json(vs: &[Vec3]) -> JsonValue {
    JsonValue::Arr(vs.iter().map(|&v| vec3_json(v)).collect())
}

fn f64s_json(xs: &[f64]) -> JsonValue {
    JsonValue::Arr(xs.iter().map(|&x| hx(x)).collect())
}

fn export_json(e: &GhostExport) -> JsonValue {
    JsonValue::obj(vec![
        (
            "gids",
            JsonValue::Arr(e.gids.iter().map(|&g| JsonValue::num(g as f64)).collect()),
        ),
        ("pos", vec3s_json(&e.pos)),
    ])
}

fn bad(what: &str) -> CodecError {
    CodecError::BadField(what.to_string())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CodecError> {
    v.get(key)
        .ok_or_else(|| bad(&format!("missing field '{key}'")))
}

fn get_f64(v: &JsonValue) -> Result<f64, CodecError> {
    hex_to_f64(v.as_str().ok_or_else(|| bad("expected hex f64 string"))?)
}

fn get_u64(v: &JsonValue) -> Result<u64, CodecError> {
    let n = v.as_f64().ok_or_else(|| bad("expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
        return Err(bad(&format!("expected a non-negative integer, got {n}")));
    }
    Ok(n as u64)
}

fn get_usize(v: &JsonValue) -> Result<usize, CodecError> {
    Ok(get_u64(v)? as usize)
}

fn get_bool(v: &JsonValue) -> Result<bool, CodecError> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(bad("expected a bool")),
    }
}

fn get_str(v: &JsonValue) -> Result<String, CodecError> {
    Ok(v.as_str().ok_or_else(|| bad("expected a string"))?.to_string())
}

fn get_vec3(v: &JsonValue) -> Result<Vec3, CodecError> {
    let a = v.as_arr().ok_or_else(|| bad("expected a [x,y,z] array"))?;
    if a.len() != 3 {
        return Err(bad("vector must have three components"));
    }
    Ok(Vec3::new(get_f64(&a[0])?, get_f64(&a[1])?, get_f64(&a[2])?))
}

fn get_atoms(v: &JsonValue) -> Result<Vec<ShardAtom>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected an atom array"))?
        .iter()
        .map(|a| {
            Ok(ShardAtom {
                gid: get_u64(field(a, "gid")?)?,
                pos: get_vec3(field(a, "pos")?)?,
                vel: get_vec3(field(a, "vel")?)?,
            })
        })
        .collect()
}

fn get_vec3s(v: &JsonValue) -> Result<Vec<Vec3>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected a vector array"))?
        .iter()
        .map(get_vec3)
        .collect()
}

fn get_f64s(v: &JsonValue) -> Result<Vec<f64>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected an f64 array"))?
        .iter()
        .map(get_f64)
        .collect()
}

fn get_export(v: &JsonValue) -> Result<GhostExport, CodecError> {
    let gids = field(v, "gids")?
        .as_arr()
        .ok_or_else(|| bad("expected a gid array"))?
        .iter()
        .map(get_u64)
        .collect::<Result<Vec<_>, _>>()?;
    let pos = get_vec3s(field(v, "pos")?)?;
    if gids.len() != pos.len() {
        return Err(bad("ghost export gid/pos length mismatch"));
    }
    Ok(GhostExport { gids, pos })
}

fn per_rank<T>(
    v: &JsonValue,
    one: impl Fn(&JsonValue) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected a per-rank array"))?
        .iter()
        .map(one)
        .collect()
}

impl Msg {
    /// Renders the message as its JSON wire form.
    pub fn encode(&self) -> JsonValue {
        let tag = |t: &str| ("t", JsonValue::str(t));
        match self {
            Msg::Init(s) => JsonValue::obj(vec![
                tag("init"),
                ("rank", JsonValue::num(s.rank as f64)),
                ("n_ranks", JsonValue::num(s.n_ranks as f64)),
                ("axis", JsonValue::num(s.axis as f64)),
                (
                    "box",
                    JsonValue::Arr(s.box_lengths.iter().map(|&l| hx(l)).collect()),
                ),
                ("potential", JsonValue::str(&*s.potential)),
                ("tabulated", JsonValue::Bool(s.tabulated)),
                ("fused", JsonValue::Bool(s.fused)),
                ("strategy", JsonValue::str(&*s.strategy)),
                ("threads", JsonValue::num(s.threads as f64)),
                ("skin", hx(s.skin)),
                ("dt", hx(s.dt)),
                ("mass", hx(s.mass)),
                ("step", JsonValue::num(s.step as f64)),
                ("atoms", atoms_json(&s.atoms)),
            ]),
            Msg::Ready { rank } => JsonValue::obj(vec![
                tag("ready"),
                ("rank", JsonValue::num(*rank as f64)),
            ]),
            Msg::Begin => JsonValue::obj(vec![tag("begin")]),
            Msg::DispOut { max_sq } => {
                JsonValue::obj(vec![tag("disp"), ("max_sq", hx(*max_sq))])
            }
            Msg::Migrate => JsonValue::obj(vec![tag("migrate")]),
            Msg::MigOut { to } => JsonValue::obj(vec![
                tag("mig_out"),
                (
                    "to",
                    JsonValue::Arr(to.iter().map(|a| atoms_json(a)).collect()),
                ),
            ]),
            Msg::MigIn { atoms } => {
                JsonValue::obj(vec![tag("mig_in"), ("atoms", atoms_json(atoms))])
            }
            Msg::GhostOut { to } => JsonValue::obj(vec![
                tag("ghost_out"),
                ("to", JsonValue::Arr(to.iter().map(export_json).collect())),
            ]),
            Msg::GhostIn { from } => JsonValue::obj(vec![
                tag("ghost_in"),
                ("from", JsonValue::Arr(from.iter().map(export_json).collect())),
            ]),
            Msg::PosTick => JsonValue::obj(vec![tag("pos_tick")]),
            Msg::PosOut { to } => JsonValue::obj(vec![
                tag("pos_out"),
                ("to", JsonValue::Arr(to.iter().map(|v| vec3s_json(v)).collect())),
            ]),
            Msg::PosIn { from } => JsonValue::obj(vec![
                tag("pos_in"),
                (
                    "from",
                    JsonValue::Arr(from.iter().map(|v| vec3s_json(v)).collect()),
                ),
            ]),
            Msg::FpOut { to } => JsonValue::obj(vec![
                tag("fp_out"),
                ("to", JsonValue::Arr(to.iter().map(|v| f64s_json(v)).collect())),
            ]),
            Msg::FpIn { from, kick } => JsonValue::obj(vec![
                tag("fp_in"),
                (
                    "from",
                    JsonValue::Arr(from.iter().map(|v| f64s_json(v)).collect()),
                ),
                ("kick", JsonValue::Bool(*kick)),
            ]),
            Msg::StepDone { step } => JsonValue::obj(vec![
                tag("step_done"),
                ("step", JsonValue::num(*step as f64)),
            ]),
            Msg::Save { dir } => {
                JsonValue::obj(vec![tag("save"), ("dir", JsonValue::str(&**dir))])
            }
            Msg::Saved { path } => {
                JsonValue::obj(vec![tag("saved"), ("path", JsonValue::str(&**path))])
            }
            Msg::Gather => JsonValue::obj(vec![tag("gather")]),
            Msg::State { atoms } => {
                JsonValue::obj(vec![tag("state"), ("atoms", atoms_json(atoms))])
            }
            Msg::Stats => JsonValue::obj(vec![tag("stats")]),
            Msg::StatsOut { phases } => JsonValue::obj(vec![
                tag("stats_out"),
                (
                    "phases",
                    JsonValue::Arr(
                        phases
                            .iter()
                            .map(|p| {
                                JsonValue::obj(vec![
                                    ("name", JsonValue::str(&*p.name)),
                                    ("seconds", hx(p.seconds)),
                                    ("count", JsonValue::num(p.count as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Msg::Shutdown => JsonValue::obj(vec![tag("shutdown")]),
        }
    }

    /// Parses a message from its JSON wire form.
    pub fn decode(v: &JsonValue) -> Result<Msg, CodecError> {
        let tag = field(v, "t")?
            .as_str()
            .ok_or_else(|| bad("tag must be a string"))?;
        match tag {
            "init" => {
                let boxv = field(v, "box")?
                    .as_arr()
                    .ok_or_else(|| bad("box must be an array"))?;
                if boxv.len() != 3 {
                    return Err(bad("box must have three lengths"));
                }
                Ok(Msg::Init(Box::new(InitSpec {
                    rank: get_usize(field(v, "rank")?)?,
                    n_ranks: get_usize(field(v, "n_ranks")?)?,
                    axis: get_usize(field(v, "axis")?)?,
                    box_lengths: [
                        get_f64(&boxv[0])?,
                        get_f64(&boxv[1])?,
                        get_f64(&boxv[2])?,
                    ],
                    potential: get_str(field(v, "potential")?)?,
                    tabulated: get_bool(field(v, "tabulated")?)?,
                    fused: get_bool(field(v, "fused")?)?,
                    strategy: get_str(field(v, "strategy")?)?,
                    threads: get_usize(field(v, "threads")?)?,
                    skin: get_f64(field(v, "skin")?)?,
                    dt: get_f64(field(v, "dt")?)?,
                    mass: get_f64(field(v, "mass")?)?,
                    step: get_u64(field(v, "step")?)?,
                    atoms: get_atoms(field(v, "atoms")?)?,
                })))
            }
            "ready" => Ok(Msg::Ready {
                rank: get_u64(field(v, "rank")?)?,
            }),
            "begin" => Ok(Msg::Begin),
            "disp" => Ok(Msg::DispOut {
                max_sq: get_f64(field(v, "max_sq")?)?,
            }),
            "migrate" => Ok(Msg::Migrate),
            "mig_out" => Ok(Msg::MigOut {
                to: per_rank(field(v, "to")?, get_atoms)?,
            }),
            "mig_in" => Ok(Msg::MigIn {
                atoms: get_atoms(field(v, "atoms")?)?,
            }),
            "ghost_out" => Ok(Msg::GhostOut {
                to: per_rank(field(v, "to")?, get_export)?,
            }),
            "ghost_in" => Ok(Msg::GhostIn {
                from: per_rank(field(v, "from")?, get_export)?,
            }),
            "pos_tick" => Ok(Msg::PosTick),
            "pos_out" => Ok(Msg::PosOut {
                to: per_rank(field(v, "to")?, get_vec3s)?,
            }),
            "pos_in" => Ok(Msg::PosIn {
                from: per_rank(field(v, "from")?, get_vec3s)?,
            }),
            "fp_out" => Ok(Msg::FpOut {
                to: per_rank(field(v, "to")?, get_f64s)?,
            }),
            "fp_in" => Ok(Msg::FpIn {
                from: per_rank(field(v, "from")?, get_f64s)?,
                kick: get_bool(field(v, "kick")?)?,
            }),
            "step_done" => Ok(Msg::StepDone {
                step: get_u64(field(v, "step")?)?,
            }),
            "save" => Ok(Msg::Save {
                dir: get_str(field(v, "dir")?)?,
            }),
            "saved" => Ok(Msg::Saved {
                path: get_str(field(v, "path")?)?,
            }),
            "gather" => Ok(Msg::Gather),
            "state" => Ok(Msg::State {
                atoms: get_atoms(field(v, "atoms")?)?,
            }),
            "stats" => Ok(Msg::Stats),
            "stats_out" => Ok(Msg::StatsOut {
                phases: per_rank(field(v, "phases")?, |p| {
                    Ok(PhaseStat {
                        name: get_str(field(p, "name")?)?,
                        seconds: get_f64(field(p, "seconds")?)?,
                        count: get_u64(field(p, "count")?)?,
                    })
                })?,
            }),
            "shutdown" => Ok(Msg::Shutdown),
            other => Err(bad(&format!("unknown message tag '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_frame, encode_frame};

    fn atom(gid: u64) -> ShardAtom {
        ShardAtom {
            gid,
            pos: Vec3::new(1.5, -0.0, 3.25e-7),
            vel: Vec3::new(-2.5, 0.125, 9.0),
        }
    }

    #[test]
    fn every_message_round_trips_through_the_frame_codec() {
        let msgs = vec![
            Msg::Init(Box::new(InitSpec {
                rank: 1,
                n_ranks: 2,
                axis: 0,
                box_lengths: [10.0, 11.0, 12.0],
                potential: "fe".to_string(),
                tabulated: false,
                fused: true,
                strategy: "sdc2d".to_string(),
                threads: 2,
                skin: 0.3,
                dt: 0.002,
                mass: 55.845,
                step: 7,
                atoms: vec![atom(0), atom(5)],
            })),
            Msg::Ready { rank: 1 },
            Msg::Begin,
            Msg::DispOut { max_sq: 0.015625 },
            Msg::Migrate,
            Msg::MigOut {
                to: vec![vec![], vec![atom(3)]],
            },
            Msg::MigIn { atoms: vec![atom(9)] },
            Msg::GhostOut {
                to: vec![
                    GhostExport::default(),
                    GhostExport {
                        gids: vec![2, 4],
                        pos: vec![Vec3::ONE, Vec3::ZERO],
                    },
                ],
            },
            Msg::GhostIn { from: vec![GhostExport::default()] },
            Msg::PosTick,
            Msg::PosOut {
                to: vec![vec![Vec3::new(0.1, 0.2, 0.3)], vec![]],
            },
            Msg::PosIn { from: vec![vec![]] },
            Msg::FpOut {
                to: vec![vec![1.0, -2.5e-3]],
            },
            Msg::FpIn {
                from: vec![vec![f64::NAN]],
                kick: true,
            },
            Msg::StepDone { step: 8 },
            Msg::Save { dir: "/tmp/x".to_string() },
            Msg::Saved { path: "/tmp/x/shard-0@8.ckpt".to_string() },
            Msg::Gather,
            Msg::State { atoms: vec![atom(1)] },
            Msg::Stats,
            Msg::StatsOut {
                phases: vec![PhaseStat {
                    name: "force".to_string(),
                    seconds: 0.25,
                    count: 12,
                }],
            },
            Msg::Shutdown,
        ];
        for m in msgs {
            let (payload, _) = decode_frame(&encode_frame(&m.encode())).unwrap();
            let back = Msg::decode(&payload).unwrap();
            // NaN breaks PartialEq; compare the re-encoded wire forms, which
            // carry exact bit patterns.
            assert_eq!(
                md_serve::wire::compact(&back.encode()),
                md_serve::wire::compact(&m.encode()),
                "round trip failed for {m:?}"
            );
        }
    }

    #[test]
    fn unknown_tags_and_missing_fields_are_typed_errors() {
        let v = JsonValue::obj(vec![("t", JsonValue::str("warp"))]);
        assert!(matches!(Msg::decode(&v), Err(CodecError::BadField(_))));
        let v = JsonValue::obj(vec![("t", JsonValue::str("disp"))]);
        assert!(matches!(Msg::decode(&v), Err(CodecError::BadField(_))));
        assert!(matches!(
            Msg::decode(&JsonValue::num(3.0)),
            Err(CodecError::BadField(_))
        ));
    }
}
