//! The shard message protocol: driver ↔ shard control plane plus the
//! shard ↔ shard peer frames.
//!
//! The driver speaks strict request/reply pairs on the control links; halo
//! payloads never touch it. After `Init`, the driver brokers the peer mesh
//! (listen, then connect), and from then on every step is three halo
//! rounds in which ghost data flows directly shard → shard:
//!
//! | request             | reply         | shard work |
//! |---------------------|---------------|------------|
//! | `Init`              | `Ready`       | adopt owned atoms, build layout |
//! | `PeerListen`        | `PeerBound`   | bind the peer rendezvous endpoint |
//! | `PeerConnect`       | `PeerReady`   | dial lower ranks, accept higher ranks |
//! | `Begin`             | `DispOut`     | half-kick, drift, wrap; report max displacement² |
//! | `Migrate`           | `MigOut`      | evict atoms that left the slab |
//! | `MigIn`             | `HaloSent`    | adopt arrivals, pick exports, peer-send `PeerGhosts` |
//! | `HaloPos`           | `HaloSent`    | peer-send `PeerPos` (current export positions) |
//! | `HaloDensity`       | `DensityDone` | peer-recv ghosts, install, density phase, peer-send `PeerFp` |
//! | `HaloForce`         | `StepDone`    | peer-recv `F'(ρ)`, force phase, (half-kick) |
//! | `Save`              | `Saved`       | write the per-shard checkpoint |
//! | `Gather`            | `State`       | report owned atoms |
//! | `Stats`             | `StatsOut`    | report accumulated phase timers |
//! | `Counters`          | `CountersOut` | report halo/wire counters |
//! | `Shutdown`          | —             | exit |
//!
//! Peer frames (`PeerHello`, `PeerGhosts`, `PeerPos`, `PeerFp`) ride the
//! mesh links; exactly one frame per directed pair per halo round, empty
//! or not, so the rounds stay deterministic.
//!
//! Messages have two wire forms behind [`crate::codec::Codec`]: compact
//! JSON (floats as hex bit patterns) and a tagged little-endian binary
//! form (floats as raw `to_bits`). Both are bit-exact for every f64.

use crate::codec::{f64_to_hex, hex_to_f64, CodecError};
use md_geometry::Vec3;
use md_sim::metrics::JsonValue;

/// One atom on the wire: its stable global id plus position and velocity.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardAtom {
    /// Global atom id (index in the unsharded system), stable for life.
    pub gid: u64,
    /// Wrapped position (global coordinates).
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
}

/// Ghost export batch for one target rank: parallel `gids` / `pos` arrays
/// in the owner's deterministic export order (ascending gid).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GhostExport {
    /// Global ids of the exported atoms.
    pub gids: Vec<u64>,
    /// Their wrapped positions.
    pub pos: Vec<Vec3>,
}

/// One phase-timer sample in a `StatsOut` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase name (`density`, `embedding`, `force`, `neighbor`, `other`).
    pub name: String,
    /// Accumulated wall seconds.
    pub seconds: f64,
    /// Number of recorded samples.
    pub count: u64,
}

/// Cumulative halo counters of one shard (a `CountersOut` reply).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HaloCounters {
    /// Ghost position records this shard sent to peers.
    pub ghost_sent: u64,
    /// Ghost position records this shard installed from peers.
    pub ghost_installed: u64,
    /// Bytes this shard wrote to peer links (all frame types).
    pub bytes_sent: u64,
    /// Bytes this shard read from peer links.
    pub bytes_recv: u64,
    /// Wall seconds this shard spent encoding/shipping/decoding peer
    /// frames.
    pub wire_seconds: f64,
}

/// Everything a shard needs to stand up its slab.
#[derive(Debug, Clone, PartialEq)]
pub struct InitSpec {
    /// This shard's rank.
    pub rank: usize,
    /// Total number of shards.
    pub n_ranks: usize,
    /// Decomposition axis index (0 = x, 1 = y, 2 = z).
    pub axis: usize,
    /// Global (fully periodic) box edge lengths.
    pub box_lengths: [f64; 3],
    /// Potential name (`fe`, `cu`, `lj`).
    pub potential: String,
    /// Use the tabulated EAM form.
    pub tabulated: bool,
    /// Use the fused EAM path.
    pub fused: bool,
    /// Use the lane-batched (SIMD) spline kernels of the fused path.
    pub simd: bool,
    /// Scatter strategy name (parsed by `StrategyKind::parse`).
    pub strategy: String,
    /// Worker threads per shard.
    pub threads: usize,
    /// Verlet skin (Å).
    pub skin: f64,
    /// Time step (ps).
    pub dt: f64,
    /// Atomic mass (amu).
    pub mass: f64,
    /// Step counter to resume at.
    pub step: u64,
    /// The atoms this shard owns at `step`.
    pub atoms: Vec<ShardAtom>,
}

/// A protocol message. See the module table for pairing and direction.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Msg {
    Init(Box<InitSpec>),
    Ready { rank: u64 },
    PeerListen { dir: String },
    PeerBound,
    PeerConnect,
    PeerReady,
    Begin,
    DispOut { max_sq: f64 },
    Migrate,
    MigOut { to: Vec<Vec<ShardAtom>> },
    MigIn { atoms: Vec<ShardAtom> },
    HaloPos,
    HaloSent,
    HaloDensity,
    DensityDone,
    HaloForce { kick: bool },
    StepDone { step: u64 },
    Save { dir: String },
    Saved { path: String },
    Gather,
    State { atoms: Vec<ShardAtom> },
    Stats,
    StatsOut { phases: Vec<PhaseStat> },
    Counters,
    CountersOut { counters: HaloCounters },
    Shutdown,
    // Peer frames (shard ↔ shard, never on a control link).
    PeerHello { rank: u64 },
    PeerGhosts { export: GhostExport },
    PeerPos { pos: Vec<Vec3> },
    PeerFp { fp: Vec<f64> },
}

fn hx(x: f64) -> JsonValue {
    JsonValue::Str(f64_to_hex(x))
}

fn vec3_json(v: Vec3) -> JsonValue {
    JsonValue::Arr(vec![hx(v.x), hx(v.y), hx(v.z)])
}

fn atoms_json(atoms: &[ShardAtom]) -> JsonValue {
    JsonValue::Arr(
        atoms
            .iter()
            .map(|a| {
                JsonValue::obj(vec![
                    ("gid", JsonValue::num(a.gid as f64)),
                    ("pos", vec3_json(a.pos)),
                    ("vel", vec3_json(a.vel)),
                ])
            })
            .collect(),
    )
}

fn vec3s_json(vs: &[Vec3]) -> JsonValue {
    JsonValue::Arr(vs.iter().map(|&v| vec3_json(v)).collect())
}

fn f64s_json(xs: &[f64]) -> JsonValue {
    JsonValue::Arr(xs.iter().map(|&x| hx(x)).collect())
}

fn export_json(e: &GhostExport) -> JsonValue {
    JsonValue::obj(vec![
        (
            "gids",
            JsonValue::Arr(e.gids.iter().map(|&g| JsonValue::num(g as f64)).collect()),
        ),
        ("pos", vec3s_json(&e.pos)),
    ])
}

fn bad(what: &str) -> CodecError {
    CodecError::BadField(what.to_string())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, CodecError> {
    v.get(key)
        .ok_or_else(|| bad(&format!("missing field '{key}'")))
}

fn get_f64(v: &JsonValue) -> Result<f64, CodecError> {
    hex_to_f64(v.as_str().ok_or_else(|| bad("expected hex f64 string"))?)
}

fn get_u64(v: &JsonValue) -> Result<u64, CodecError> {
    let n = v.as_f64().ok_or_else(|| bad("expected an integer"))?;
    if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
        return Err(bad(&format!("expected a non-negative integer, got {n}")));
    }
    Ok(n as u64)
}

fn get_usize(v: &JsonValue) -> Result<usize, CodecError> {
    Ok(get_u64(v)? as usize)
}

fn get_bool(v: &JsonValue) -> Result<bool, CodecError> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(bad("expected a bool")),
    }
}

fn get_str(v: &JsonValue) -> Result<String, CodecError> {
    Ok(v.as_str().ok_or_else(|| bad("expected a string"))?.to_string())
}

fn get_vec3(v: &JsonValue) -> Result<Vec3, CodecError> {
    let a = v.as_arr().ok_or_else(|| bad("expected a [x,y,z] array"))?;
    if a.len() != 3 {
        return Err(bad("vector must have three components"));
    }
    Ok(Vec3::new(get_f64(&a[0])?, get_f64(&a[1])?, get_f64(&a[2])?))
}

fn get_atoms(v: &JsonValue) -> Result<Vec<ShardAtom>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected an atom array"))?
        .iter()
        .map(|a| {
            Ok(ShardAtom {
                gid: get_u64(field(a, "gid")?)?,
                pos: get_vec3(field(a, "pos")?)?,
                vel: get_vec3(field(a, "vel")?)?,
            })
        })
        .collect()
}

fn get_vec3s(v: &JsonValue) -> Result<Vec<Vec3>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected a vector array"))?
        .iter()
        .map(get_vec3)
        .collect()
}

fn get_f64s(v: &JsonValue) -> Result<Vec<f64>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected an f64 array"))?
        .iter()
        .map(get_f64)
        .collect()
}

fn get_export(v: &JsonValue) -> Result<GhostExport, CodecError> {
    let gids = field(v, "gids")?
        .as_arr()
        .ok_or_else(|| bad("expected a gid array"))?
        .iter()
        .map(get_u64)
        .collect::<Result<Vec<_>, _>>()?;
    let pos = get_vec3s(field(v, "pos")?)?;
    if gids.len() != pos.len() {
        return Err(bad("ghost export gid/pos length mismatch"));
    }
    Ok(GhostExport { gids, pos })
}

fn per_rank<T>(
    v: &JsonValue,
    one: impl Fn(&JsonValue) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    v.as_arr()
        .ok_or_else(|| bad("expected a per-rank array"))?
        .iter()
        .map(one)
        .collect()
}

impl Msg {
    /// Renders the message as its JSON wire form.
    pub fn encode(&self) -> JsonValue {
        let tag = |t: &str| ("t", JsonValue::str(t));
        match self {
            Msg::Init(s) => JsonValue::obj(vec![
                tag("init"),
                ("rank", JsonValue::num(s.rank as f64)),
                ("n_ranks", JsonValue::num(s.n_ranks as f64)),
                ("axis", JsonValue::num(s.axis as f64)),
                (
                    "box",
                    JsonValue::Arr(s.box_lengths.iter().map(|&l| hx(l)).collect()),
                ),
                ("potential", JsonValue::str(&*s.potential)),
                ("tabulated", JsonValue::Bool(s.tabulated)),
                ("fused", JsonValue::Bool(s.fused)),
                ("simd", JsonValue::Bool(s.simd)),
                ("strategy", JsonValue::str(&*s.strategy)),
                ("threads", JsonValue::num(s.threads as f64)),
                ("skin", hx(s.skin)),
                ("dt", hx(s.dt)),
                ("mass", hx(s.mass)),
                ("step", JsonValue::num(s.step as f64)),
                ("atoms", atoms_json(&s.atoms)),
            ]),
            Msg::Ready { rank } => JsonValue::obj(vec![
                tag("ready"),
                ("rank", JsonValue::num(*rank as f64)),
            ]),
            Msg::PeerListen { dir } => {
                JsonValue::obj(vec![tag("peer_listen"), ("dir", JsonValue::str(&**dir))])
            }
            Msg::PeerBound => JsonValue::obj(vec![tag("peer_bound")]),
            Msg::PeerConnect => JsonValue::obj(vec![tag("peer_connect")]),
            Msg::PeerReady => JsonValue::obj(vec![tag("peer_ready")]),
            Msg::Begin => JsonValue::obj(vec![tag("begin")]),
            Msg::DispOut { max_sq } => {
                JsonValue::obj(vec![tag("disp"), ("max_sq", hx(*max_sq))])
            }
            Msg::Migrate => JsonValue::obj(vec![tag("migrate")]),
            Msg::MigOut { to } => JsonValue::obj(vec![
                tag("mig_out"),
                (
                    "to",
                    JsonValue::Arr(to.iter().map(|a| atoms_json(a)).collect()),
                ),
            ]),
            Msg::MigIn { atoms } => {
                JsonValue::obj(vec![tag("mig_in"), ("atoms", atoms_json(atoms))])
            }
            Msg::HaloPos => JsonValue::obj(vec![tag("halo_pos")]),
            Msg::HaloSent => JsonValue::obj(vec![tag("halo_sent")]),
            Msg::HaloDensity => JsonValue::obj(vec![tag("halo_density")]),
            Msg::DensityDone => JsonValue::obj(vec![tag("density_done")]),
            Msg::HaloForce { kick } => {
                JsonValue::obj(vec![tag("halo_force"), ("kick", JsonValue::Bool(*kick))])
            }
            Msg::StepDone { step } => JsonValue::obj(vec![
                tag("step_done"),
                ("step", JsonValue::num(*step as f64)),
            ]),
            Msg::Save { dir } => {
                JsonValue::obj(vec![tag("save"), ("dir", JsonValue::str(&**dir))])
            }
            Msg::Saved { path } => {
                JsonValue::obj(vec![tag("saved"), ("path", JsonValue::str(&**path))])
            }
            Msg::Gather => JsonValue::obj(vec![tag("gather")]),
            Msg::State { atoms } => {
                JsonValue::obj(vec![tag("state"), ("atoms", atoms_json(atoms))])
            }
            Msg::Stats => JsonValue::obj(vec![tag("stats")]),
            Msg::StatsOut { phases } => JsonValue::obj(vec![
                tag("stats_out"),
                (
                    "phases",
                    JsonValue::Arr(
                        phases
                            .iter()
                            .map(|p| {
                                JsonValue::obj(vec![
                                    ("name", JsonValue::str(&*p.name)),
                                    ("seconds", hx(p.seconds)),
                                    ("count", JsonValue::num(p.count as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Msg::Counters => JsonValue::obj(vec![tag("counters")]),
            Msg::CountersOut { counters: c } => JsonValue::obj(vec![
                tag("counters_out"),
                ("ghost_sent", JsonValue::num(c.ghost_sent as f64)),
                ("ghost_installed", JsonValue::num(c.ghost_installed as f64)),
                ("bytes_sent", JsonValue::num(c.bytes_sent as f64)),
                ("bytes_recv", JsonValue::num(c.bytes_recv as f64)),
                ("wire_seconds", hx(c.wire_seconds)),
            ]),
            Msg::Shutdown => JsonValue::obj(vec![tag("shutdown")]),
            Msg::PeerHello { rank } => JsonValue::obj(vec![
                tag("peer_hello"),
                ("rank", JsonValue::num(*rank as f64)),
            ]),
            Msg::PeerGhosts { export } => {
                JsonValue::obj(vec![tag("peer_ghosts"), ("export", export_json(export))])
            }
            Msg::PeerPos { pos } => {
                JsonValue::obj(vec![tag("peer_pos"), ("pos", vec3s_json(pos))])
            }
            Msg::PeerFp { fp } => {
                JsonValue::obj(vec![tag("peer_fp"), ("fp", f64s_json(fp))])
            }
        }
    }

    /// Parses a message from its JSON wire form.
    pub fn decode(v: &JsonValue) -> Result<Msg, CodecError> {
        let tag = field(v, "t")?
            .as_str()
            .ok_or_else(|| bad("tag must be a string"))?;
        match tag {
            "init" => {
                let boxv = field(v, "box")?
                    .as_arr()
                    .ok_or_else(|| bad("box must be an array"))?;
                if boxv.len() != 3 {
                    return Err(bad("box must have three lengths"));
                }
                Ok(Msg::Init(Box::new(InitSpec {
                    rank: get_usize(field(v, "rank")?)?,
                    n_ranks: get_usize(field(v, "n_ranks")?)?,
                    axis: get_usize(field(v, "axis")?)?,
                    box_lengths: [
                        get_f64(&boxv[0])?,
                        get_f64(&boxv[1])?,
                        get_f64(&boxv[2])?,
                    ],
                    potential: get_str(field(v, "potential")?)?,
                    tabulated: get_bool(field(v, "tabulated")?)?,
                    fused: get_bool(field(v, "fused")?)?,
                    simd: get_bool(field(v, "simd")?)?,
                    strategy: get_str(field(v, "strategy")?)?,
                    threads: get_usize(field(v, "threads")?)?,
                    skin: get_f64(field(v, "skin")?)?,
                    dt: get_f64(field(v, "dt")?)?,
                    mass: get_f64(field(v, "mass")?)?,
                    step: get_u64(field(v, "step")?)?,
                    atoms: get_atoms(field(v, "atoms")?)?,
                })))
            }
            "ready" => Ok(Msg::Ready {
                rank: get_u64(field(v, "rank")?)?,
            }),
            "peer_listen" => Ok(Msg::PeerListen {
                dir: get_str(field(v, "dir")?)?,
            }),
            "peer_bound" => Ok(Msg::PeerBound),
            "peer_connect" => Ok(Msg::PeerConnect),
            "peer_ready" => Ok(Msg::PeerReady),
            "begin" => Ok(Msg::Begin),
            "disp" => Ok(Msg::DispOut {
                max_sq: get_f64(field(v, "max_sq")?)?,
            }),
            "migrate" => Ok(Msg::Migrate),
            "mig_out" => Ok(Msg::MigOut {
                to: per_rank(field(v, "to")?, get_atoms)?,
            }),
            "mig_in" => Ok(Msg::MigIn {
                atoms: get_atoms(field(v, "atoms")?)?,
            }),
            "halo_pos" => Ok(Msg::HaloPos),
            "halo_sent" => Ok(Msg::HaloSent),
            "halo_density" => Ok(Msg::HaloDensity),
            "density_done" => Ok(Msg::DensityDone),
            "halo_force" => Ok(Msg::HaloForce {
                kick: get_bool(field(v, "kick")?)?,
            }),
            "step_done" => Ok(Msg::StepDone {
                step: get_u64(field(v, "step")?)?,
            }),
            "save" => Ok(Msg::Save {
                dir: get_str(field(v, "dir")?)?,
            }),
            "saved" => Ok(Msg::Saved {
                path: get_str(field(v, "path")?)?,
            }),
            "gather" => Ok(Msg::Gather),
            "state" => Ok(Msg::State {
                atoms: get_atoms(field(v, "atoms")?)?,
            }),
            "stats" => Ok(Msg::Stats),
            "stats_out" => Ok(Msg::StatsOut {
                phases: per_rank(field(v, "phases")?, |p| {
                    Ok(PhaseStat {
                        name: get_str(field(p, "name")?)?,
                        seconds: get_f64(field(p, "seconds")?)?,
                        count: get_u64(field(p, "count")?)?,
                    })
                })?,
            }),
            "counters" => Ok(Msg::Counters),
            "counters_out" => Ok(Msg::CountersOut {
                counters: HaloCounters {
                    ghost_sent: get_u64(field(v, "ghost_sent")?)?,
                    ghost_installed: get_u64(field(v, "ghost_installed")?)?,
                    bytes_sent: get_u64(field(v, "bytes_sent")?)?,
                    bytes_recv: get_u64(field(v, "bytes_recv")?)?,
                    wire_seconds: get_f64(field(v, "wire_seconds")?)?,
                },
            }),
            "shutdown" => Ok(Msg::Shutdown),
            "peer_hello" => Ok(Msg::PeerHello {
                rank: get_u64(field(v, "rank")?)?,
            }),
            "peer_ghosts" => Ok(Msg::PeerGhosts {
                export: get_export(field(v, "export")?)?,
            }),
            "peer_pos" => Ok(Msg::PeerPos {
                pos: get_vec3s(field(v, "pos")?)?,
            }),
            "peer_fp" => Ok(Msg::PeerFp {
                fp: get_f64s(field(v, "fp")?)?,
            }),
            other => Err(bad(&format!("unknown message tag '{other}'"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Binary wire form: [u8 tag][fields], all integers and f64 bit patterns
// little-endian, strings and vectors u32-length-prefixed. Decoding is a
// cursor walk that must consume the payload exactly — trailing bytes are a
// typed error, mirroring the JSON parser's trailing-character rejection.
// ---------------------------------------------------------------------------

mod tag {
    pub const INIT: u8 = 1;
    pub const READY: u8 = 2;
    pub const PEER_LISTEN: u8 = 3;
    pub const PEER_BOUND: u8 = 4;
    pub const PEER_CONNECT: u8 = 5;
    pub const PEER_READY: u8 = 6;
    pub const BEGIN: u8 = 7;
    pub const DISP_OUT: u8 = 8;
    pub const MIGRATE: u8 = 9;
    pub const MIG_OUT: u8 = 10;
    pub const MIG_IN: u8 = 11;
    pub const HALO_POS: u8 = 12;
    pub const HALO_SENT: u8 = 13;
    pub const HALO_DENSITY: u8 = 14;
    pub const DENSITY_DONE: u8 = 15;
    pub const HALO_FORCE: u8 = 16;
    pub const STEP_DONE: u8 = 17;
    pub const SAVE: u8 = 18;
    pub const SAVED: u8 = 19;
    pub const GATHER: u8 = 20;
    pub const STATE: u8 = 21;
    pub const STATS: u8 = 22;
    pub const STATS_OUT: u8 = 23;
    pub const COUNTERS: u8 = 24;
    pub const COUNTERS_OUT: u8 = 25;
    pub const SHUTDOWN: u8 = 26;
    pub const PEER_HELLO: u8 = 27;
    pub const PEER_GHOSTS: u8 = 28;
    pub const PEER_POS: u8 = 29;
    pub const PEER_FP: u8 = 30;
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, x: f64) {
    out.extend_from_slice(&x.to_bits().to_le_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u32).to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn put_vec3(out: &mut Vec<u8>, v: Vec3) {
    put_f64(out, v.x);
    put_f64(out, v.y);
    put_f64(out, v.z);
}

fn put_vec3s(out: &mut Vec<u8>, vs: &[Vec3]) {
    put_len(out, vs.len());
    for &v in vs {
        put_vec3(out, v);
    }
}

fn put_f64s(out: &mut Vec<u8>, xs: &[f64]) {
    put_len(out, xs.len());
    for &x in xs {
        put_f64(out, x);
    }
}

fn put_atoms(out: &mut Vec<u8>, atoms: &[ShardAtom]) {
    put_len(out, atoms.len());
    for a in atoms {
        put_u64(out, a.gid);
        put_vec3(out, a.pos);
        put_vec3(out, a.vel);
    }
}

fn put_export(out: &mut Vec<u8>, e: &GhostExport) {
    put_len(out, e.gids.len());
    for &g in &e.gids {
        put_u64(out, g);
    }
    put_vec3s(out, &e.pos);
}

/// Cursor over a binary payload; every read is bounds-checked and reports
/// [`CodecError::BadField`] on underrun.
struct Cur<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() - self.at < n {
            return Err(bad("binary payload ends mid-field"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| bad("integer too large for usize"))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(&format!("bad bool byte {other}"))),
        }
    }

    /// Reads a u32 length prefix, sanity-bounded by what the remaining
    /// payload could possibly hold (`floor` bytes per element, minimum 1).
    fn len(&mut self, per_elem: usize) -> Result<usize, CodecError> {
        let n = u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as usize;
        let left = self.buf.len() - self.at;
        if n.saturating_mul(per_elem.max(1)) > left {
            return Err(bad("length prefix exceeds remaining payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len(1)?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| bad("string field is not UTF-8"))
    }

    fn vec3(&mut self) -> Result<Vec3, CodecError> {
        Ok(Vec3::new(self.f64()?, self.f64()?, self.f64()?))
    }

    fn vec3s(&mut self) -> Result<Vec<Vec3>, CodecError> {
        let n = self.len(24)?;
        (0..n).map(|_| self.vec3()).collect()
    }

    fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn atoms(&mut self) -> Result<Vec<ShardAtom>, CodecError> {
        let n = self.len(56)?;
        (0..n)
            .map(|_| {
                Ok(ShardAtom {
                    gid: self.u64()?,
                    pos: self.vec3()?,
                    vel: self.vec3()?,
                })
            })
            .collect()
    }

    fn export(&mut self) -> Result<GhostExport, CodecError> {
        let n = self.len(8)?;
        let gids = (0..n).map(|_| self.u64()).collect::<Result<Vec<_>, _>>()?;
        let pos = self.vec3s()?;
        if gids.len() != pos.len() {
            return Err(bad("ghost export gid/pos length mismatch"));
        }
        Ok(GhostExport { gids, pos })
    }
}

impl Msg {
    /// Renders the message as its binary payload body (unframed).
    pub fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Init(s) => {
                out.push(tag::INIT);
                put_u64(&mut out, s.rank as u64);
                put_u64(&mut out, s.n_ranks as u64);
                put_u64(&mut out, s.axis as u64);
                for &l in &s.box_lengths {
                    put_f64(&mut out, l);
                }
                put_str(&mut out, &s.potential);
                out.push(u8::from(s.tabulated));
                out.push(u8::from(s.fused));
                out.push(u8::from(s.simd));
                put_str(&mut out, &s.strategy);
                put_u64(&mut out, s.threads as u64);
                put_f64(&mut out, s.skin);
                put_f64(&mut out, s.dt);
                put_f64(&mut out, s.mass);
                put_u64(&mut out, s.step);
                put_atoms(&mut out, &s.atoms);
            }
            Msg::Ready { rank } => {
                out.push(tag::READY);
                put_u64(&mut out, *rank);
            }
            Msg::PeerListen { dir } => {
                out.push(tag::PEER_LISTEN);
                put_str(&mut out, dir);
            }
            Msg::PeerBound => out.push(tag::PEER_BOUND),
            Msg::PeerConnect => out.push(tag::PEER_CONNECT),
            Msg::PeerReady => out.push(tag::PEER_READY),
            Msg::Begin => out.push(tag::BEGIN),
            Msg::DispOut { max_sq } => {
                out.push(tag::DISP_OUT);
                put_f64(&mut out, *max_sq);
            }
            Msg::Migrate => out.push(tag::MIGRATE),
            Msg::MigOut { to } => {
                out.push(tag::MIG_OUT);
                put_len(&mut out, to.len());
                for atoms in to {
                    put_atoms(&mut out, atoms);
                }
            }
            Msg::MigIn { atoms } => {
                out.push(tag::MIG_IN);
                put_atoms(&mut out, atoms);
            }
            Msg::HaloPos => out.push(tag::HALO_POS),
            Msg::HaloSent => out.push(tag::HALO_SENT),
            Msg::HaloDensity => out.push(tag::HALO_DENSITY),
            Msg::DensityDone => out.push(tag::DENSITY_DONE),
            Msg::HaloForce { kick } => {
                out.push(tag::HALO_FORCE);
                out.push(u8::from(*kick));
            }
            Msg::StepDone { step } => {
                out.push(tag::STEP_DONE);
                put_u64(&mut out, *step);
            }
            Msg::Save { dir } => {
                out.push(tag::SAVE);
                put_str(&mut out, dir);
            }
            Msg::Saved { path } => {
                out.push(tag::SAVED);
                put_str(&mut out, path);
            }
            Msg::Gather => out.push(tag::GATHER),
            Msg::State { atoms } => {
                out.push(tag::STATE);
                put_atoms(&mut out, atoms);
            }
            Msg::Stats => out.push(tag::STATS),
            Msg::StatsOut { phases } => {
                out.push(tag::STATS_OUT);
                put_len(&mut out, phases.len());
                for p in phases {
                    put_str(&mut out, &p.name);
                    put_f64(&mut out, p.seconds);
                    put_u64(&mut out, p.count);
                }
            }
            Msg::Counters => out.push(tag::COUNTERS),
            Msg::CountersOut { counters: c } => {
                out.push(tag::COUNTERS_OUT);
                put_u64(&mut out, c.ghost_sent);
                put_u64(&mut out, c.ghost_installed);
                put_u64(&mut out, c.bytes_sent);
                put_u64(&mut out, c.bytes_recv);
                put_f64(&mut out, c.wire_seconds);
            }
            Msg::Shutdown => out.push(tag::SHUTDOWN),
            Msg::PeerHello { rank } => {
                out.push(tag::PEER_HELLO);
                put_u64(&mut out, *rank);
            }
            Msg::PeerGhosts { export } => {
                out.push(tag::PEER_GHOSTS);
                put_export(&mut out, export);
            }
            Msg::PeerPos { pos } => {
                out.push(tag::PEER_POS);
                put_vec3s(&mut out, pos);
            }
            Msg::PeerFp { fp } => {
                out.push(tag::PEER_FP);
                put_f64s(&mut out, fp);
            }
        }
        out
    }

    /// Parses a message from its binary payload body. The body must hold
    /// exactly one message; leftover bytes are a [`CodecError::BadField`].
    pub fn decode_binary(body: &[u8]) -> Result<Msg, CodecError> {
        let mut c = Cur { buf: body, at: 0 };
        let msg = match c.u8()? {
            tag::INIT => {
                let rank = c.usize()?;
                let n_ranks = c.usize()?;
                let axis = c.usize()?;
                let box_lengths = [c.f64()?, c.f64()?, c.f64()?];
                let potential = c.str()?;
                let tabulated = c.bool()?;
                let fused = c.bool()?;
                let simd = c.bool()?;
                let strategy = c.str()?;
                let threads = c.usize()?;
                let skin = c.f64()?;
                let dt = c.f64()?;
                let mass = c.f64()?;
                let step = c.u64()?;
                let atoms = c.atoms()?;
                Msg::Init(Box::new(InitSpec {
                    rank,
                    n_ranks,
                    axis,
                    box_lengths,
                    potential,
                    tabulated,
                    fused,
                    simd,
                    strategy,
                    threads,
                    skin,
                    dt,
                    mass,
                    step,
                    atoms,
                }))
            }
            tag::READY => Msg::Ready { rank: c.u64()? },
            tag::PEER_LISTEN => Msg::PeerListen { dir: c.str()? },
            tag::PEER_BOUND => Msg::PeerBound,
            tag::PEER_CONNECT => Msg::PeerConnect,
            tag::PEER_READY => Msg::PeerReady,
            tag::BEGIN => Msg::Begin,
            tag::DISP_OUT => Msg::DispOut { max_sq: c.f64()? },
            tag::MIGRATE => Msg::Migrate,
            tag::MIG_OUT => {
                let n = c.len(4)?;
                let to = (0..n).map(|_| c.atoms()).collect::<Result<Vec<_>, _>>()?;
                Msg::MigOut { to }
            }
            tag::MIG_IN => Msg::MigIn { atoms: c.atoms()? },
            tag::HALO_POS => Msg::HaloPos,
            tag::HALO_SENT => Msg::HaloSent,
            tag::HALO_DENSITY => Msg::HaloDensity,
            tag::DENSITY_DONE => Msg::DensityDone,
            tag::HALO_FORCE => Msg::HaloForce { kick: c.bool()? },
            tag::STEP_DONE => Msg::StepDone { step: c.u64()? },
            tag::SAVE => Msg::Save { dir: c.str()? },
            tag::SAVED => Msg::Saved { path: c.str()? },
            tag::GATHER => Msg::Gather,
            tag::STATE => Msg::State { atoms: c.atoms()? },
            tag::STATS => Msg::Stats,
            tag::STATS_OUT => {
                let n = c.len(17)?;
                let phases = (0..n)
                    .map(|_| {
                        Ok(PhaseStat {
                            name: c.str()?,
                            seconds: c.f64()?,
                            count: c.u64()?,
                        })
                    })
                    .collect::<Result<Vec<_>, CodecError>>()?;
                Msg::StatsOut { phases }
            }
            tag::COUNTERS => Msg::Counters,
            tag::COUNTERS_OUT => Msg::CountersOut {
                counters: HaloCounters {
                    ghost_sent: c.u64()?,
                    ghost_installed: c.u64()?,
                    bytes_sent: c.u64()?,
                    bytes_recv: c.u64()?,
                    wire_seconds: c.f64()?,
                },
            },
            tag::SHUTDOWN => Msg::Shutdown,
            tag::PEER_HELLO => Msg::PeerHello { rank: c.u64()? },
            tag::PEER_GHOSTS => Msg::PeerGhosts { export: c.export()? },
            tag::PEER_POS => Msg::PeerPos { pos: c.vec3s()? },
            tag::PEER_FP => Msg::PeerFp { fp: c.f64s()? },
            other => return Err(bad(&format!("unknown binary message tag {other}"))),
        };
        if c.at != body.len() {
            return Err(bad(&format!(
                "trailing bytes after binary message ({} of {} consumed)",
                c.at,
                body.len()
            )));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;

    fn atom(gid: u64) -> ShardAtom {
        ShardAtom {
            gid,
            pos: Vec3::new(1.5, -0.0, 3.25e-7),
            vel: Vec3::new(-2.5, 0.125, 9.0),
        }
    }

    fn sample_msgs() -> Vec<Msg> {
        vec![
            Msg::Init(Box::new(InitSpec {
                rank: 1,
                n_ranks: 2,
                axis: 0,
                box_lengths: [10.0, 11.0, 12.0],
                potential: "fe".to_string(),
                tabulated: false,
                fused: true,
                simd: false,
                strategy: "sdc2d".to_string(),
                threads: 2,
                skin: 0.3,
                dt: 0.002,
                mass: 55.845,
                step: 7,
                atoms: vec![atom(0), atom(5)],
            })),
            Msg::Ready { rank: 1 },
            Msg::PeerListen { dir: "/tmp/mesh".to_string() },
            Msg::PeerBound,
            Msg::PeerConnect,
            Msg::PeerReady,
            Msg::Begin,
            Msg::DispOut { max_sq: 0.015625 },
            Msg::Migrate,
            Msg::MigOut {
                to: vec![vec![], vec![atom(3)]],
            },
            Msg::MigIn { atoms: vec![atom(9)] },
            Msg::HaloPos,
            Msg::HaloSent,
            Msg::HaloDensity,
            Msg::DensityDone,
            Msg::HaloForce { kick: true },
            Msg::StepDone { step: 8 },
            Msg::Save { dir: "/tmp/x".to_string() },
            Msg::Saved { path: "/tmp/x/shard-0@8.ckpt".to_string() },
            Msg::Gather,
            Msg::State { atoms: vec![atom(1)] },
            Msg::Stats,
            Msg::StatsOut {
                phases: vec![PhaseStat {
                    name: "force".to_string(),
                    seconds: 0.25,
                    count: 12,
                }],
            },
            Msg::Counters,
            Msg::CountersOut {
                counters: HaloCounters {
                    ghost_sent: 10,
                    ghost_installed: 10,
                    bytes_sent: 4096,
                    bytes_recv: 2048,
                    wire_seconds: 0.125,
                },
            },
            Msg::Shutdown,
            Msg::PeerHello { rank: 3 },
            Msg::PeerGhosts {
                export: GhostExport {
                    gids: vec![2, 4],
                    pos: vec![Vec3::ONE, Vec3::ZERO],
                },
            },
            Msg::PeerPos {
                pos: vec![Vec3::new(0.1, 0.2, 0.3)],
            },
            Msg::PeerFp { fp: vec![1.0, -2.5e-3, f64::NAN] },
        ]
    }

    #[test]
    fn every_message_round_trips_through_both_codecs() {
        for m in sample_msgs() {
            for codec in [Codec::Json, Codec::Binary] {
                let bytes = codec.encode(&m);
                let (back, used) = codec.decode(&bytes).unwrap();
                assert_eq!(used, bytes.len());
                // NaN breaks PartialEq; compare the canonical binary wire
                // forms, which carry exact bit patterns.
                assert_eq!(
                    back.encode_binary(),
                    m.encode_binary(),
                    "{codec:?} round trip failed for {m:?}"
                );
            }
        }
    }

    #[test]
    fn cross_codec_equivalence() {
        // decode(encode_json(m)) ≡ decode(encode_binary(m)), field for
        // field and bit for bit.
        for m in sample_msgs() {
            let via_json = Codec::Json.decode(&Codec::Json.encode(&m)).unwrap().0;
            let via_bin = Codec::Binary.decode(&Codec::Binary.encode(&m)).unwrap().0;
            assert_eq!(
                via_json.encode_binary(),
                via_bin.encode_binary(),
                "codecs disagree on {m:?}"
            );
        }
    }

    #[test]
    fn binary_trailing_bytes_are_rejected() {
        let mut body = Msg::Begin.encode_binary();
        body.push(0);
        assert!(matches!(
            Msg::decode_binary(&body),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn binary_length_prefix_cannot_overrun() {
        // A PeerFp claiming 2^32-1 floats in a 20-byte payload must be a
        // typed error, not an allocation attempt.
        let mut body = vec![30u8]; // PEER_FP
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        body.extend_from_slice(&[0u8; 15]);
        assert!(matches!(
            Msg::decode_binary(&body),
            Err(CodecError::BadField(_))
        ));
    }

    #[test]
    fn unknown_tags_and_missing_fields_are_typed_errors() {
        let v = JsonValue::obj(vec![("t", JsonValue::str("warp"))]);
        assert!(matches!(Msg::decode(&v), Err(CodecError::BadField(_))));
        let v = JsonValue::obj(vec![("t", JsonValue::str("disp"))]);
        assert!(matches!(Msg::decode(&v), Err(CodecError::BadField(_))));
        assert!(matches!(
            Msg::decode(&JsonValue::num(3.0)),
            Err(CodecError::BadField(_))
        ));
        assert!(matches!(
            Msg::decode_binary(&[200]),
            Err(CodecError::BadField(_))
        ));
        assert!(matches!(
            Msg::decode_binary(&[]),
            Err(CodecError::BadField(_))
        ));
    }
}
