//! The peer mesh: direct shard ↔ shard halo links, brokered by the driver
//! at boot and untouched by it afterwards.
//!
//! Halo rounds are phase-synchronous (the driver's control round-trips
//! provide the barrier), so the mesh API is round-shaped: one frame to
//! every peer ([`PeerMesh::send_peers`]), one frame from every peer
//! ([`PeerMesh::recv_peers`]). Exactly one frame per directed pair per
//! round — empty exports still ship a frame — keeps reception
//! deterministic without any tagging.
//!
//! Two implementations:
//!
//! * [`ChannelMesh`] — virtual ranks: an mpsc channel per directed pair.
//!   Frames still pass through the real [`Codec`], so the conformance
//!   battery exercises the exact bytes the process backend ships.
//! * [`SocketMesh`] — one Unix-domain stream per unordered pair. Sends
//!   and receives are pumped through nonblocking I/O: while a shard
//!   flushes its exports it also drains whatever peers have already
//!   written, so two shards writing large frames at each other cannot
//!   deadlock on full kernel buffers, and fp frames arriving early (peers
//!   that finished their density pass first — the overlap the
//!   density/force split enables) are absorbed instead of blocking the
//!   sender.
//!
//! Construction is two-phase to dodge the connect/accept race: every rank
//! binds its rendezvous endpoint first (`PeerListen` round), then every
//! rank dials all lower ranks and accepts all higher ones (`PeerConnect`
//! round). A dial lands in the listener's backlog even before the peer
//! accepts, so the serial dial-then-accept order cannot deadlock.

use crate::codec::{frame_len, Codec};
use crate::msg::{HaloCounters, Msg};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// Direct links to every other shard, used inside the halo rounds.
pub trait PeerMesh: Send {
    /// Sends one message to every peer; `out[r]` is `None` exactly for
    /// `r == self_rank`.
    fn send_peers(&mut self, out: Vec<Option<Msg>>) -> Result<(), String>;
    /// Receives one message from every peer, slot per rank (`None` at the
    /// own rank).
    fn recv_peers(&mut self) -> Result<Vec<Option<Msg>>, String>;
    /// Cumulative wire counters (bytes both ways, wall seconds spent in
    /// encode/ship/decode).
    fn wire(&self) -> (u64, u64, f64);
}

/// Hands a [`PeerMesh`] to the shard core when the driver's brokering
/// rounds arrive: `listen` on `PeerListen`, `connect` on `PeerConnect`.
pub trait MeshProvider: Send {
    /// Binds the rendezvous endpoint (no-op for virtual ranks).
    fn listen(&mut self, rank: usize, n_ranks: usize, dir: &str) -> Result<(), String>;
    /// Establishes every peer link and returns the mesh.
    fn connect(&mut self, rank: usize, n_ranks: usize) -> Result<Box<dyn PeerMesh>, String>;
}

// ---------------------------------------------------------------------------
// Virtual ranks: mpsc channels.
// ---------------------------------------------------------------------------

/// The virtual-rank mesh: one mpsc channel per directed pair, carrying
/// fully framed codec bytes.
pub struct ChannelMesh {
    rank: usize,
    codec: Codec,
    tx: Vec<Option<Sender<Vec<u8>>>>,
    rx: Vec<Option<Receiver<Vec<u8>>>>,
    bytes_sent: u64,
    bytes_recv: u64,
    wire_seconds: f64,
}

/// Builds the fully wired mesh set for `n` virtual ranks.
pub fn channel_mesh_set(n: usize, codec: Codec) -> Vec<ChannelMesh> {
    let mut meshes: Vec<ChannelMesh> = (0..n)
        .map(|rank| ChannelMesh {
            rank,
            codec,
            tx: (0..n).map(|_| None).collect(),
            rx: (0..n).map(|_| None).collect(),
            bytes_sent: 0,
            bytes_recv: 0,
            wire_seconds: 0.0,
        })
        .collect();
    for s in 0..n {
        for t in 0..n {
            if s == t {
                continue;
            }
            let (tx, rx) = channel();
            meshes[s].tx[t] = Some(tx);
            meshes[t].rx[s] = Some(rx);
        }
    }
    meshes
}

impl PeerMesh for ChannelMesh {
    fn send_peers(&mut self, out: Vec<Option<Msg>>) -> Result<(), String> {
        if out.len() != self.tx.len() {
            return Err("peer send arity mismatch".to_string());
        }
        let start = Instant::now();
        for (t, msg) in out.into_iter().enumerate() {
            let Some(msg) = msg else { continue };
            let tx = self.tx[t]
                .as_ref()
                .ok_or_else(|| format!("no peer link to rank {t}"))?;
            let bytes = self.codec.encode(&msg);
            self.bytes_sent += bytes.len() as u64;
            tx.send(bytes)
                .map_err(|_| format!("peer {t} hung up (channel closed)"))?;
        }
        self.wire_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn recv_peers(&mut self) -> Result<Vec<Option<Msg>>, String> {
        let start = Instant::now();
        let mut got = Vec::with_capacity(self.rx.len());
        for (s, rx) in self.rx.iter().enumerate() {
            let Some(rx) = rx else {
                got.push(None);
                continue;
            };
            // The driver's control round is the barrier: peers sent their
            // frames before this shard was told to receive, so an empty
            // channel is a protocol-phase violation, not a wait.
            let bytes = match rx.try_recv() {
                Ok(b) => b,
                Err(TryRecvError::Empty) => {
                    return Err(format!("no frame queued from rank {s} (phase violation)"))
                }
                Err(TryRecvError::Disconnected) => {
                    return Err(format!("peer {s} hung up (channel closed)"))
                }
            };
            self.bytes_recv += bytes.len() as u64;
            let (msg, used) = self
                .codec
                .decode(&bytes)
                .map_err(|e| format!("bad peer frame from rank {s}: {e}"))?;
            if used != bytes.len() {
                return Err(format!("peer frame from rank {s} has trailing bytes"));
            }
            got.push(Some(msg));
        }
        self.wire_seconds += start.elapsed().as_secs_f64();
        Ok(got)
    }

    fn wire(&self) -> (u64, u64, f64) {
        (self.bytes_sent, self.bytes_recv, self.wire_seconds)
    }
}

/// The provider the virtual backend installs: the mesh is pre-wired by
/// [`channel_mesh_set`], so `connect` just hands it over.
pub struct ChannelMeshProvider {
    mesh: Option<ChannelMesh>,
}

impl ChannelMeshProvider {
    /// Wraps one pre-wired mesh.
    pub fn new(mesh: ChannelMesh) -> ChannelMeshProvider {
        ChannelMeshProvider { mesh: Some(mesh) }
    }
}

impl MeshProvider for ChannelMeshProvider {
    fn listen(&mut self, rank: usize, n_ranks: usize, _dir: &str) -> Result<(), String> {
        let mesh = self.mesh.as_ref().ok_or("mesh already taken")?;
        if mesh.rank != rank || mesh.tx.len() != n_ranks {
            return Err(format!(
                "mesh wired for rank {}/{}, asked for {rank}/{n_ranks}",
                mesh.rank,
                mesh.tx.len()
            ));
        }
        Ok(())
    }

    fn connect(&mut self, _rank: usize, _n_ranks: usize) -> Result<Box<dyn PeerMesh>, String> {
        self.mesh
            .take()
            .map(|m| Box::new(m) as Box<dyn PeerMesh>)
            .ok_or_else(|| "mesh already taken".to_string())
    }
}

// ---------------------------------------------------------------------------
// Process backend: Unix-domain streams with a nonblocking pump.
// ---------------------------------------------------------------------------

const PUMP_IDLE: Duration = Duration::from_micros(100);
const MESH_DEADLINE: Duration = Duration::from_secs(30);

struct PeerLink {
    stream: UnixStream,
    /// Bytes read off the stream but not yet consumed as frames.
    inbox: Vec<u8>,
}

/// The process-backend mesh: one stream per unordered rank pair.
pub struct SocketMesh {
    codec: Codec,
    links: Vec<Option<PeerLink>>,
    bytes_sent: u64,
    bytes_recv: u64,
    wire_seconds: f64,
}

fn io_closed(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
    )
}

impl SocketMesh {
    /// Drains whatever `link`'s stream has ready into its inbox without
    /// blocking. Returns bytes read; `Err` on peer death.
    fn drain(link: &mut PeerLink, from: usize) -> Result<u64, String> {
        let mut buf = [0u8; 64 * 1024];
        let mut total = 0u64;
        loop {
            match link.stream.read(&mut buf) {
                Ok(0) => return Err(format!("peer {from} closed its link")),
                Ok(n) => {
                    link.inbox.extend_from_slice(&buf[..n]);
                    total += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(total),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if io_closed(e.kind()) => {
                    return Err(format!("peer {from} link died: {e}"))
                }
                Err(e) => return Err(format!("peer {from} read error: {e}")),
            }
        }
    }

    /// Whether `link`'s inbox holds one complete frame.
    fn has_frame(link: &PeerLink, from: usize) -> Result<bool, String> {
        match frame_len(&link.inbox) {
            None => Ok(false),
            Some(Err(e)) => Err(format!("peer {from} sent a bad frame: {e}")),
            Some(Ok(total)) => Ok(link.inbox.len() >= total),
        }
    }
}

impl PeerMesh for SocketMesh {
    fn send_peers(&mut self, out: Vec<Option<Msg>>) -> Result<(), String> {
        if out.len() != self.links.len() {
            return Err("peer send arity mismatch".to_string());
        }
        let start = Instant::now();
        // Encode everything up front, then pump: write what the kernel
        // will take, read what peers have written (they are all in this
        // same round, writing at us), never block on either.
        let mut pending: Vec<(usize, Vec<u8>, usize)> = Vec::new();
        for (t, msg) in out.into_iter().enumerate() {
            let Some(msg) = msg else { continue };
            if self.links[t].is_none() {
                return Err(format!("no peer link to rank {t}"));
            }
            let bytes = self.codec.encode(&msg);
            self.bytes_sent += bytes.len() as u64;
            pending.push((t, bytes, 0));
        }
        let deadline = Instant::now() + MESH_DEADLINE;
        while !pending.is_empty() {
            let mut progressed = false;
            pending.retain_mut(|(t, bytes, off)| {
                if let Some(link) = self.links[*t].as_mut() {
                    loop {
                        match link.stream.write(&bytes[*off..]) {
                            Ok(n) => {
                                *off += n;
                                progressed = true;
                                if *off == bytes.len() {
                                    return false;
                                }
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                            Err(e) if e.kind() == ErrorKind::Interrupted => {}
                            Err(_) => return true, // surfaced by the drain below
                        }
                    }
                }
                false
            });
            // Drain incoming bytes so a peer blocked writing at us can
            // finish, which in turn unblocks our writes to it.
            for (s, link) in self.links.iter_mut().enumerate() {
                if let Some(link) = link {
                    if Self::drain(link, s)? > 0 {
                        progressed = true;
                    }
                }
            }
            if !pending.is_empty() && !progressed {
                if Instant::now() > deadline {
                    return Err("peer send stalled past deadline".to_string());
                }
                std::thread::sleep(PUMP_IDLE);
            }
        }
        self.wire_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn recv_peers(&mut self) -> Result<Vec<Option<Msg>>, String> {
        let start = Instant::now();
        let deadline = Instant::now() + MESH_DEADLINE;
        loop {
            let mut all = true;
            let mut progressed = false;
            for (s, link) in self.links.iter_mut().enumerate() {
                let Some(link) = link else { continue };
                if Self::has_frame(link, s)? {
                    continue;
                }
                if Self::drain(link, s)? > 0 {
                    progressed = true;
                }
                if !Self::has_frame(link, s)? {
                    all = false;
                }
            }
            if all {
                break;
            }
            if !progressed {
                if Instant::now() > deadline {
                    return Err("peer recv stalled past deadline".to_string());
                }
                std::thread::sleep(PUMP_IDLE);
            }
        }
        let mut got = Vec::with_capacity(self.links.len());
        for (s, link) in self.links.iter_mut().enumerate() {
            let Some(link) = link else {
                got.push(None);
                continue;
            };
            let (msg, used) = self
                .codec
                .decode(&link.inbox)
                .map_err(|e| format!("bad peer frame from rank {s}: {e}"))?;
            link.inbox.drain(..used);
            self.bytes_recv += used as u64;
            got.push(Some(msg));
        }
        self.wire_seconds += start.elapsed().as_secs_f64();
        Ok(got)
    }

    fn wire(&self) -> (u64, u64, f64) {
        (self.bytes_sent, self.bytes_recv, self.wire_seconds)
    }
}

/// Rendezvous path of one rank's peer listener inside the shared socket
/// directory.
pub fn peer_sock_path(dir: &str, rank: usize) -> PathBuf {
    PathBuf::from(dir).join(format!("peer-{rank}.sock"))
}

/// The provider the `mdshard-worker` binary installs: binds a listener on
/// `PeerListen`, dials lower ranks / accepts higher ranks on
/// `PeerConnect`, identifying inbound streams by their `PeerHello`.
pub struct SocketMeshProvider {
    codec: Codec,
    listener: Option<UnixListener>,
    dir: Option<String>,
}

impl SocketMeshProvider {
    /// A provider speaking `codec` on every peer link.
    pub fn new(codec: Codec) -> SocketMeshProvider {
        SocketMeshProvider {
            codec,
            listener: None,
            dir: None,
        }
    }
}

impl MeshProvider for SocketMeshProvider {
    fn listen(&mut self, rank: usize, _n_ranks: usize, dir: &str) -> Result<(), String> {
        let path = peer_sock_path(dir, rank);
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)
            .map_err(|e| format!("bind {}: {e}", path.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener nonblocking: {e}"))?;
        self.listener = Some(listener);
        self.dir = Some(dir.to_string());
        Ok(())
    }

    fn connect(&mut self, rank: usize, n_ranks: usize) -> Result<Box<dyn PeerMesh>, String> {
        let listener = self.listener.take().ok_or("connect before listen")?;
        let dir = self.dir.clone().ok_or("connect before listen")?;
        let mut links: Vec<Option<PeerLink>> = (0..n_ranks).map(|_| None).collect();
        // Dial every lower rank (their listeners are bound — the driver's
        // PeerListen round completed) and introduce ourselves.
        for (s, link) in links.iter_mut().enumerate().take(rank) {
            let path = peer_sock_path(&dir, s);
            let mut stream = UnixStream::connect(&path)
                .map_err(|e| format!("dial rank {s} at {}: {e}", path.display()))?;
            self.codec
                .write_msg(&mut stream, &Msg::PeerHello { rank: rank as u64 })
                .map_err(|e| format!("hello to rank {s}: {e}"))?;
            stream
                .set_nonblocking(true)
                .map_err(|e| format!("peer stream nonblocking: {e}"))?;
            *link = Some(PeerLink {
                stream,
                inbox: Vec::new(),
            });
        }
        // Accept every higher rank, identified by its hello.
        let expect = n_ranks - rank - 1;
        let deadline = Instant::now() + MESH_DEADLINE;
        let mut accepted = 0;
        while accepted < expect {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| format!("peer stream blocking: {e}"))?;
                    let hello = self
                        .codec
                        .read_msg(&mut stream)
                        .map_err(|e| format!("peer hello: {e}"))?;
                    let from = match hello {
                        Msg::PeerHello { rank: r } => r as usize,
                        other => return Err(format!("expected peer hello, got {other:?}")),
                    };
                    if from <= rank || from >= n_ranks || links[from].is_some() {
                        return Err(format!("bad or duplicate peer hello from rank {from}"));
                    }
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| format!("peer stream nonblocking: {e}"))?;
                    links[from] = Some(PeerLink {
                        stream,
                        inbox: Vec::new(),
                    });
                    accepted += 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(format!(
                            "peer mesh rendezvous timed out ({accepted}/{expect} accepted)"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(format!("peer accept: {e}")),
            }
        }
        let _ = std::fs::remove_file(peer_sock_path(&dir, rank));
        Ok(Box::new(SocketMesh {
            codec: self.codec,
            links,
            bytes_sent: 0,
            bytes_recv: 0,
            wire_seconds: 0.0,
        }))
    }
}

/// Accumulates a mesh's wire counters plus the core's ghost tallies into
/// the [`HaloCounters`] wire shape.
pub fn halo_counters(
    mesh: Option<&dyn PeerMesh>,
    ghost_sent: u64,
    ghost_installed: u64,
) -> HaloCounters {
    let (bytes_sent, bytes_recv, wire_seconds) = mesh.map_or((0, 0, 0.0), |m| m.wire());
    HaloCounters {
        ghost_sent,
        ghost_installed,
        bytes_sent,
        bytes_recv,
        wire_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::Vec3;

    #[test]
    fn channel_mesh_routes_frames_between_ranks() {
        let mut set = channel_mesh_set(3, Codec::Binary);
        let mut m2 = set.pop().unwrap();
        let mut m1 = set.pop().unwrap();
        let mut m0 = set.pop().unwrap();
        m0.send_peers(vec![
            None,
            Some(Msg::PeerPos { pos: vec![Vec3::ONE] }),
            Some(Msg::PeerPos { pos: vec![] }),
        ])
        .unwrap();
        m1.send_peers(vec![Some(Msg::PeerFp { fp: vec![2.0] }), None, Some(Msg::PeerFp { fp: vec![] })])
            .unwrap();
        m2.send_peers(vec![
            Some(Msg::PeerPos { pos: vec![] }),
            Some(Msg::PeerPos { pos: vec![] }),
            None,
        ])
        .unwrap();
        let at0 = m0.recv_peers().unwrap();
        assert!(at0[0].is_none());
        assert_eq!(at0[1], Some(Msg::PeerFp { fp: vec![2.0] }));
        assert_eq!(at0[2], Some(Msg::PeerPos { pos: vec![] }));
        let at1 = m1.recv_peers().unwrap();
        assert_eq!(at1[0], Some(Msg::PeerPos { pos: vec![Vec3::ONE] }));
        let (sent, recvd, secs) = m0.wire();
        assert!(sent > 0 && recvd > 0 && secs >= 0.0);
    }

    #[test]
    fn empty_channel_is_a_phase_violation() {
        let mut set = channel_mesh_set(2, Codec::Json);
        let mut m0 = set.remove(0);
        assert!(m0.recv_peers().is_err());
    }

    #[test]
    fn socket_mesh_full_duplex_survives_large_frames() {
        // Two ranks exchange frames far larger than a socket buffer in the
        // same round; the pump must interleave reads and writes.
        let dir = std::env::temp_dir().join(format!("mdshard-mesh-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_string_lossy().into_owned();
        let codec = Codec::Binary;
        let big: Vec<Vec3> = (0..40_000).map(|i| Vec3::new(i as f64, 0.5, -1.0)).collect();
        let mk_provider = || SocketMeshProvider::new(codec);
        let mut p0 = mk_provider();
        let mut p1 = mk_provider();
        p0.listen(0, 2, &dir_str).unwrap();
        p1.listen(1, 2, &dir_str).unwrap();
        let d0 = dir_str.clone();
        let big0 = big.clone();
        let t = std::thread::spawn(move || {
            let _ = d0;
            let mut mesh = p0.connect(0, 2).unwrap();
            mesh.send_peers(vec![None, Some(Msg::PeerPos { pos: big0.clone() })])
                .unwrap();
            let got = mesh.recv_peers().unwrap();
            match &got[1] {
                Some(Msg::PeerPos { pos }) => assert_eq!(pos.len(), big0.len()),
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut mesh1 = p1.connect(1, 2).unwrap();
        mesh1
            .send_peers(vec![Some(Msg::PeerPos { pos: big.clone() }), None])
            .unwrap();
        let got = mesh1.recv_peers().unwrap();
        match &got[0] {
            Some(Msg::PeerPos { pos }) => assert_eq!(pos, &big),
            other => panic!("unexpected {other:?}"),
        }
        t.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
