//! The per-shard state machine: owned atoms, ghost halo, and the local
//! engine, driven entirely by protocol messages.
//!
//! One `ShardCore` is the *entire* worker logic. The virtual-rank backend
//! embeds it behind [`crate::world::MemTransport`]; the `mdshard-worker`
//! binary wraps it in a read-frame/handle/write-frame loop. Both therefore
//! execute the same code on the same wire bytes.
//!
//! # Determinism
//!
//! * Owned atoms are kept sorted by global id; migration preserves the
//!   order and arrivals are merge-sorted back in.
//! * Ghosts are appended grouped by source rank (ascending), each group in
//!   the owner's export order (ascending gid). The local system layout —
//!   and with it the neighbor CSR and every scatter sweep — is therefore a
//!   pure function of the owned state, and a fixed shard count replays
//!   bitwise.
//! * The integrator fragments replicate [`md_sim::integrate`]'s per-atom
//!   arithmetic exactly (same kick constant, same operation order), so a
//!   single serial shard is bitwise identical to the unsharded engine.

use crate::ckpt;
use crate::layout::ShardLayout;
use crate::msg::{GhostExport, InitSpec, Msg, PhaseStat, ShardAtom};
use md_geometry::{Axis, SimBox, Vec3};
use md_sim::units::FORCE2ACCEL;
use md_sim::{ForceEngine, Phase, PhaseTimers, PotentialChoice, System};
use sdc_core::StrategyKind;

/// A shard worker: uninitialized until it sees `Init`.
#[derive(Default)]
pub struct ShardCore {
    state: Option<CoreState>,
}

struct CoreState {
    rank: usize,
    n_ranks: usize,
    layout: ShardLayout,
    axis: Axis,
    sim_box: SimBox,
    mass: f64,
    dt: f64,
    skin: f64,
    reach: f64,
    potential: PotentialChoice,
    fused: bool,
    strategy: StrategyKind,
    threads: usize,
    step: u64,
    /// Global ids of owned atoms, ascending; parallel to the owned prefix
    /// of `system` (or to `pend_pos`/`pend_vel` between evict and install).
    gids: Vec<u64>,
    pend_pos: Vec<Vec3>,
    pend_vel: Vec<Vec3>,
    system: Option<System>,
    engine: Option<ForceEngine>,
    n_owned: usize,
    /// Owned positions at the last rebuild (displacement reference).
    ref_pos: Vec<Vec3>,
    /// Per target rank: owned indices exported as ghosts, ascending.
    exports: Vec<Vec<usize>>,
    /// Per source rank: number of ghosts installed from it.
    ghost_counts: Vec<usize>,
    /// Timers of engines retired by earlier rebuilds.
    acc_timers: PhaseTimers,
}

impl ShardCore {
    /// An empty core awaiting `Init`.
    pub fn new() -> ShardCore {
        ShardCore::default()
    }

    /// Processes one message; `Ok(None)` means shutdown was requested.
    /// Errors are protocol violations the transport wraps into a
    /// [`crate::ShardFault::Protocol`].
    pub fn handle(&mut self, msg: Msg) -> Result<Option<Msg>, String> {
        match msg {
            Msg::Init(spec) => {
                let state = CoreState::from_spec(*spec)?;
                let rank = state.rank as u64;
                self.state = Some(state);
                Ok(Some(Msg::Ready { rank }))
            }
            Msg::Shutdown => Ok(None),
            other => {
                let state = self
                    .state
                    .as_mut()
                    .ok_or_else(|| format!("message before init: {other:?}"))?;
                state.handle(other).map(Some)
            }
        }
    }
}

impl CoreState {
    fn from_spec(spec: InitSpec) -> Result<CoreState, String> {
        if spec.rank >= spec.n_ranks {
            return Err(format!("rank {} out of {}", spec.rank, spec.n_ranks));
        }
        let axis = if spec.axis < 3 {
            Axis::from_index(spec.axis)
        } else {
            return Err(format!("bad axis index {}", spec.axis));
        };
        let potential = crate::build_potential(&spec.potential, spec.tabulated)?;
        let strategy = StrategyKind::parse(&spec.strategy)
            .ok_or_else(|| format!("unknown strategy '{}'", spec.strategy))?;
        let sim_box = SimBox::periodic(Vec3::from_array(spec.box_lengths));
        let layout = ShardLayout::new(axis, sim_box.length(axis), spec.n_ranks);
        let reach = potential.cutoff() + spec.skin;
        let mut atoms = spec.atoms;
        atoms.sort_by_key(|a| a.gid);
        let n = spec.n_ranks;
        Ok(CoreState {
            rank: spec.rank,
            n_ranks: n,
            layout,
            axis,
            sim_box,
            mass: spec.mass,
            dt: spec.dt,
            skin: spec.skin,
            reach,
            potential,
            fused: spec.fused,
            strategy,
            threads: spec.threads,
            step: spec.step,
            gids: atoms.iter().map(|a| a.gid).collect(),
            pend_pos: atoms.iter().map(|a| a.pos).collect(),
            pend_vel: atoms.iter().map(|a| a.vel).collect(),
            system: None,
            engine: None,
            n_owned: 0,
            ref_pos: Vec::new(),
            exports: vec![Vec::new(); n],
            ghost_counts: vec![0; n],
            acc_timers: PhaseTimers::new(),
        })
    }

    fn handle(&mut self, msg: Msg) -> Result<Msg, String> {
        match msg {
            Msg::Begin => self.begin(),
            Msg::Migrate => self.migrate(),
            Msg::MigIn { atoms } => self.mig_in(atoms),
            Msg::GhostIn { from } => self.ghost_in(from),
            Msg::PosTick => self.pos_tick(),
            Msg::PosIn { from } => self.pos_in(from),
            Msg::FpIn { from, kick } => self.fp_in(from, kick),
            Msg::Save { dir } => self.save(&dir),
            Msg::Gather => Ok(Msg::State {
                atoms: self.owned_atoms(),
            }),
            Msg::Stats => Ok(self.stats()),
            other => Err(format!("unexpected request {other:?}")),
        }
    }

    /// First half-kick + drift + wrap of the owned atoms, then the max
    /// squared displacement since the last rebuild (driver ORs the rebuild
    /// decision across shards). Matches `velocity_verlet`'s arithmetic.
    fn begin(&mut self) -> Result<Msg, String> {
        let n = self.n_owned;
        let kick = 0.5 * self.dt * FORCE2ACCEL / self.mass;
        let system = self.system.as_mut().ok_or("begin before forces ready")?;
        {
            let (vel, force) = system.kick_buffers();
            for (v, f) in vel[..n].iter_mut().zip(&force[..n]) {
                *v += *f * kick;
            }
        }
        {
            let dt = self.dt;
            let (pos, vel) = system.drift_buffers();
            for (p, v) in pos[..n].iter_mut().zip(&vel[..n]) {
                *p += *v * dt;
            }
        }
        let positions = system.positions_mut();
        for p in positions[..n].iter_mut() {
            *p = self.sim_box.wrap(*p);
        }
        let max_sq = positions[..n]
            .iter()
            .zip(&self.ref_pos)
            .map(|(&p, &q)| self.sim_box.distance_sq(p, q))
            .fold(0.0, f64::max);
        Ok(Msg::DispOut { max_sq })
    }

    /// Moves the owned state out of the system (dropping ghosts and the
    /// engine) back into the pending arrays, banking the engine's timers.
    fn take_owned(&mut self) {
        if let Some(engine) = self.engine.take() {
            self.acc_timers.merge(engine.timers());
        }
        if let Some(system) = self.system.take() {
            let n = self.n_owned;
            self.pend_pos = system.positions()[..n].to_vec();
            self.pend_vel = system.velocities()[..n].to_vec();
        }
        self.n_owned = 0;
    }

    fn migrate(&mut self) -> Result<Msg, String> {
        if self.system.is_none() {
            return Err("migrate before install".to_string());
        }
        self.take_owned();
        let axis = self.axis.index();
        let mut to: Vec<Vec<ShardAtom>> = vec![Vec::new(); self.n_ranks];
        let mut keep_g = Vec::with_capacity(self.gids.len());
        let mut keep_p = Vec::with_capacity(self.gids.len());
        let mut keep_v = Vec::with_capacity(self.gids.len());
        for i in 0..self.gids.len() {
            let dest = self.layout.rank_of(self.pend_pos[i][axis]);
            if dest == self.rank {
                keep_g.push(self.gids[i]);
                keep_p.push(self.pend_pos[i]);
                keep_v.push(self.pend_vel[i]);
            } else {
                to[dest].push(ShardAtom {
                    gid: self.gids[i],
                    pos: self.pend_pos[i],
                    vel: self.pend_vel[i],
                });
            }
        }
        self.gids = keep_g;
        self.pend_pos = keep_p;
        self.pend_vel = keep_v;
        Ok(Msg::MigOut { to })
    }

    fn mig_in(&mut self, atoms: Vec<ShardAtom>) -> Result<Msg, String> {
        // Tolerate a still-installed system so the initial force refresh
        // (and a re-refresh after resume) can reuse this path directly.
        if self.system.is_some() {
            self.take_owned();
        }
        for a in atoms {
            self.gids.push(a.gid);
            self.pend_pos.push(a.pos);
            self.pend_vel.push(a.vel);
        }
        // Re-establish the canonical ascending-gid order.
        let mut order: Vec<usize> = (0..self.gids.len()).collect();
        order.sort_by_key(|&i| self.gids[i]);
        self.gids = order.iter().map(|&i| self.gids[i]).collect();
        self.pend_pos = order.iter().map(|&i| self.pend_pos[i]).collect();
        self.pend_vel = order.iter().map(|&i| self.pend_vel[i]).collect();

        let axis = self.axis.index();
        let mut to = Vec::with_capacity(self.n_ranks);
        for t in 0..self.n_ranks {
            let mut export = GhostExport::default();
            let mut idx = Vec::new();
            if t != self.rank {
                for (i, &p) in self.pend_pos.iter().enumerate() {
                    if self.layout.axis_dist(p[axis], t) <= self.reach {
                        idx.push(i);
                        export.gids.push(self.gids[i]);
                        export.pos.push(p);
                    }
                }
            }
            self.exports[t] = idx;
            to.push(export);
        }
        Ok(Msg::GhostOut { to })
    }

    fn ghost_in(&mut self, from: Vec<GhostExport>) -> Result<Msg, String> {
        if from.len() != self.n_ranks {
            return Err("ghost_in rank count mismatch".to_string());
        }
        let n_owned = self.pend_pos.len();
        let mut positions = std::mem::take(&mut self.pend_pos);
        for (s, batch) in from.iter().enumerate() {
            self.ghost_counts[s] = if s == self.rank { 0 } else { batch.pos.len() };
            if s != self.rank {
                positions.extend_from_slice(&batch.pos);
            }
        }
        let mut system = System::new(self.sim_box, positions, self.mass);
        system.velocities_mut()[..n_owned].copy_from_slice(&self.pend_vel);
        self.pend_vel.clear();
        self.n_owned = n_owned;
        self.ref_pos = system.positions()[..n_owned].to_vec();
        // The halo path rebuilds by constructing a fresh engine, so the
        // neighbor-list cost is banked here rather than by maybe_rebuild.
        let rebuild_start = std::time::Instant::now();
        let mut engine = ForceEngine::with_fallback(
            &system,
            self.potential.clone(),
            self.strategy,
            self.threads,
            self.skin,
        )
        .map_err(|e| format!("engine rebuild failed: {e}"))?;
        self.acc_timers
            .add(Phase::Neighbor, rebuild_start.elapsed());
        engine.set_fused(self.fused);
        engine.compute_density_phase(&mut system);
        self.system = Some(system);
        self.engine = Some(engine);
        Ok(self.fp_out())
    }

    fn pos_tick(&mut self) -> Result<Msg, String> {
        let system = self.system.as_ref().ok_or("pos_tick before install")?;
        let pos = system.positions();
        let to = self
            .exports
            .iter()
            .map(|idx| idx.iter().map(|&i| pos[i]).collect())
            .collect();
        Ok(Msg::PosOut { to })
    }

    fn pos_in(&mut self, from: Vec<Vec<Vec3>>) -> Result<Msg, String> {
        if from.len() != self.n_ranks {
            return Err("pos_in rank count mismatch".to_string());
        }
        {
            let system = self.system.as_mut().ok_or("pos_in before install")?;
            let positions = system.positions_mut();
            let mut base = self.n_owned;
            for (s, batch) in from.iter().enumerate() {
                if s == self.rank {
                    continue;
                }
                if batch.len() != self.ghost_counts[s] {
                    return Err(format!(
                        "pos_in ghost count mismatch from rank {s}: got {}, expected {}",
                        batch.len(),
                        self.ghost_counts[s]
                    ));
                }
                positions[base..base + batch.len()].copy_from_slice(batch);
                base += batch.len();
            }
        }
        let (system, engine) = (self.system.as_mut().unwrap(), self.engine.as_mut().unwrap());
        engine.compute_density_phase(system);
        Ok(self.fp_out())
    }

    /// Embedding derivatives of this shard's exported atoms, in export
    /// order, read back out of the just-finished density phase.
    fn fp_out(&self) -> Msg {
        let fp = self.system.as_ref().expect("density before fp_out").fp();
        let to = self
            .exports
            .iter()
            .map(|idx| idx.iter().map(|&i| fp[i]).collect())
            .collect();
        Msg::FpOut { to }
    }

    fn fp_in(&mut self, from: Vec<Vec<f64>>, kick: bool) -> Result<Msg, String> {
        if from.len() != self.n_ranks {
            return Err("fp_in rank count mismatch".to_string());
        }
        {
            let system = self.system.as_mut().ok_or("fp_in before install")?;
            let fp = system.fp_mut();
            let mut base = self.n_owned;
            for (s, batch) in from.iter().enumerate() {
                if s == self.rank {
                    continue;
                }
                if batch.len() != self.ghost_counts[s] {
                    return Err(format!(
                        "fp_in ghost count mismatch from rank {s}: got {}, expected {}",
                        batch.len(),
                        self.ghost_counts[s]
                    ));
                }
                fp[base..base + batch.len()].copy_from_slice(batch);
                base += batch.len();
            }
        }
        let system = self.system.as_mut().unwrap();
        self.engine.as_mut().unwrap().compute_force_phase(system);
        if kick {
            let n = self.n_owned;
            let k = 0.5 * self.dt * FORCE2ACCEL / self.mass;
            let (vel, force) = system.kick_buffers();
            for (v, f) in vel[..n].iter_mut().zip(&force[..n]) {
                *v += *f * k;
            }
            self.step += 1;
        }
        Ok(Msg::StepDone { step: self.step })
    }

    fn owned_atoms(&self) -> Vec<ShardAtom> {
        let (pos, vel): (&[Vec3], &[Vec3]) = match &self.system {
            Some(s) => (&s.positions()[..self.n_owned], &s.velocities()[..self.n_owned]),
            None => (&self.pend_pos, &self.pend_vel),
        };
        self.gids
            .iter()
            .zip(pos.iter().zip(vel))
            .map(|(&gid, (&pos, &vel))| ShardAtom { gid, pos, vel })
            .collect()
    }

    fn save(&mut self, dir: &str) -> Result<Msg, String> {
        let path = ckpt::save_shard(
            std::path::Path::new(dir),
            self.rank,
            self.n_ranks,
            self.step,
            &self.owned_atoms(),
        )
        .map_err(|e| format!("checkpoint save failed: {e}"))?;
        Ok(Msg::Saved {
            path: path.to_string_lossy().into_owned(),
        })
    }

    fn stats(&self) -> Msg {
        let mut merged = PhaseTimers::new();
        merged.merge(&self.acc_timers);
        if let Some(engine) = &self.engine {
            merged.merge(engine.timers());
        }
        let phases = [
            (Phase::Density, "density"),
            (Phase::Embedding, "embedding"),
            (Phase::Force, "force"),
            (Phase::Neighbor, "neighbor"),
            (Phase::Other, "other"),
        ]
        .into_iter()
        .map(|(phase, name)| PhaseStat {
            name: name.to_string(),
            seconds: merged.elapsed(phase).as_secs_f64(),
            count: merged.count(phase),
        })
        .collect();
        Msg::StatsOut { phases }
    }
}

/// Maps a wire phase name back to the engine's [`Phase`].
pub fn phase_by_name(name: &str) -> Option<Phase> {
    Some(match name {
        "density" => Phase::Density,
        "embedding" => Phase::Embedding,
        "force" => Phase::Force,
        "neighbor" => Phase::Neighbor,
        "other" => Phase::Other,
        _ => return None,
    })
}
