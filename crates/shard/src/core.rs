//! The per-shard state machine: owned atoms, ghost halo, and the local
//! engine, driven by control messages and exchanging halos directly with
//! its peers.
//!
//! One `ShardCore` is the *entire* worker logic. The virtual-rank backend
//! embeds it behind [`crate::world::MemTransport`] (with a
//! [`crate::mesh::ChannelMesh`] for peer traffic); the `mdshard-worker`
//! binary wraps it in a read-frame/handle/write-frame loop (with a
//! [`crate::mesh::SocketMesh`]). Both therefore execute the same code on
//! the same wire bytes.
//!
//! # Halo rounds
//!
//! Ghost traffic never touches the driver. A step's force evaluation is
//! three control rounds, each of which triggers peer I/O here:
//!
//! 1. `MigIn` (rebuild leg) or `HaloPos` (plain leg): push this shard's
//!    ghost exports — full `PeerGhosts` after a repartition, bare
//!    `PeerPos` refreshes otherwise — to every peer. The frames ride the
//!    kernel buffers while peers are still finishing the same round.
//! 2. `HaloDensity`: pull the peers' exports in, install them, run the
//!    density phase (EAM phases 1–2), and immediately push the exported
//!    atoms' `F'(ρ)` as `PeerFp` frames — peers still inside their own
//!    density pass receive them asynchronously, which is the overlap the
//!    engine's density/force split makes possible.
//! 3. `HaloForce`: pull the peers' `PeerFp` in, run the force phase, and
//!    close the step with the second half-kick.
//!
//! # Determinism
//!
//! * Owned atoms are kept sorted by global id; migration preserves the
//!   order and arrivals are merge-sorted back in.
//! * Ghosts are appended grouped by source rank (ascending), each group in
//!   the owner's export order (ascending gid). The local system layout —
//!   and with it the neighbor CSR and every scatter sweep — is therefore a
//!   pure function of the owned state, and a fixed shard count replays
//!   bitwise.
//! * The integrator fragments replicate [`md_sim::integrate`]'s per-atom
//!   arithmetic exactly (same kick constant, same operation order), so a
//!   single serial shard is bitwise identical to the unsharded engine.

use crate::ckpt;
use crate::layout::ShardLayout;
use crate::mesh::{halo_counters, MeshProvider, PeerMesh};
use crate::msg::{GhostExport, InitSpec, Msg, PhaseStat, ShardAtom};
use md_geometry::{Axis, SimBox, Vec3};
use md_sim::units::FORCE2ACCEL;
use md_sim::{ForceEngine, Phase, PhaseTimers, PotentialChoice, System};
use sdc_core::StrategyKind;

/// A shard worker: uninitialized until it sees `Init`, meshless until the
/// driver brokers the peer links.
pub struct ShardCore {
    provider: Box<dyn MeshProvider>,
    state: Option<CoreState>,
}

struct CoreState {
    rank: usize,
    n_ranks: usize,
    layout: ShardLayout,
    axis: Axis,
    sim_box: SimBox,
    mass: f64,
    dt: f64,
    skin: f64,
    reach: f64,
    potential: PotentialChoice,
    fused: bool,
    simd: bool,
    strategy: StrategyKind,
    threads: usize,
    step: u64,
    /// Global ids of owned atoms, ascending; parallel to the owned prefix
    /// of `system` (or to `pend_pos`/`pend_vel` between evict and install).
    gids: Vec<u64>,
    pend_pos: Vec<Vec3>,
    pend_vel: Vec<Vec3>,
    system: Option<System>,
    engine: Option<ForceEngine>,
    n_owned: usize,
    /// Owned positions at the last rebuild (displacement reference).
    ref_pos: Vec<Vec3>,
    /// Per target rank: owned indices exported as ghosts, ascending.
    exports: Vec<Vec<usize>>,
    /// Per source rank: number of ghosts installed from it.
    ghost_counts: Vec<usize>,
    /// The peer mesh, once the driver has brokered it.
    mesh: Option<Box<dyn PeerMesh>>,
    /// The next `HaloDensity` installs full `PeerGhosts` (export sets just
    /// changed) rather than `PeerPos` refreshes.
    fresh_ghosts: bool,
    /// Ghost position records sent to peers (cumulative).
    ghost_sent: u64,
    /// Ghost position records installed from peers (cumulative).
    ghost_installed: u64,
    /// Timers of engines retired by earlier rebuilds.
    acc_timers: PhaseTimers,
}

impl ShardCore {
    /// An empty core awaiting `Init`; `provider` supplies the peer mesh
    /// when the driver brokers it.
    pub fn new(provider: Box<dyn MeshProvider>) -> ShardCore {
        ShardCore {
            provider,
            state: None,
        }
    }

    /// Processes one message; `Ok(None)` means shutdown was requested.
    /// Errors are protocol violations the transport wraps into a
    /// [`crate::ShardFault::Protocol`].
    pub fn handle(&mut self, msg: Msg) -> Result<Option<Msg>, String> {
        match msg {
            Msg::Init(spec) => {
                let state = CoreState::from_spec(*spec)?;
                let rank = state.rank as u64;
                self.state = Some(state);
                Ok(Some(Msg::Ready { rank }))
            }
            Msg::Shutdown => Ok(None),
            Msg::PeerListen { dir } => {
                let state = self.state.as_ref().ok_or("peer_listen before init")?;
                self.provider.listen(state.rank, state.n_ranks, &dir)?;
                Ok(Some(Msg::PeerBound))
            }
            Msg::PeerConnect => {
                let state = self.state.as_mut().ok_or("peer_connect before init")?;
                state.mesh = Some(self.provider.connect(state.rank, state.n_ranks)?);
                Ok(Some(Msg::PeerReady))
            }
            other => {
                let state = self
                    .state
                    .as_mut()
                    .ok_or_else(|| format!("message before init: {other:?}"))?;
                state.handle(other).map(Some)
            }
        }
    }
}

impl CoreState {
    fn from_spec(spec: InitSpec) -> Result<CoreState, String> {
        if spec.rank >= spec.n_ranks {
            return Err(format!("rank {} out of {}", spec.rank, spec.n_ranks));
        }
        let axis = if spec.axis < 3 {
            Axis::from_index(spec.axis)
        } else {
            return Err(format!("bad axis index {}", spec.axis));
        };
        let potential = crate::build_potential(&spec.potential, spec.tabulated)?;
        let strategy = StrategyKind::parse(&spec.strategy)
            .ok_or_else(|| format!("unknown strategy '{}'", spec.strategy))?;
        let sim_box = SimBox::periodic(Vec3::from_array(spec.box_lengths));
        let layout = ShardLayout::new(axis, sim_box.length(axis), spec.n_ranks);
        let reach = potential.cutoff() + spec.skin;
        let mut atoms = spec.atoms;
        atoms.sort_by_key(|a| a.gid);
        let n = spec.n_ranks;
        Ok(CoreState {
            rank: spec.rank,
            n_ranks: n,
            layout,
            axis,
            sim_box,
            mass: spec.mass,
            dt: spec.dt,
            skin: spec.skin,
            reach,
            potential,
            fused: spec.fused,
            simd: spec.simd,
            strategy,
            threads: spec.threads,
            step: spec.step,
            gids: atoms.iter().map(|a| a.gid).collect(),
            pend_pos: atoms.iter().map(|a| a.pos).collect(),
            pend_vel: atoms.iter().map(|a| a.vel).collect(),
            system: None,
            engine: None,
            n_owned: 0,
            ref_pos: Vec::new(),
            exports: vec![Vec::new(); n],
            ghost_counts: vec![0; n],
            mesh: None,
            fresh_ghosts: false,
            ghost_sent: 0,
            ghost_installed: 0,
            acc_timers: PhaseTimers::new(),
        })
    }

    fn handle(&mut self, msg: Msg) -> Result<Msg, String> {
        match msg {
            Msg::Begin => self.begin(),
            Msg::Migrate => self.migrate(),
            Msg::MigIn { atoms } => self.mig_in(atoms),
            Msg::HaloPos => self.halo_pos(),
            Msg::HaloDensity => self.halo_density(),
            Msg::HaloForce { kick } => self.halo_force(kick),
            Msg::Save { dir } => self.save(&dir),
            Msg::Gather => Ok(Msg::State {
                atoms: self.owned_atoms(),
            }),
            Msg::Stats => Ok(self.stats()),
            Msg::Counters => Ok(Msg::CountersOut {
                counters: halo_counters(
                    self.mesh.as_deref(),
                    self.ghost_sent,
                    self.ghost_installed,
                ),
            }),
            other => Err(format!("unexpected request {other:?}")),
        }
    }

    fn mesh(&mut self) -> Result<&mut Box<dyn PeerMesh>, String> {
        self.mesh.as_mut().ok_or_else(|| "peer mesh not connected".to_string())
    }

    /// First half-kick + drift + wrap of the owned atoms, then the max
    /// squared displacement since the last rebuild (driver ORs the rebuild
    /// decision across shards). Matches `velocity_verlet`'s arithmetic.
    fn begin(&mut self) -> Result<Msg, String> {
        let n = self.n_owned;
        let kick = 0.5 * self.dt * FORCE2ACCEL / self.mass;
        let system = self.system.as_mut().ok_or("begin before forces ready")?;
        {
            let (vel, force) = system.kick_buffers();
            for (v, f) in vel[..n].iter_mut().zip(&force[..n]) {
                *v += *f * kick;
            }
        }
        {
            let dt = self.dt;
            let (pos, vel) = system.drift_buffers();
            for (p, v) in pos[..n].iter_mut().zip(&vel[..n]) {
                *p += *v * dt;
            }
        }
        let positions = system.positions_mut();
        for p in positions[..n].iter_mut() {
            *p = self.sim_box.wrap(*p);
        }
        let max_sq = positions[..n]
            .iter()
            .zip(&self.ref_pos)
            .map(|(&p, &q)| self.sim_box.distance_sq(p, q))
            .fold(0.0, f64::max);
        Ok(Msg::DispOut { max_sq })
    }

    /// Moves the owned state out of the system (dropping ghosts and the
    /// engine) back into the pending arrays, banking the engine's timers.
    fn take_owned(&mut self) {
        if let Some(engine) = self.engine.take() {
            self.acc_timers.merge(engine.timers());
        }
        if let Some(system) = self.system.take() {
            let n = self.n_owned;
            self.pend_pos = system.positions()[..n].to_vec();
            self.pend_vel = system.velocities()[..n].to_vec();
        }
        self.n_owned = 0;
    }

    fn migrate(&mut self) -> Result<Msg, String> {
        if self.system.is_none() {
            return Err("migrate before install".to_string());
        }
        self.take_owned();
        let axis = self.axis.index();
        let mut to: Vec<Vec<ShardAtom>> = vec![Vec::new(); self.n_ranks];
        let mut keep_g = Vec::with_capacity(self.gids.len());
        let mut keep_p = Vec::with_capacity(self.gids.len());
        let mut keep_v = Vec::with_capacity(self.gids.len());
        for i in 0..self.gids.len() {
            let dest = self.layout.rank_of(self.pend_pos[i][axis]);
            if dest == self.rank {
                keep_g.push(self.gids[i]);
                keep_p.push(self.pend_pos[i]);
                keep_v.push(self.pend_vel[i]);
            } else {
                to[dest].push(ShardAtom {
                    gid: self.gids[i],
                    pos: self.pend_pos[i],
                    vel: self.pend_vel[i],
                });
            }
        }
        self.gids = keep_g;
        self.pend_pos = keep_p;
        self.pend_vel = keep_v;
        Ok(Msg::MigOut { to })
    }

    /// Rebuild-leg halo send: adopt migrated arrivals, re-select the ghost
    /// export sets, and push full `PeerGhosts` batches to every peer.
    fn mig_in(&mut self, atoms: Vec<ShardAtom>) -> Result<Msg, String> {
        // Tolerate a still-installed system so the initial force refresh
        // (and a re-refresh after resume) can reuse this path directly.
        if self.system.is_some() {
            self.take_owned();
        }
        for a in atoms {
            self.gids.push(a.gid);
            self.pend_pos.push(a.pos);
            self.pend_vel.push(a.vel);
        }
        // Re-establish the canonical ascending-gid order.
        let mut order: Vec<usize> = (0..self.gids.len()).collect();
        order.sort_by_key(|&i| self.gids[i]);
        self.gids = order.iter().map(|&i| self.gids[i]).collect();
        self.pend_pos = order.iter().map(|&i| self.pend_pos[i]).collect();
        self.pend_vel = order.iter().map(|&i| self.pend_vel[i]).collect();

        let axis = self.axis.index();
        let mut out: Vec<Option<Msg>> = Vec::with_capacity(self.n_ranks);
        for t in 0..self.n_ranks {
            if t == self.rank {
                self.exports[t] = Vec::new();
                out.push(None);
                continue;
            }
            let mut export = GhostExport::default();
            let mut idx = Vec::new();
            for (i, &p) in self.pend_pos.iter().enumerate() {
                if self.layout.axis_dist(p[axis], t) <= self.reach {
                    idx.push(i);
                    export.gids.push(self.gids[i]);
                    export.pos.push(p);
                }
            }
            self.exports[t] = idx;
            self.ghost_sent += export.gids.len() as u64;
            out.push(Some(Msg::PeerGhosts { export }));
        }
        if self.n_ranks > 1 {
            self.mesh()?.send_peers(out)?;
        }
        self.fresh_ghosts = true;
        Ok(Msg::HaloSent)
    }

    /// Plain-leg halo send: current positions of the standing export sets
    /// as bare `PeerPos` frames.
    fn halo_pos(&mut self) -> Result<Msg, String> {
        let out = {
            let system = self.system.as_ref().ok_or("halo_pos before install")?;
            let pos = system.positions();
            let mut out: Vec<Option<Msg>> = Vec::with_capacity(self.n_ranks);
            for (t, idx) in self.exports.iter().enumerate() {
                if t == self.rank {
                    out.push(None);
                } else {
                    out.push(Some(Msg::PeerPos {
                        pos: idx.iter().map(|&i| pos[i]).collect(),
                    }));
                }
            }
            out
        };
        for m in out.iter().flatten() {
            if let Msg::PeerPos { pos } = m {
                self.ghost_sent += pos.len() as u64;
            }
        }
        if self.n_ranks > 1 {
            self.mesh()?.send_peers(out)?;
        }
        Ok(Msg::HaloSent)
    }

    /// Pulls the peers' halo exports in, installs them, runs the density
    /// phase, and pushes the exported atoms' `F'(ρ)` back out.
    fn halo_density(&mut self) -> Result<Msg, String> {
        let from = if self.n_ranks > 1 {
            self.mesh()?.recv_peers()?
        } else {
            vec![None]
        };
        if from.len() != self.n_ranks {
            return Err("halo_density rank count mismatch".to_string());
        }
        if self.fresh_ghosts {
            self.install_fresh_ghosts(from)?;
        } else {
            self.refresh_ghost_positions(from)?;
        }
        let (system, engine) = match (self.system.as_mut(), self.engine.as_mut()) {
            (Some(s), Some(e)) => (s, e),
            _ => return Err("halo_density before install".to_string()),
        };
        engine.compute_density_phase(system);
        // Push F'(ρ) of our exports right away: peers still in their
        // density pass absorb the frames from their kernel buffers later.
        let fp = system.fp();
        let mut out: Vec<Option<Msg>> = Vec::with_capacity(self.n_ranks);
        for (t, idx) in self.exports.iter().enumerate() {
            if t == self.rank {
                out.push(None);
            } else {
                out.push(Some(Msg::PeerFp {
                    fp: idx.iter().map(|&i| fp[i]).collect(),
                }));
            }
        }
        if self.n_ranks > 1 {
            self.mesh()?.send_peers(out)?;
        }
        Ok(Msg::DensityDone)
    }

    /// Installs full ghost batches after a repartition and rebuilds the
    /// local system + engine around the new halo.
    fn install_fresh_ghosts(&mut self, from: Vec<Option<Msg>>) -> Result<(), String> {
        let n_owned = self.pend_pos.len();
        let mut positions = std::mem::take(&mut self.pend_pos);
        for (s, slot) in from.into_iter().enumerate() {
            if s == self.rank {
                self.ghost_counts[s] = 0;
                continue;
            }
            let export = match slot {
                Some(Msg::PeerGhosts { export }) => export,
                other => return Err(format!("expected peer_ghosts from rank {s}, got {other:?}")),
            };
            self.ghost_counts[s] = export.pos.len();
            self.ghost_installed += export.pos.len() as u64;
            positions.extend_from_slice(&export.pos);
        }
        let mut system = System::new(self.sim_box, positions, self.mass);
        system.velocities_mut()[..n_owned].copy_from_slice(&self.pend_vel);
        self.pend_vel.clear();
        self.n_owned = n_owned;
        self.ref_pos = system.positions()[..n_owned].to_vec();
        // The halo path rebuilds by constructing a fresh engine, so the
        // neighbor-list cost is banked here rather than by maybe_rebuild.
        let rebuild_start = std::time::Instant::now();
        let mut engine = ForceEngine::with_fallback(
            &system,
            self.potential.clone(),
            self.strategy,
            self.threads,
            self.skin,
        )
        .map_err(|e| format!("engine rebuild failed: {e}"))?;
        self.acc_timers
            .add(Phase::Neighbor, rebuild_start.elapsed());
        engine.set_fused(self.fused);
        engine.set_simd(self.simd);
        self.system = Some(system);
        self.engine = Some(engine);
        self.fresh_ghosts = false;
        Ok(())
    }

    /// Overwrites the standing ghost slots with the peers' refreshed
    /// positions (plain leg: export sets unchanged since the last rebuild).
    fn refresh_ghost_positions(&mut self, from: Vec<Option<Msg>>) -> Result<(), String> {
        let system = self.system.as_mut().ok_or("halo_density before install")?;
        let positions = system.positions_mut();
        let mut base = self.n_owned;
        for (s, slot) in from.into_iter().enumerate() {
            if s == self.rank {
                continue;
            }
            let batch = match slot {
                Some(Msg::PeerPos { pos }) => pos,
                other => return Err(format!("expected peer_pos from rank {s}, got {other:?}")),
            };
            if batch.len() != self.ghost_counts[s] {
                return Err(format!(
                    "ghost count mismatch from rank {s}: got {}, expected {}",
                    batch.len(),
                    self.ghost_counts[s]
                ));
            }
            positions[base..base + batch.len()].copy_from_slice(&batch);
            self.ghost_installed += batch.len() as u64;
            base += batch.len();
        }
        Ok(())
    }

    /// Pulls the peers' `F'(ρ)` in, runs the force phase, and (on a real
    /// step) closes with the second half-kick.
    fn halo_force(&mut self, kick: bool) -> Result<Msg, String> {
        let from = if self.n_ranks > 1 {
            self.mesh()?.recv_peers()?
        } else {
            vec![None]
        };
        if from.len() != self.n_ranks {
            return Err("halo_force rank count mismatch".to_string());
        }
        {
            let system = self.system.as_mut().ok_or("halo_force before install")?;
            let fp = system.fp_mut();
            let mut base = self.n_owned;
            for (s, slot) in from.into_iter().enumerate() {
                if s == self.rank {
                    continue;
                }
                let batch = match slot {
                    Some(Msg::PeerFp { fp }) => fp,
                    other => return Err(format!("expected peer_fp from rank {s}, got {other:?}")),
                };
                if batch.len() != self.ghost_counts[s] {
                    return Err(format!(
                        "fp count mismatch from rank {s}: got {}, expected {}",
                        batch.len(),
                        self.ghost_counts[s]
                    ));
                }
                fp[base..base + batch.len()].copy_from_slice(&batch);
                base += batch.len();
            }
        }
        let system = self.system.as_mut().unwrap();
        self.engine.as_mut().unwrap().compute_force_phase(system);
        if kick {
            let n = self.n_owned;
            let k = 0.5 * self.dt * FORCE2ACCEL / self.mass;
            let (vel, force) = system.kick_buffers();
            for (v, f) in vel[..n].iter_mut().zip(&force[..n]) {
                *v += *f * k;
            }
            self.step += 1;
        }
        Ok(Msg::StepDone { step: self.step })
    }

    fn owned_atoms(&self) -> Vec<ShardAtom> {
        let (pos, vel): (&[Vec3], &[Vec3]) = match &self.system {
            Some(s) => (&s.positions()[..self.n_owned], &s.velocities()[..self.n_owned]),
            None => (&self.pend_pos, &self.pend_vel),
        };
        self.gids
            .iter()
            .zip(pos.iter().zip(vel))
            .map(|(&gid, (&pos, &vel))| ShardAtom { gid, pos, vel })
            .collect()
    }

    fn save(&mut self, dir: &str) -> Result<Msg, String> {
        let path = ckpt::save_shard(
            std::path::Path::new(dir),
            self.rank,
            self.n_ranks,
            self.step,
            &self.owned_atoms(),
        )
        .map_err(|e| format!("checkpoint save failed: {e}"))?;
        Ok(Msg::Saved {
            path: path.to_string_lossy().into_owned(),
        })
    }

    fn stats(&self) -> Msg {
        let mut merged = PhaseTimers::new();
        merged.merge(&self.acc_timers);
        if let Some(engine) = &self.engine {
            merged.merge(engine.timers());
        }
        let phases = [
            (Phase::Density, "density"),
            (Phase::Embedding, "embedding"),
            (Phase::Force, "force"),
            (Phase::Neighbor, "neighbor"),
            (Phase::Other, "other"),
        ]
        .into_iter()
        .map(|(phase, name)| PhaseStat {
            name: name.to_string(),
            seconds: merged.elapsed(phase).as_secs_f64(),
            count: merged.count(phase),
        })
        .collect();
        Msg::StatsOut { phases }
    }
}

/// Maps a wire phase name back to the engine's [`Phase`].
pub fn phase_by_name(name: &str) -> Option<Phase> {
    Some(match name {
        "density" => Phase::Density,
        "embedding" => Phase::Embedding,
        "force" => Phase::Force,
        "neighbor" => Phase::Neighbor,
        "other" => Phase::Other,
        _ => return None,
    })
}
