//! Length-prefixed, checksummed wire frames around compact JSON.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! [u32 payload length][payload: compact JSON, UTF-8][u64 fnv1a64(payload)]
//! ```
//!
//! The payload rendering reuses [`md_serve::wire::compact`] and the
//! checksum reuses [`md_sim::fnv1a64`] — the same journal-style framing the
//! job server trusts for crash recovery. Every `f64` that must survive the
//! trip bit-exactly (positions, velocities, embedding derivatives) is
//! carried as a 16-digit hex encoding of its IEEE-754 bit pattern
//! ([`f64_to_hex`] / [`hex_to_f64`]), so NaN payloads and signed zeros
//! round-trip and a sharded trajectory is reproducible to the last ulp.
//!
//! Decoding is total: torn, truncated, oversized or corrupted frames come
//! back as a typed [`CodecError`], never a panic.

use md_sim::metrics::JsonValue;
use md_sim::fnv1a64;
use std::io::{Read, Write};

/// Upper bound on a payload, to reject absurd length prefixes before
/// allocating (a torn frame can make the length field garbage).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A wire decoding failure.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer/stream ended inside a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// The checksum footer does not match the payload bytes.
    BadChecksum {
        /// Checksum computed over the received payload.
        expected: u64,
        /// Checksum carried in the frame footer.
        found: u64,
    },
    /// The payload is not valid compact JSON (or not UTF-8).
    BadJson(String),
    /// The JSON is well-formed but a message field is missing or malformed.
    BadField(String),
    /// An underlying I/O error while reading or writing a stream.
    Io(std::io::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::Oversize(len) => write!(f, "frame length {len} exceeds {MAX_FRAME}"),
            CodecError::BadChecksum { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:016x}, frame carries {found:016x}"
            ),
            CodecError::BadJson(e) => write!(f, "bad JSON payload: {e}"),
            CodecError::BadField(e) => write!(f, "bad message field: {e}"),
            CodecError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

/// Encodes one value as a complete frame.
pub fn encode_frame(payload: &JsonValue) -> Vec<u8> {
    let body = md_serve::wire::compact(payload).into_bytes();
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let sum = fnv1a64(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decodes one frame from the front of `buf`, returning the payload and
/// the number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(JsonValue, usize), CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(CodecError::Oversize(len));
    }
    let need = 4 + len as usize + 8;
    if buf.len() < need {
        return Err(CodecError::Truncated);
    }
    let body = &buf[4..4 + len as usize];
    let found = u64::from_le_bytes(buf[4 + len as usize..need].try_into().unwrap());
    check_and_parse(body, found).map(|v| (v, need))
}

fn check_and_parse(body: &[u8], found: u64) -> Result<JsonValue, CodecError> {
    let expected = fnv1a64(body);
    if expected != found {
        return Err(CodecError::BadChecksum { expected, found });
    }
    let text = std::str::from_utf8(body)
        .map_err(|_| CodecError::BadJson("payload is not UTF-8".to_string()))?;
    JsonValue::parse(text).map_err(|e| CodecError::BadJson(e.to_string()))
}

/// Reads one frame from a blocking stream. A stream that ends mid-frame
/// (including before the length prefix) reports [`CodecError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<JsonValue, CodecError> {
    let mut head = [0u8; 4];
    read_exact_or_truncated(r, &mut head)?;
    let len = u32::from_le_bytes(head);
    if len > MAX_FRAME {
        return Err(CodecError::Oversize(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut body)?;
    let mut foot = [0u8; 8];
    read_exact_or_truncated(r, &mut foot)?;
    check_and_parse(&body, u64::from_le_bytes(foot))
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    })
}

/// Writes one frame to a stream and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &JsonValue) -> Result<(), CodecError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Renders an `f64` as the 16 hex digits of its IEEE-754 bit pattern.
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses a bit pattern produced by [`f64_to_hex`].
pub fn hex_to_f64(s: &str) -> Result<f64, CodecError> {
    if s.len() != 16 {
        return Err(CodecError::BadField(format!(
            "f64 bit pattern must be 16 hex digits, got '{s}'"
        )));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CodecError::BadField(format!("bad f64 bit pattern '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = JsonValue::obj(vec![
            ("t", JsonValue::str("ready")),
            ("rank", JsonValue::num(3.0)),
            ("x", JsonValue::str(f64_to_hex(-0.0))),
        ]);
        let bytes = encode_frame(&v);
        let (back, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, v);
        // And through the stream reader.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), v);
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let mut bytes = encode_frame(&JsonValue::str("hello"));
        bytes[6] ^= 0x40;
        assert!(matches!(
            decode_frame(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn torn_and_oversized_frames_are_typed_errors() {
        let bytes = encode_frame(&JsonValue::num(1.0));
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(CodecError::Truncated)
            ));
        }
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(decode_frame(&huge), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn hex_preserves_every_bit_pattern() {
        for x in [0.0, -0.0, 1.5, -1.0e-300, f64::INFINITY, f64::NAN, 5.67] {
            let back = hex_to_f64(&f64_to_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
        assert!(hex_to_f64("zz").is_err());
        assert!(hex_to_f64("00000000000000000").is_err());
    }
}
