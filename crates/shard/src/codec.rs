//! Length-prefixed, checksummed wire frames, in two selectable payload
//! encodings.
//!
//! Frame layout (little-endian), identical for both codecs:
//!
//! ```text
//! [u32 payload length][payload bytes][u64 fnv1a64(payload)]
//! ```
//!
//! The checksum reuses [`md_sim::fnv1a64`] — the same journal-style framing
//! the job server trusts for crash recovery. The payload is one protocol
//! message ([`crate::msg::Msg`]) in one of two encodings, selected by
//! [`Codec`]:
//!
//! * [`Codec::Json`] — compact JSON (via [`md_serve::wire::compact`]).
//!   Every `f64` that must survive the trip bit-exactly (positions,
//!   velocities, embedding derivatives) is carried as a 16-digit lowercase
//!   hex encoding of its IEEE-754 bit pattern ([`f64_to_hex`] /
//!   [`hex_to_f64`]), so NaN payloads and signed zeros round-trip and a
//!   sharded trajectory is reproducible to the last ulp.
//! * [`Codec::Binary`] — a tag byte plus raw little-endian fields
//!   (`f64::to_bits`, so the same bit-exactness holds at roughly a quarter
//!   of the bytes; see `Msg::encode_binary`).
//!
//! Decoding is total: torn, truncated, oversized, corrupted or
//! trailing-garbage frames come back as a typed [`CodecError`], never a
//! panic, under either codec.

use crate::msg::Msg;
use md_sim::fnv1a64;
use md_sim::metrics::JsonValue;
use std::io::{Read, Write};

/// Upper bound on a payload, to reject absurd length prefixes before
/// allocating (a torn frame can make the length field garbage).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// A wire decoding failure.
#[derive(Debug)]
pub enum CodecError {
    /// The buffer/stream ended inside a frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// The checksum footer does not match the payload bytes.
    BadChecksum {
        /// Checksum computed over the received payload.
        expected: u64,
        /// Checksum carried in the frame footer.
        found: u64,
    },
    /// The payload is not valid compact JSON (or not UTF-8).
    BadJson(String),
    /// The payload framing is intact but a message field is missing or
    /// malformed (both codecs).
    BadField(String),
    /// An underlying I/O error while reading or writing a stream.
    Io(std::io::Error),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated frame"),
            CodecError::Oversize(len) => write!(f, "frame length {len} exceeds {MAX_FRAME}"),
            CodecError::BadChecksum { expected, found } => write!(
                f,
                "checksum mismatch: computed {expected:016x}, frame carries {found:016x}"
            ),
            CodecError::BadJson(e) => write!(f, "bad JSON payload: {e}"),
            CodecError::BadField(e) => write!(f, "bad message field: {e}"),
            CodecError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> CodecError {
        CodecError::Io(e)
    }
}

/// The selectable payload encoding (`mdrun --shard-codec json|binary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// Compact JSON with hex-encoded f64 bit patterns.
    Json,
    /// Tagged raw little-endian fields.
    Binary,
}

impl Codec {
    /// Parses the `--shard-codec` spelling.
    pub fn parse(s: &str) -> Option<Codec> {
        match s {
            "json" => Some(Codec::Json),
            "binary" => Some(Codec::Binary),
            _ => None,
        }
    }

    /// The wire name (`json` / `binary`).
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Json => "json",
            Codec::Binary => "binary",
        }
    }

    /// Encodes one message as a complete frame.
    pub fn encode(&self, msg: &Msg) -> Vec<u8> {
        let body = match self {
            Codec::Json => md_serve::wire::compact(&msg.encode()).into_bytes(),
            Codec::Binary => msg.encode_binary(),
        };
        frame(body)
    }

    /// Decodes one message from the front of `buf`, returning it and the
    /// number of bytes consumed. The whole payload must be one message:
    /// trailing bytes inside the payload are a [`CodecError`], not silence.
    pub fn decode(&self, buf: &[u8]) -> Result<(Msg, usize), CodecError> {
        let (body, used) = unframe(buf)?;
        self.decode_body(body).map(|m| (m, used))
    }

    fn decode_body(&self, body: &[u8]) -> Result<Msg, CodecError> {
        match self {
            Codec::Json => {
                let text = std::str::from_utf8(body)
                    .map_err(|_| CodecError::BadJson("payload is not UTF-8".to_string()))?;
                let v = JsonValue::parse(text).map_err(|e| CodecError::BadJson(e.to_string()))?;
                Msg::decode(&v)
            }
            Codec::Binary => Msg::decode_binary(body),
        }
    }

    /// Reads one message from a blocking stream. A stream that ends
    /// mid-frame reports [`CodecError::Truncated`].
    pub fn read_msg(&self, r: &mut impl Read) -> Result<Msg, CodecError> {
        let body = read_frame_body(r)?;
        self.decode_body(&body)
    }

    /// Writes one message to a stream and flushes it; returns the frame
    /// size in bytes.
    pub fn write_msg(&self, w: &mut impl Write, msg: &Msg) -> Result<u64, CodecError> {
        let bytes = self.encode(msg);
        w.write_all(&bytes)?;
        w.flush()?;
        Ok(bytes.len() as u64)
    }
}

/// Wraps a payload body into a complete frame.
pub fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 12);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    let sum = fnv1a64(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Splits one checksum-verified payload off the front of `buf`, returning
/// the body slice and the number of bytes consumed.
pub fn unframe(buf: &[u8]) -> Result<(&[u8], usize), CodecError> {
    if buf.len() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(CodecError::Oversize(len));
    }
    let need = 4 + len as usize + 8;
    if buf.len() < need {
        return Err(CodecError::Truncated);
    }
    let body = &buf[4..4 + len as usize];
    let found = u64::from_le_bytes(buf[4 + len as usize..need].try_into().unwrap());
    let expected = fnv1a64(body);
    if expected != found {
        return Err(CodecError::BadChecksum { expected, found });
    }
    Ok((body, need))
}

/// The length a full frame will occupy once `buf` holds at least its
/// 4-byte prefix: `Some(Ok(total))`, `Some(Err(Oversize))` on an absurd
/// prefix, or `None` while the prefix itself is still incomplete. Used by
/// the nonblocking peer-mesh pump to know when a frame is whole.
pub fn frame_len(buf: &[u8]) -> Option<Result<usize, CodecError>> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Some(Err(CodecError::Oversize(len)));
    }
    Some(Ok(4 + len as usize + 8))
}

/// Reads one frame body from a blocking stream, verifying the checksum.
pub fn read_frame_body(r: &mut impl Read) -> Result<Vec<u8>, CodecError> {
    let mut head = [0u8; 4];
    read_exact_or_truncated(r, &mut head)?;
    let len = u32::from_le_bytes(head);
    if len > MAX_FRAME {
        return Err(CodecError::Oversize(len));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_or_truncated(r, &mut body)?;
    let mut foot = [0u8; 8];
    read_exact_or_truncated(r, &mut foot)?;
    let found = u64::from_le_bytes(foot);
    let expected = fnv1a64(&body);
    if expected != found {
        return Err(CodecError::BadChecksum { expected, found });
    }
    Ok(body)
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), CodecError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CodecError::Truncated
        } else {
            CodecError::Io(e)
        }
    })
}

/// Encodes one JSON value as a complete frame (the JSON codec's framing,
/// exposed for tests and tooling).
pub fn encode_frame(payload: &JsonValue) -> Vec<u8> {
    frame(md_serve::wire::compact(payload).into_bytes())
}

/// Decodes one JSON frame from the front of `buf`, returning the payload
/// and the number of bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(JsonValue, usize), CodecError> {
    let (body, used) = unframe(buf)?;
    let text = std::str::from_utf8(body)
        .map_err(|_| CodecError::BadJson("payload is not UTF-8".to_string()))?;
    let v = JsonValue::parse(text).map_err(|e| CodecError::BadJson(e.to_string()))?;
    Ok((v, used))
}

/// Reads one JSON frame from a blocking stream.
pub fn read_frame(r: &mut impl Read) -> Result<JsonValue, CodecError> {
    let body = read_frame_body(r)?;
    let text = std::str::from_utf8(&body)
        .map_err(|_| CodecError::BadJson("payload is not UTF-8".to_string()))?;
    JsonValue::parse(text).map_err(|e| CodecError::BadJson(e.to_string()))
}

/// Writes one JSON frame to a stream and flushes it.
pub fn write_frame(w: &mut impl Write, payload: &JsonValue) -> Result<(), CodecError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Renders an `f64` as the 16 lowercase hex digits of its IEEE-754 bit
/// pattern.
pub fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Parses a bit pattern produced by [`f64_to_hex`]: exactly 16 lowercase
/// hex digits, nothing else. `u64::from_str_radix` alone is too lax here —
/// it takes uppercase and a leading `+` — and a codec that emits only one
/// canonical spelling must reject every other one.
pub fn hex_to_f64(s: &str) -> Result<f64, CodecError> {
    let ok = s.len() == 16
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if !ok {
        return Err(CodecError::BadField(format!(
            "f64 bit pattern must be exactly 16 lowercase hex digits, got '{s}'"
        )));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| CodecError::BadField(format!("bad f64 bit pattern '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let v = JsonValue::obj(vec![
            ("t", JsonValue::str("ready")),
            ("rank", JsonValue::num(3.0)),
            ("x", JsonValue::str(f64_to_hex(-0.0))),
        ]);
        let bytes = encode_frame(&v);
        let (back, used) = decode_frame(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, v);
        // And through the stream reader.
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap(), v);
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let mut bytes = encode_frame(&JsonValue::str("hello"));
        bytes[6] ^= 0x40;
        assert!(matches!(
            decode_frame(&bytes),
            Err(CodecError::BadChecksum { .. })
        ));
    }

    #[test]
    fn torn_and_oversized_frames_are_typed_errors() {
        let bytes = encode_frame(&JsonValue::num(1.0));
        for cut in 0..bytes.len() {
            assert!(matches!(
                decode_frame(&bytes[..cut]),
                Err(CodecError::Truncated)
            ));
        }
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(decode_frame(&huge), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn hex_preserves_every_bit_pattern() {
        for x in [0.0, -0.0, 1.5, -1.0e-300, f64::INFINITY, f64::NAN, 5.67] {
            let back = hex_to_f64(&f64_to_hex(x)).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn hex_rejects_everything_but_16_lowercase_digits() {
        // The from_str_radix quirks the old decoder inherited: uppercase
        // was rejected by accident of length only, and a leading '+'
        // parsed. All of these must fail now, explicitly.
        for bad in [
            "zz",
            "00000000000000000",  // 17 digits
            "0000000000000000 ", // trailing space (17 long anyway)
            "3FF0000000000000",  // uppercase
            "+ff0000000000000",  // sign prefix, 16 long
            "-ff0000000000000",
            " ff0000000000000", // leading space, 16 long
            "3ff000000000000",  // 15 digits
            "3ff000000000000g",
            "",
        ] {
            assert!(
                matches!(hex_to_f64(bad), Err(CodecError::BadField(_))),
                "'{bad}' must be rejected"
            );
        }
        // The canonical spelling still parses.
        assert_eq!(hex_to_f64("3ff0000000000000").unwrap(), 1.0);
        assert_eq!(hex_to_f64(&f64_to_hex(-0.0)).unwrap().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn frame_len_tracks_the_prefix() {
        let bytes = Codec::Json.encode(&Msg::Begin);
        assert!(frame_len(&bytes[..3]).is_none());
        assert_eq!(frame_len(&bytes).unwrap().unwrap(), bytes.len());
        let mut huge = bytes.clone();
        huge[..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(frame_len(&huge), Some(Err(CodecError::Oversize(_)))));
    }
}
