//! The shard driver: a star relay running the velocity-Verlet protocol
//! over N transports.
//!
//! The driver never touches atom physics — it partitions the initial
//! system, relays per-rank payloads between shards, ORs the rebuild
//! decision, and aggregates stats. Every step is a fixed round-trip
//! schedule (see [`crate::msg`]); on a rebuild step the migrate + ghost
//! re-selection legs are inserted, otherwise only positions and embedding
//! derivatives flow.

use crate::codec;
use crate::core::{phase_by_name, ShardCore};
use crate::layout::ShardLayout;
use crate::msg::{GhostExport, InitSpec, Msg, ShardAtom};
use crate::{ckpt, ShardFault};
use md_geometry::{Axis, SimBox, Vec3};
use md_sim::metrics::SimMetrics;
use md_sim::metrics::report::ShardsInfo;
use md_sim::{PhaseTimers, System};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One bidirectional driver ↔ shard link.
pub trait Transport {
    /// Delivers one request to the shard.
    fn send(&mut self, msg: &Msg) -> Result<(), ShardFault>;
    /// Receives the shard's next reply.
    fn recv(&mut self) -> Result<Msg, ShardFault>;
}

/// The virtual-rank backend: the shard lives inside the driver process and
/// requests are processed inline — but every message still passes through
/// [`codec::encode_frame`]/[`codec::decode_frame`], so the conformance
/// battery exercises the exact bytes the process backend puts on a socket.
pub struct MemTransport {
    rank: usize,
    core: ShardCore,
    replies: VecDeque<Vec<u8>>,
}

impl MemTransport {
    /// A fresh in-process shard at `rank`.
    pub fn new(rank: usize) -> MemTransport {
        MemTransport {
            rank,
            core: ShardCore::new(),
            replies: VecDeque::new(),
        }
    }
}

impl Transport for MemTransport {
    fn send(&mut self, msg: &Msg) -> Result<(), ShardFault> {
        let frame = codec::encode_frame(&msg.encode());
        let (payload, _) = codec::decode_frame(&frame).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })?;
        let request = Msg::decode(&payload).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })?;
        match self.core.handle(request) {
            Ok(Some(reply)) => {
                self.replies.push_back(codec::encode_frame(&reply.encode()));
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(detail) => Err(ShardFault::Protocol {
                rank: self.rank,
                detail,
            }),
        }
    }

    fn recv(&mut self) -> Result<Msg, ShardFault> {
        let frame = self.replies.pop_front().ok_or_else(|| ShardFault::Protocol {
            rank: self.rank,
            detail: "no pending reply".to_string(),
        })?;
        let (payload, _) = codec::decode_frame(&frame).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })?;
        Msg::decode(&payload).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })
    }
}

/// Run configuration shared by every shard.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Potential name (`fe`, `cu`, `lj`).
    pub potential: String,
    /// Use the tabulated EAM form.
    pub tabulated: bool,
    /// Use the fused EAM path.
    pub fused: bool,
    /// Scatter strategy name.
    pub strategy: String,
    /// Worker threads per shard.
    pub threads: usize,
    /// Verlet skin (Å).
    pub skin: f64,
    /// Time step (ps).
    pub dt: f64,
    /// Atomic mass (amu).
    pub mass: f64,
}

/// Aggregate decomposition counters, driver-observed.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Ghost atoms shipped shard→shard (position exports, summed over
    /// steps; each refresh of an export counts once).
    pub ghost_sent: u64,
    /// Ghost atoms installed (equals `ghost_sent` under the star relay).
    pub ghost_recv: u64,
    /// Atoms that changed owner at rebuilds.
    pub migrated: u64,
    /// Neighbor-list rebuild rounds (world-wide, driver-ORed).
    pub rebuilds: u64,
    /// Driver wall time spent relaying halo payloads.
    pub exchange_seconds: f64,
}

/// A sharded simulation: N shards behind transports, one driver.
pub struct ShardWorld {
    links: Vec<Box<dyn Transport>>,
    spec: WorldSpec,
    sim_box: SimBox,
    n_atoms: usize,
    step: u64,
    limit_sq: f64,
    stats: ShardStats,
    metrics: Option<Arc<SimMetrics>>,
}

/// The decomposition axis every world uses (slabs along x).
pub const SHARD_AXIS: Axis = Axis::X;

impl ShardWorld {
    /// Stands up a fully in-process world over [`MemTransport`]s.
    pub fn virtual_world(
        system: &System,
        spec: &WorldSpec,
        shards: usize,
    ) -> Result<ShardWorld, ShardFault> {
        let links = (0..shards)
            .map(|r| Box::new(MemTransport::new(r)) as Box<dyn Transport>)
            .collect();
        ShardWorld::with_transports(system, spec, links)
    }

    /// Partitions `system` into slabs and boots one shard per transport at
    /// step 0. Forces are *not* computed yet — call
    /// [`ShardWorld::refresh_forces`] before stepping.
    pub fn with_transports(
        system: &System,
        spec: &WorldSpec,
        links: Vec<Box<dyn Transport>>,
    ) -> Result<ShardWorld, ShardFault> {
        let shards = links.len();
        assert!(shards > 0, "a world needs at least one shard");
        assert!(
            system.sim_box().periodicity() == [true; 3],
            "sharding requires a fully periodic box"
        );
        let layout = ShardLayout::new(
            SHARD_AXIS,
            system.sim_box().length(SHARD_AXIS),
            shards,
        );
        let axis = SHARD_AXIS.index();
        let mut per_rank: Vec<Vec<ShardAtom>> = vec![Vec::new(); shards];
        for (gid, (&pos, &vel)) in system
            .positions()
            .iter()
            .zip(system.velocities())
            .enumerate()
        {
            per_rank[layout.rank_of(pos[axis])].push(ShardAtom {
                gid: gid as u64,
                pos,
                vel,
            });
        }
        ShardWorld::boot(*system.sim_box(), spec, links, per_rank, 0)
    }

    /// Boots a world from the committed checkpoint generation in `dir`,
    /// resuming every shard at the manifest's step.
    pub fn resume_with_transports(
        dir: &Path,
        sim_box: SimBox,
        spec: &WorldSpec,
        links: Vec<Box<dyn Transport>>,
    ) -> Result<ShardWorld, ShardFault> {
        let (step, per_rank) = ckpt::load_world(dir, links.len())?;
        ShardWorld::boot(sim_box, spec, links, per_rank, step)
    }

    fn boot(
        sim_box: SimBox,
        spec: &WorldSpec,
        mut links: Vec<Box<dyn Transport>>,
        per_rank: Vec<Vec<ShardAtom>>,
        step: u64,
    ) -> Result<ShardWorld, ShardFault> {
        let shards = links.len();
        let n_atoms = per_rank.iter().map(Vec::len).sum();
        for (rank, (link, atoms)) in links.iter_mut().zip(per_rank).enumerate() {
            link.send(&Msg::Init(Box::new(InitSpec {
                rank,
                n_ranks: shards,
                axis: SHARD_AXIS.index(),
                box_lengths: sim_box.lengths().to_array(),
                potential: spec.potential.clone(),
                tabulated: spec.tabulated,
                fused: spec.fused,
                strategy: spec.strategy.clone(),
                threads: spec.threads,
                skin: spec.skin,
                dt: spec.dt,
                mass: spec.mass,
                step,
                atoms,
            })))?;
        }
        let mut world = ShardWorld {
            links,
            spec: spec.clone(),
            sim_box,
            n_atoms,
            step,
            limit_sq: (spec.skin * 0.5) * (spec.skin * 0.5),
            stats: ShardStats::default(),
            metrics: None,
        };
        for (rank, reply) in world.recv_all()?.into_iter().enumerate() {
            match reply {
                Msg::Ready { rank: r } if r as usize == rank => {}
                other => return Err(world.protocol(rank, format!("expected ready, got {other:?}"))),
            }
        }
        Ok(world)
    }

    fn protocol(&self, rank: usize, detail: String) -> ShardFault {
        ShardFault::Protocol { rank, detail }
    }

    fn send_all(&mut self, mut mk: impl FnMut(usize) -> Msg) -> Result<(), ShardFault> {
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&mk(rank))?;
        }
        Ok(())
    }

    fn recv_all(&mut self) -> Result<Vec<Msg>, ShardFault> {
        self.links.iter_mut().map(|l| l.recv()).collect()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// Total atom count.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Driver-observed decomposition counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// The global box.
    pub fn sim_box(&self) -> &SimBox {
        &self.sim_box
    }

    /// Turns on the driver-side observability bundle (span histograms for
    /// the run report; the scatter section stays empty — per-shard scatter
    /// counters live in the workers).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Arc::new(SimMetrics::new(self.spec.threads)));
        }
    }

    /// The driver-side metrics bundle, when enabled.
    pub fn metrics(&self) -> Option<&Arc<SimMetrics>> {
        self.metrics.as_ref()
    }

    /// Full halo refresh and force computation without advancing time:
    /// ghost re-selection, density, fp exchange, force phase. Required
    /// once after boot (and exactly mirrors the rebuild leg of a step).
    pub fn refresh_forces(&mut self) -> Result<(), ShardFault> {
        let start = Instant::now();
        self.exchange_and_force(Vec::new(), false)?;
        if let Some(m) = &self.metrics {
            m.force.record(start.elapsed());
        }
        Ok(())
    }

    /// The rebuild leg: (optional migration payload already routed by the
    /// caller) → ghost exports → density → fp exchange → force phase.
    /// `kick` selects whether the shards close the step with a half-kick.
    fn exchange_and_force(
        &mut self,
        incoming: Vec<Vec<ShardAtom>>,
        kick: bool,
    ) -> Result<(), ShardFault> {
        let shards = self.shards();
        let mut incoming = incoming;
        incoming.resize(shards, Vec::new());
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&Msg::MigIn {
                atoms: std::mem::take(&mut incoming[rank]),
            })?;
        }
        let exports = self.collect_ghost_exports()?;
        let relay = Instant::now();
        let ghost_in = route_exports(&exports, shards);
        let shipped: u64 = ghost_in
            .iter()
            .flat_map(|per| per.iter().map(|e| e.gids.len() as u64))
            .sum();
        self.stats.ghost_sent += shipped;
        self.stats.ghost_recv += shipped;
        self.stats.exchange_seconds += relay.elapsed().as_secs_f64();
        let mut ghost_in = ghost_in;
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&Msg::GhostIn {
                from: std::mem::take(&mut ghost_in[rank]),
            })?;
        }
        self.fp_exchange(kick)
    }

    fn collect_ghost_exports(&mut self) -> Result<Vec<Vec<GhostExport>>, ShardFault> {
        self.recv_all()?
            .into_iter()
            .enumerate()
            .map(|(rank, m)| match m {
                Msg::GhostOut { to } if to.len() == self.shards() => Ok(to),
                other => Err(self.protocol(rank, format!("expected ghost_out, got {other:?}"))),
            })
            .collect()
    }

    /// Relays the shards' `FpOut` replies and closes the force evaluation.
    fn fp_exchange(&mut self, kick: bool) -> Result<(), ShardFault> {
        let shards = self.shards();
        let fp_out: Vec<Vec<Vec<f64>>> = self
            .recv_all()?
            .into_iter()
            .enumerate()
            .map(|(rank, m)| match m {
                Msg::FpOut { to } if to.len() == shards => Ok(to),
                other => Err(self.protocol(rank, format!("expected fp_out, got {other:?}"))),
            })
            .collect::<Result<_, _>>()?;
        let relay = Instant::now();
        let mut fp_in: Vec<Vec<Vec<f64>>> = (0..shards)
            .map(|t| (0..shards).map(|s| fp_out[s][t].clone()).collect())
            .collect();
        self.stats.exchange_seconds += relay.elapsed().as_secs_f64();
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&Msg::FpIn {
                from: std::mem::take(&mut fp_in[rank]),
                kick,
            })?;
        }
        let want = self.step + u64::from(kick);
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            match m {
                Msg::StepDone { step } if step == want => {}
                other => {
                    return Err(self.protocol(
                        rank,
                        format!("expected step_done at {want}, got {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Advances the world one velocity-Verlet step.
    pub fn step(&mut self) -> Result<(), ShardFault> {
        let step_start = Instant::now();
        self.send_all(|_| Msg::Begin)?;
        let mut max_sq = 0.0f64;
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            match m {
                Msg::DispOut { max_sq: d } => max_sq = max_sq.max(d),
                other => return Err(self.protocol(rank, format!("expected disp, got {other:?}"))),
            }
        }
        let integrate_elapsed = step_start.elapsed();

        if max_sq > self.limit_sq {
            let rebuild_start = Instant::now();
            self.send_all(|_| Msg::Migrate)?;
            let shards = self.shards();
            let outgoing: Vec<Vec<Vec<ShardAtom>>> = self
                .recv_all()?
                .into_iter()
                .enumerate()
                .map(|(rank, m)| match m {
                    Msg::MigOut { to } if to.len() == shards => Ok(to),
                    other => {
                        Err(self.protocol(rank, format!("expected mig_out, got {other:?}")))
                    }
                })
                .collect::<Result<_, _>>()?;
            let mut incoming: Vec<Vec<ShardAtom>> = vec![Vec::new(); shards];
            for per_target in outgoing {
                for (t, atoms) in per_target.into_iter().enumerate() {
                    self.stats.migrated += atoms.len() as u64;
                    incoming[t].extend(atoms);
                }
            }
            self.stats.rebuilds += 1;
            if let Some(m) = &self.metrics {
                m.rebuild.record(rebuild_start.elapsed());
            }
            let force_start = Instant::now();
            self.exchange_and_force(incoming, true)?;
            if let Some(m) = &self.metrics {
                m.force.record(force_start.elapsed());
            }
        } else {
            let force_start = Instant::now();
            self.send_all(|_| Msg::PosTick)?;
            let shards = self.shards();
            let pos_out: Vec<Vec<Vec<Vec3>>> = self
                .recv_all()?
                .into_iter()
                .enumerate()
                .map(|(rank, m)| match m {
                    Msg::PosOut { to } if to.len() == shards => Ok(to),
                    other => {
                        Err(self.protocol(rank, format!("expected pos_out, got {other:?}")))
                    }
                })
                .collect::<Result<_, _>>()?;
            let relay = Instant::now();
            let mut pos_in: Vec<Vec<Vec<Vec3>>> = (0..shards)
                .map(|t| (0..shards).map(|s| pos_out[s][t].clone()).collect())
                .collect();
            let shipped: u64 = pos_in
                .iter()
                .flat_map(|per| per.iter().map(|v| v.len() as u64))
                .sum();
            self.stats.ghost_sent += shipped;
            self.stats.ghost_recv += shipped;
            self.stats.exchange_seconds += relay.elapsed().as_secs_f64();
            for (rank, link) in self.links.iter_mut().enumerate() {
                link.send(&Msg::PosIn {
                    from: std::mem::take(&mut pos_in[rank]),
                })?;
            }
            self.fp_exchange(true)?;
            if let Some(m) = &self.metrics {
                m.force.record(force_start.elapsed());
            }
        }
        self.step += 1;
        if let Some(m) = &self.metrics {
            m.integrate.record(integrate_elapsed);
            m.step.record(step_start.elapsed());
        }
        Ok(())
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) -> Result<(), ShardFault> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Collects the full system state (positions and velocities by global
    /// id) from every shard.
    pub fn gather(&mut self) -> Result<(Vec<Vec3>, Vec<Vec3>), ShardFault> {
        self.send_all(|_| Msg::Gather)?;
        let mut pos = vec![None; self.n_atoms];
        let mut vel = vec![Vec3::ZERO; self.n_atoms];
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            let atoms = match m {
                Msg::State { atoms } => atoms,
                other => return Err(self.protocol(rank, format!("expected state, got {other:?}"))),
            };
            for a in atoms {
                let gid = a.gid as usize;
                if gid >= self.n_atoms || pos[gid].is_some() {
                    return Err(self.protocol(rank, format!("bad or duplicate gid {gid}")));
                }
                pos[gid] = Some(a.pos);
                vel[gid] = a.vel;
            }
        }
        let pos = pos
            .into_iter()
            .enumerate()
            .map(|(gid, p)| p.ok_or_else(|| self.protocol(0, format!("atom {gid} lost"))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((pos, vel))
    }

    /// Gathers into a [`System`] (for thermo reporting).
    pub fn gather_system(&mut self) -> Result<System, ShardFault> {
        let (pos, vel) = self.gather()?;
        let mut system = System::new(self.sim_box, pos, self.spec.mass);
        system.velocities_mut().copy_from_slice(&vel);
        Ok(system)
    }

    /// Saves a consistent world checkpoint generation into `dir`: every
    /// shard writes its own file, then the manifest is committed and older
    /// generations are pruned.
    pub fn save_checkpoint(&mut self, dir: &Path) -> Result<(), ShardFault> {
        std::fs::create_dir_all(dir).map_err(|error| ShardFault::Io { rank: 0, error })?;
        let dir_str = dir.to_string_lossy().into_owned();
        self.send_all(|_| Msg::Save {
            dir: dir_str.clone(),
        })?;
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            match m {
                Msg::Saved { .. } => {}
                other => return Err(self.protocol(rank, format!("expected saved, got {other:?}"))),
            }
        }
        ckpt::commit_meta(dir, self.step, self.shards())?;
        ckpt::prune_old(dir, self.step).map_err(|error| ShardFault::Io { rank: 0, error })?;
        Ok(())
    }

    /// Fetches and merges every shard's phase timers (for the run report's
    /// `phases` section).
    pub fn merged_timers(&mut self) -> Result<PhaseTimers, ShardFault> {
        self.send_all(|_| Msg::Stats)?;
        let mut merged = PhaseTimers::new();
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            let phases = match m {
                Msg::StatsOut { phases } => phases,
                other => {
                    return Err(self.protocol(rank, format!("expected stats_out, got {other:?}")))
                }
            };
            let mut timers = PhaseTimers::new();
            for stat in phases {
                let phase = phase_by_name(&stat.name)
                    .ok_or_else(|| self.protocol(rank, format!("unknown phase '{}'", stat.name)))?;
                if stat.count > 0 {
                    // One add carries the duration; the rest restore the
                    // sample count without changing the total.
                    timers.add(phase, Duration::from_secs_f64(stat.seconds));
                    for _ in 1..stat.count {
                        timers.add(phase, Duration::ZERO);
                    }
                }
            }
            merged.merge(&timers);
        }
        Ok(merged)
    }

    /// The run report's `shards` section for this world.
    pub fn shards_info(&self, backend: &str) -> ShardsInfo {
        ShardsInfo {
            count: self.shards(),
            backend: backend.to_string(),
            ghost_sent: self.stats.ghost_sent,
            ghost_recv: self.stats.ghost_recv,
            migrated: self.stats.migrated,
            rebuilds: self.stats.rebuilds,
            exchange_seconds: self.stats.exchange_seconds,
        }
    }

    /// Asks every shard to exit (errors ignored — a dead link is already
    /// the outcome shutdown wants).
    pub fn shutdown(&mut self) {
        for link in &mut self.links {
            let _ = link.send(&Msg::Shutdown);
        }
    }
}

/// Transposes per-source `GhostOut.to` matrices into per-target
/// `GhostIn.from` payloads (`from[t][s] = to[s][t]`).
fn route_exports(exports: &[Vec<GhostExport>], shards: usize) -> Vec<Vec<GhostExport>> {
    (0..shards)
        .map(|t| (0..shards).map(|s| exports[s][t].clone()).collect())
        .collect()
}
