//! The shard driver: a control plane running the velocity-Verlet protocol
//! over N transports.
//!
//! The driver never touches atom physics — and since PR 9, never touches
//! halo payloads either. At boot it brokers the peer mesh (every shard
//! binds its rendezvous endpoint, then every shard dials/accepts its
//! peers), after which ghost positions and embedding derivatives flow
//! shard ↔ shard directly. What remains on the driver links is pure
//! control: rebuild votes, migration manifests, checkpoint commands,
//! stats polls, and fault propagation. Every step is a fixed round-trip
//! schedule (see [`crate::msg`]); the control rounds double as the phase
//! barrier the mesh relies on.

use crate::codec::Codec;
use crate::core::{phase_by_name, ShardCore};
use crate::layout::ShardLayout;
use crate::mesh::{channel_mesh_set, ChannelMesh, ChannelMeshProvider};
use crate::msg::{HaloCounters, InitSpec, Msg, ShardAtom};
use crate::{ckpt, ShardFault};
use md_geometry::{Axis, SimBox, Vec3};
use md_sim::metrics::report::ShardsInfo;
use md_sim::metrics::SimMetrics;
use md_sim::{PhaseTimers, System};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One bidirectional driver ↔ shard link.
pub trait Transport {
    /// Delivers one request to the shard.
    fn send(&mut self, msg: &Msg) -> Result<(), ShardFault>;
    /// Receives the shard's next reply.
    fn recv(&mut self) -> Result<Msg, ShardFault>;
}

/// The virtual-rank backend: the shard lives inside the driver process and
/// requests are processed inline — but every control message still passes
/// through the selected [`Codec`] (and peer traffic through a
/// [`ChannelMesh`] carrying codec frames), so the conformance battery
/// exercises the exact bytes the process backend puts on a socket.
pub struct MemTransport {
    rank: usize,
    codec: Codec,
    core: ShardCore,
    replies: VecDeque<Vec<u8>>,
}

impl MemTransport {
    /// A fresh in-process shard at `rank`, speaking `codec` and exchanging
    /// halos over `mesh`.
    pub fn new(rank: usize, codec: Codec, mesh: ChannelMesh) -> MemTransport {
        MemTransport {
            rank,
            codec,
            core: ShardCore::new(Box::new(ChannelMeshProvider::new(mesh))),
            replies: VecDeque::new(),
        }
    }
}

impl Transport for MemTransport {
    fn send(&mut self, msg: &Msg) -> Result<(), ShardFault> {
        let frame = self.codec.encode(msg);
        let (request, _) = self.codec.decode(&frame).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })?;
        match self.core.handle(request) {
            Ok(Some(reply)) => {
                self.replies.push_back(self.codec.encode(&reply));
                Ok(())
            }
            Ok(None) => Ok(()),
            Err(detail) => Err(ShardFault::Protocol {
                rank: self.rank,
                detail,
            }),
        }
    }

    fn recv(&mut self) -> Result<Msg, ShardFault> {
        let frame = self.replies.pop_front().ok_or_else(|| ShardFault::Protocol {
            rank: self.rank,
            detail: "no pending reply".to_string(),
        })?;
        let (msg, _) = self.codec.decode(&frame).map_err(|error| ShardFault::Codec {
            rank: self.rank,
            error,
        })?;
        Ok(msg)
    }
}

/// Run configuration shared by every shard.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    /// Potential name (`fe`, `cu`, `lj`).
    pub potential: String,
    /// Use the tabulated EAM form.
    pub tabulated: bool,
    /// Use the fused EAM path.
    pub fused: bool,
    /// Use the lane-batched (SIMD) spline kernels of the fused path.
    pub simd: bool,
    /// Scatter strategy name.
    pub strategy: String,
    /// Worker threads per shard.
    pub threads: usize,
    /// Verlet skin (Å).
    pub skin: f64,
    /// Time step (ps).
    pub dt: f64,
    /// Atomic mass (amu).
    pub mass: f64,
}

/// Aggregate decomposition counters: migration/rebuild tallies observed by
/// the driver, halo tallies polled from the shards (the driver never sees
/// peer traffic itself).
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Ghost position records shipped shard → shard (each refresh of an
    /// export counts once), summed over shards.
    pub ghost_sent: u64,
    /// Ghost position records installed at receiving shards. Conservation
    /// law: after any completed step, `ghost_installed == ghost_sent`.
    pub ghost_installed: u64,
    /// Atoms that changed owner at rebuilds.
    pub migrated: u64,
    /// Neighbor-list rebuild rounds (world-wide, driver-ORed).
    pub rebuilds: u64,
    /// Bytes shards wrote to peer links, summed over shards (counts every
    /// peer frame: ghosts, positions, F′(ρ)).
    pub wire_bytes_sent: u64,
    /// Bytes shards read from peer links, summed over shards.
    pub wire_bytes_recv: u64,
    /// Wall seconds shards spent encoding/shipping/decoding peer frames,
    /// summed over shards.
    pub wire_seconds: f64,
    /// Driver wall seconds spent waiting on shard replies inside the halo
    /// rounds — worker compute plus any straggler imbalance, kept separate
    /// from `wire_seconds` so the cost model calibrates against actual
    /// wire time.
    pub compute_wait_seconds: f64,
}

/// A sharded simulation: N shards behind transports, one driver.
pub struct ShardWorld {
    links: Vec<Box<dyn Transport>>,
    spec: WorldSpec,
    sim_box: SimBox,
    n_atoms: usize,
    step: u64,
    limit_sq: f64,
    stats: ShardStats,
    metrics: Option<Arc<SimMetrics>>,
}

/// The decomposition axis every world uses (slabs along x).
pub const SHARD_AXIS: Axis = Axis::X;

impl ShardWorld {
    /// Stands up a fully in-process world over [`MemTransport`]s with a
    /// pre-wired channel mesh.
    pub fn virtual_world(
        system: &System,
        spec: &WorldSpec,
        shards: usize,
        codec: Codec,
    ) -> Result<ShardWorld, ShardFault> {
        let links = channel_mesh_set(shards, codec)
            .into_iter()
            .enumerate()
            .map(|(r, mesh)| Box::new(MemTransport::new(r, codec, mesh)) as Box<dyn Transport>)
            .collect();
        ShardWorld::with_transports(system, spec, links, "")
    }

    /// Partitions `system` into slabs and boots one shard per transport at
    /// step 0. `mesh_dir` is the rendezvous directory for the peer mesh
    /// (ignored by the channel mesh — pass `""` for virtual ranks).
    /// Forces are *not* computed yet — call
    /// [`ShardWorld::refresh_forces`] before stepping.
    pub fn with_transports(
        system: &System,
        spec: &WorldSpec,
        links: Vec<Box<dyn Transport>>,
        mesh_dir: &str,
    ) -> Result<ShardWorld, ShardFault> {
        let shards = links.len();
        assert!(shards > 0, "a world needs at least one shard");
        assert!(
            system.sim_box().periodicity() == [true; 3],
            "sharding requires a fully periodic box"
        );
        let layout = ShardLayout::new(
            SHARD_AXIS,
            system.sim_box().length(SHARD_AXIS),
            shards,
        );
        let axis = SHARD_AXIS.index();
        let mut per_rank: Vec<Vec<ShardAtom>> = vec![Vec::new(); shards];
        for (gid, (&pos, &vel)) in system
            .positions()
            .iter()
            .zip(system.velocities())
            .enumerate()
        {
            per_rank[layout.rank_of(pos[axis])].push(ShardAtom {
                gid: gid as u64,
                pos,
                vel,
            });
        }
        ShardWorld::boot(*system.sim_box(), spec, links, per_rank, 0, mesh_dir)
    }

    /// Boots a world from the committed checkpoint generation in `dir`,
    /// resuming every shard at the manifest's step.
    pub fn resume_with_transports(
        dir: &Path,
        sim_box: SimBox,
        spec: &WorldSpec,
        links: Vec<Box<dyn Transport>>,
        mesh_dir: &str,
    ) -> Result<ShardWorld, ShardFault> {
        let (step, per_rank) = ckpt::load_world(dir, links.len())?;
        ShardWorld::boot(sim_box, spec, links, per_rank, step, mesh_dir)
    }

    fn boot(
        sim_box: SimBox,
        spec: &WorldSpec,
        mut links: Vec<Box<dyn Transport>>,
        per_rank: Vec<Vec<ShardAtom>>,
        step: u64,
        mesh_dir: &str,
    ) -> Result<ShardWorld, ShardFault> {
        let shards = links.len();
        let n_atoms = per_rank.iter().map(Vec::len).sum();
        for (rank, (link, atoms)) in links.iter_mut().zip(per_rank).enumerate() {
            link.send(&Msg::Init(Box::new(InitSpec {
                rank,
                n_ranks: shards,
                axis: SHARD_AXIS.index(),
                box_lengths: sim_box.lengths().to_array(),
                potential: spec.potential.clone(),
                tabulated: spec.tabulated,
                fused: spec.fused,
                simd: spec.simd,
                strategy: spec.strategy.clone(),
                threads: spec.threads,
                skin: spec.skin,
                dt: spec.dt,
                mass: spec.mass,
                step,
                atoms,
            })))?;
        }
        let mut world = ShardWorld {
            links,
            spec: spec.clone(),
            sim_box,
            n_atoms,
            step,
            limit_sq: (spec.skin * 0.5) * (spec.skin * 0.5),
            stats: ShardStats::default(),
            metrics: None,
        };
        for (rank, reply) in world.recv_all()?.into_iter().enumerate() {
            match reply {
                Msg::Ready { rank: r } if r as usize == rank => {}
                other => return Err(world.protocol(rank, format!("expected ready, got {other:?}"))),
            }
        }
        // Broker the peer mesh in two phases so a dial can never race its
        // target's bind: everyone listens, then everyone connects.
        let dir = mesh_dir.to_string();
        world.send_all(|_| Msg::PeerListen { dir: dir.clone() })?;
        world.expect_all(|m| matches!(m, Msg::PeerBound), "peer_bound")?;
        world.send_all(|_| Msg::PeerConnect)?;
        world.expect_all(|m| matches!(m, Msg::PeerReady), "peer_ready")?;
        Ok(world)
    }

    fn protocol(&self, rank: usize, detail: String) -> ShardFault {
        ShardFault::Protocol { rank, detail }
    }

    fn send_all(&mut self, mut mk: impl FnMut(usize) -> Msg) -> Result<(), ShardFault> {
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&mk(rank))?;
        }
        Ok(())
    }

    fn recv_all(&mut self) -> Result<Vec<Msg>, ShardFault> {
        self.links.iter_mut().map(|l| l.recv()).collect()
    }

    fn expect_all(
        &mut self,
        ok: impl Fn(&Msg) -> bool,
        what: &str,
    ) -> Result<(), ShardFault> {
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            if !ok(&m) {
                return Err(self.protocol(rank, format!("expected {what}, got {m:?}")));
            }
        }
        Ok(())
    }

    /// `recv_all` with the wait attributed to `compute_wait_seconds`.
    fn recv_all_waiting(&mut self) -> Result<Vec<Msg>, ShardFault> {
        let wait = Instant::now();
        let replies = self.recv_all();
        self.stats.compute_wait_seconds += wait.elapsed().as_secs_f64();
        replies
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.links.len()
    }

    /// Total atom count.
    pub fn n_atoms(&self) -> usize {
        self.n_atoms
    }

    /// Completed step count.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The global box.
    pub fn sim_box(&self) -> &SimBox {
        &self.sim_box
    }

    /// Turns on the driver-side observability bundle (span histograms for
    /// the run report; the scatter section stays empty — per-shard scatter
    /// counters live in the workers).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Arc::new(SimMetrics::new(self.spec.threads)));
        }
    }

    /// The driver-side metrics bundle, when enabled.
    pub fn metrics(&self) -> Option<&Arc<SimMetrics>> {
        self.metrics.as_ref()
    }

    /// Full halo refresh and force computation without advancing time:
    /// ghost re-selection, density, fp exchange, force phase. Required
    /// once after boot (and exactly mirrors the rebuild leg of a step).
    pub fn refresh_forces(&mut self) -> Result<(), ShardFault> {
        let start = Instant::now();
        self.rebuild_halo(vec![Vec::new(); self.shards()], false)?;
        if let Some(m) = &self.metrics {
            m.force.record(start.elapsed());
        }
        Ok(())
    }

    /// The rebuild halo leg: deliver the routed migration manifests, let
    /// the shards re-select and push full ghost exports over the mesh,
    /// then run the density/force rounds.
    fn rebuild_halo(
        &mut self,
        mut incoming: Vec<Vec<ShardAtom>>,
        kick: bool,
    ) -> Result<(), ShardFault> {
        incoming.resize(self.shards(), Vec::new());
        for (rank, link) in self.links.iter_mut().enumerate() {
            link.send(&Msg::MigIn {
                atoms: std::mem::take(&mut incoming[rank]),
            })?;
        }
        self.halo_rounds(kick)
    }

    /// The send-round barrier plus the density and force rounds shared by
    /// both legs. On entry every shard has been told to push its halo
    /// (`MigIn` or `HaloPos`); the `HaloSent` barrier guarantees every
    /// peer frame is in flight before anyone is told to receive.
    fn halo_rounds(&mut self, kick: bool) -> Result<(), ShardFault> {
        let sent = self.recv_all_waiting()?;
        for (rank, m) in sent.into_iter().enumerate() {
            match m {
                Msg::HaloSent => {}
                other => {
                    return Err(self.protocol(rank, format!("expected halo_sent, got {other:?}")))
                }
            }
        }
        self.send_all(|_| Msg::HaloDensity)?;
        let done = self.recv_all_waiting()?;
        for (rank, m) in done.into_iter().enumerate() {
            match m {
                Msg::DensityDone => {}
                other => {
                    return Err(self.protocol(rank, format!("expected density_done, got {other:?}")))
                }
            }
        }
        self.send_all(|_| Msg::HaloForce { kick })?;
        let want = self.step + u64::from(kick);
        for (rank, m) in self.recv_all_waiting()?.into_iter().enumerate() {
            match m {
                Msg::StepDone { step } if step == want => {}
                other => {
                    return Err(self.protocol(
                        rank,
                        format!("expected step_done at {want}, got {other:?}"),
                    ))
                }
            }
        }
        Ok(())
    }

    /// Advances the world one velocity-Verlet step.
    pub fn step(&mut self) -> Result<(), ShardFault> {
        let step_start = Instant::now();
        self.send_all(|_| Msg::Begin)?;
        let mut max_sq = 0.0f64;
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            match m {
                Msg::DispOut { max_sq: d } => max_sq = max_sq.max(d),
                other => return Err(self.protocol(rank, format!("expected disp, got {other:?}"))),
            }
        }
        let integrate_elapsed = step_start.elapsed();

        if max_sq > self.limit_sq {
            let rebuild_start = Instant::now();
            self.send_all(|_| Msg::Migrate)?;
            let shards = self.shards();
            let outgoing: Vec<Vec<Vec<ShardAtom>>> = self
                .recv_all()?
                .into_iter()
                .enumerate()
                .map(|(rank, m)| match m {
                    Msg::MigOut { to } if to.len() == shards => Ok(to),
                    other => {
                        Err(self.protocol(rank, format!("expected mig_out, got {other:?}")))
                    }
                })
                .collect::<Result<_, _>>()?;
            let mut incoming: Vec<Vec<ShardAtom>> = vec![Vec::new(); shards];
            for per_target in outgoing {
                for (t, atoms) in per_target.into_iter().enumerate() {
                    self.stats.migrated += atoms.len() as u64;
                    incoming[t].extend(atoms);
                }
            }
            self.stats.rebuilds += 1;
            if let Some(m) = &self.metrics {
                m.rebuild.record(rebuild_start.elapsed());
            }
            let force_start = Instant::now();
            self.rebuild_halo(incoming, true)?;
            if let Some(m) = &self.metrics {
                m.force.record(force_start.elapsed());
            }
        } else {
            let force_start = Instant::now();
            self.send_all(|_| Msg::HaloPos)?;
            self.halo_rounds(true)?;
            if let Some(m) = &self.metrics {
                m.force.record(force_start.elapsed());
            }
        }
        self.step += 1;
        if let Some(m) = &self.metrics {
            m.integrate.record(integrate_elapsed);
            m.step.record(step_start.elapsed());
        }
        Ok(())
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: u64) -> Result<(), ShardFault> {
        for _ in 0..n {
            self.step()?;
        }
        Ok(())
    }

    /// Collects the full system state (positions and velocities by global
    /// id) from every shard.
    pub fn gather(&mut self) -> Result<(Vec<Vec3>, Vec<Vec3>), ShardFault> {
        self.send_all(|_| Msg::Gather)?;
        let mut pos = vec![None; self.n_atoms];
        let mut vel = vec![Vec3::ZERO; self.n_atoms];
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            let atoms = match m {
                Msg::State { atoms } => atoms,
                other => return Err(self.protocol(rank, format!("expected state, got {other:?}"))),
            };
            for a in atoms {
                let gid = a.gid as usize;
                if gid >= self.n_atoms || pos[gid].is_some() {
                    return Err(self.protocol(rank, format!("bad or duplicate gid {gid}")));
                }
                pos[gid] = Some(a.pos);
                vel[gid] = a.vel;
            }
        }
        let pos = pos
            .into_iter()
            .enumerate()
            .map(|(gid, p)| p.ok_or_else(|| self.protocol(0, format!("atom {gid} lost"))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((pos, vel))
    }

    /// Gathers into a [`System`] (for thermo reporting).
    pub fn gather_system(&mut self) -> Result<System, ShardFault> {
        let (pos, vel) = self.gather()?;
        let mut system = System::new(self.sim_box, pos, self.spec.mass);
        system.velocities_mut().copy_from_slice(&vel);
        Ok(system)
    }

    /// Saves a consistent world checkpoint generation into `dir`: every
    /// shard writes its own file, then the manifest is committed and older
    /// generations are pruned.
    pub fn save_checkpoint(&mut self, dir: &Path) -> Result<(), ShardFault> {
        std::fs::create_dir_all(dir).map_err(|error| ShardFault::Io { rank: 0, error })?;
        let dir_str = dir.to_string_lossy().into_owned();
        self.send_all(|_| Msg::Save {
            dir: dir_str.clone(),
        })?;
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            match m {
                Msg::Saved { .. } => {}
                other => return Err(self.protocol(rank, format!("expected saved, got {other:?}"))),
            }
        }
        ckpt::commit_meta(dir, self.step, self.shards())?;
        ckpt::prune_old(dir, self.step).map_err(|error| ShardFault::Io { rank: 0, error })?;
        Ok(())
    }

    /// Fetches and merges every shard's phase timers (for the run report's
    /// `phases` section).
    pub fn merged_timers(&mut self) -> Result<PhaseTimers, ShardFault> {
        self.send_all(|_| Msg::Stats)?;
        let mut merged = PhaseTimers::new();
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            let phases = match m {
                Msg::StatsOut { phases } => phases,
                other => {
                    return Err(self.protocol(rank, format!("expected stats_out, got {other:?}")))
                }
            };
            let mut timers = PhaseTimers::new();
            for stat in phases {
                let phase = phase_by_name(&stat.name)
                    .ok_or_else(|| self.protocol(rank, format!("unknown phase '{}'", stat.name)))?;
                if stat.count > 0 {
                    // One add carries the duration; the rest restore the
                    // sample count without changing the total.
                    timers.add(phase, Duration::from_secs_f64(stat.seconds));
                    for _ in 1..stat.count {
                        timers.add(phase, Duration::ZERO);
                    }
                }
            }
            merged.merge(&timers);
        }
        Ok(merged)
    }

    /// Polls every shard's cumulative halo counters and folds them into
    /// the driver-side stats (the halo fields are overwritten — shards
    /// report cumulative tallies, so summing them is the world total).
    fn sync_halo_stats(&mut self) -> Result<(), ShardFault> {
        self.send_all(|_| Msg::Counters)?;
        let mut total = HaloCounters::default();
        for (rank, m) in self.recv_all()?.into_iter().enumerate() {
            let c = match m {
                Msg::CountersOut { counters } => counters,
                other => {
                    return Err(
                        self.protocol(rank, format!("expected counters_out, got {other:?}"))
                    )
                }
            };
            total.ghost_sent += c.ghost_sent;
            total.ghost_installed += c.ghost_installed;
            total.bytes_sent += c.bytes_sent;
            total.bytes_recv += c.bytes_recv;
            total.wire_seconds += c.wire_seconds;
        }
        self.stats.ghost_sent = total.ghost_sent;
        self.stats.ghost_installed = total.ghost_installed;
        self.stats.wire_bytes_sent = total.bytes_sent;
        self.stats.wire_bytes_recv = total.bytes_recv;
        self.stats.wire_seconds = total.wire_seconds;
        Ok(())
    }

    /// Aggregate decomposition counters — polls the shards' halo tallies,
    /// so it needs live links.
    pub fn stats(&mut self) -> Result<ShardStats, ShardFault> {
        self.sync_halo_stats()?;
        Ok(self.stats.clone())
    }

    /// The run report's `shards` section for this world.
    pub fn shards_info(&mut self, backend: &str, codec: Codec) -> Result<ShardsInfo, ShardFault> {
        let stats = self.stats()?;
        Ok(ShardsInfo {
            count: self.shards(),
            backend: backend.to_string(),
            codec: codec.name().to_string(),
            ghost_sent: stats.ghost_sent,
            ghost_installed: stats.ghost_installed,
            migrated: stats.migrated,
            rebuilds: stats.rebuilds,
            wire_bytes_sent: stats.wire_bytes_sent,
            wire_bytes_recv: stats.wire_bytes_recv,
            wire_seconds: stats.wire_seconds,
            compute_wait_seconds: stats.compute_wait_seconds,
        })
    }

    /// Asks every shard to exit (errors ignored — a dead link is already
    /// the outcome shutdown wants).
    pub fn shutdown(&mut self) {
        for link in &mut self.links {
            let _ = link.send(&Msg::Shutdown);
        }
    }
}
