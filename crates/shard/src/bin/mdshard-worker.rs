//! One shard of a sharded MD run (see `md-shard`).
//!
//! Spawned by the driver with `--connect <socket> --rank <r>`; speaks the
//! framed protocol on the socket until `Shutdown` or the driver goes away.
//! All logic lives in [`md_shard::ShardCore`] — this binary is only the
//! read-frame / handle / write-frame loop.

use md_shard::codec::{self, CodecError};
use md_shard::{Msg, ShardCore};
use std::io::ErrorKind;
use std::os::unix::net::UnixStream;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut connect = None;
    let mut rank = String::from("?");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--rank" => rank = args.next().unwrap_or(rank),
            other => {
                eprintln!("mdshard-worker: unknown argument '{other}'");
                exit(2);
            }
        }
    }
    let Some(path) = connect else {
        eprintln!("usage: mdshard-worker --connect <socket> [--rank <r>]");
        exit(2);
    };
    let mut stream = match UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mdshard-worker[{rank}]: connect {path}: {e}");
            exit(1);
        }
    };

    let mut core = ShardCore::new();
    loop {
        let payload = match codec::read_frame(&mut stream) {
            Ok(p) => p,
            // A clean EOF means the driver is gone; exit quietly so a
            // driver crash does not leave worker zombies complaining.
            Err(CodecError::Truncated) => break,
            Err(CodecError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => break,
            Err(e) => {
                eprintln!("mdshard-worker[{rank}]: bad frame: {e}");
                exit(1);
            }
        };
        let msg = match Msg::decode(&payload) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("mdshard-worker[{rank}]: bad message: {e}");
                exit(1);
            }
        };
        match core.handle(msg) {
            Ok(Some(reply)) => {
                if let Err(e) = codec::write_frame(&mut stream, &reply.encode()) {
                    eprintln!("mdshard-worker[{rank}]: reply failed: {e}");
                    exit(1);
                }
            }
            Ok(None) => break,
            Err(detail) => {
                eprintln!("mdshard-worker[{rank}]: protocol error: {detail}");
                exit(1);
            }
        }
    }
}
