//! One shard of a sharded MD run (see `md-shard`).
//!
//! Spawned by the driver with `--connect <socket> --rank <r> --codec
//! <json|binary>`; speaks the framed protocol on the socket until
//! `Shutdown` or the driver goes away. Halo traffic bypasses this loop
//! entirely: the [`md_shard::mesh::SocketMeshProvider`] installed here
//! wires direct peer links when the driver's brokering rounds arrive, and
//! the core pushes/pulls ghost frames on them from inside its handlers.
//! All logic lives in [`md_shard::ShardCore`] — this binary is only the
//! read-frame / handle / write-frame loop.

use md_shard::codec::{Codec, CodecError};
use md_shard::mesh::SocketMeshProvider;
use md_shard::ShardCore;
use std::io::ErrorKind;
use std::os::unix::net::UnixStream;
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut connect = None;
    let mut rank = String::from("?");
    let mut codec = Codec::Json;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--rank" => rank = args.next().unwrap_or(rank),
            "--codec" => {
                let name = args.next().unwrap_or_default();
                codec = match Codec::parse(&name) {
                    Some(c) => c,
                    None => {
                        eprintln!("mdshard-worker: unknown codec '{name}'");
                        exit(2);
                    }
                };
            }
            other => {
                eprintln!("mdshard-worker: unknown argument '{other}'");
                exit(2);
            }
        }
    }
    let Some(path) = connect else {
        eprintln!("usage: mdshard-worker --connect <socket> [--rank <r>] [--codec json|binary]");
        exit(2);
    };
    let mut stream = match UnixStream::connect(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mdshard-worker[{rank}]: connect {path}: {e}");
            exit(1);
        }
    };

    let mut core = ShardCore::new(Box::new(SocketMeshProvider::new(codec)));
    loop {
        let msg = match codec.read_msg(&mut stream) {
            Ok(m) => m,
            // A clean EOF means the driver is gone; exit quietly so a
            // driver crash does not leave worker zombies complaining.
            Err(CodecError::Truncated) => break,
            Err(CodecError::Io(e)) if e.kind() == ErrorKind::UnexpectedEof => break,
            Err(e) => {
                eprintln!("mdshard-worker[{rank}]: bad frame: {e}");
                exit(1);
            }
        };
        match core.handle(msg) {
            Ok(Some(reply)) => {
                if let Err(e) = codec.write_msg(&mut stream, &reply) {
                    eprintln!("mdshard-worker[{rank}]: reply failed: {e}");
                    exit(1);
                }
            }
            Ok(None) => break,
            Err(detail) => {
                eprintln!("mdshard-worker[{rank}]: protocol error: {detail}");
                exit(1);
            }
        }
    }
}
