//! Per-shard checkpoints and the world manifest.
//!
//! Each shard persists its owned atoms to `shard-<rank>@<step>.ckpt`
//! (written by the worker itself, so no atom state crosses the wire to be
//! saved), and the driver commits a `world.meta` manifest naming the full
//! generation *after* every shard file is durable. Recovery therefore
//! always finds a consistent cut: either the old manifest with the old
//! files, or the new manifest with the new files — never a mix.
//!
//! Files are plain text with `f64`s as IEEE-754 hex bit patterns (exact
//! round trip) and a `fnv1a64` checksum footer, written through
//! [`md_sim::atomic_write`] (tmp sibling + fsync + rename), with
//! [`md_sim::sweep_stale_tmp_dir`] clearing crashed half-writes on load.

use crate::codec::{f64_to_hex, hex_to_f64};
use crate::msg::ShardAtom;
use md_geometry::Vec3;
use md_sim::checkpoint::atomic_write;
use md_sim::{fnv1a64, sweep_stale_tmp_dir, CheckpointError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// A checkpoint load/store failure.
#[derive(Debug)]
pub enum CkptError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic, truncation, checksum mismatch or malformed field.
    Corrupt(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "I/O: {e}"),
            CkptError::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> CkptError {
        CkptError::Io(e)
    }
}

impl From<CheckpointError> for CkptError {
    fn from(e: CheckpointError) -> CkptError {
        match e {
            CheckpointError::Io(io) => CkptError::Io(io),
            other => CkptError::Corrupt(other.to_string()),
        }
    }
}

fn corrupt(what: impl Into<String>) -> CkptError {
    CkptError::Corrupt(what.into())
}

/// File name of one shard's checkpoint at one step.
pub fn shard_file_name(rank: usize, step: u64) -> String {
    format!("shard-{rank}@{step}.ckpt")
}

/// Manifest file name.
pub const META_FILE: &str = "world.meta";

/// Writes `rank`'s owned atoms at `step` atomically; returns the path.
pub fn save_shard(
    dir: &Path,
    rank: usize,
    n_ranks: usize,
    step: u64,
    atoms: &[ShardAtom],
) -> Result<PathBuf, CkptError> {
    let path = dir.join(shard_file_name(rank, step));
    let body = render_shard(rank, n_ranks, step, atoms);
    atomic_write(&path, |f| {
        f.write_all(body.as_bytes()).map_err(CheckpointError::Io)
    })?;
    Ok(path)
}

fn render_shard(rank: usize, n_ranks: usize, step: u64, atoms: &[ShardAtom]) -> String {
    let mut body = String::new();
    body.push_str("mdshard shard v1\n");
    body.push_str(&format!("rank {rank} of {n_ranks}\n"));
    body.push_str(&format!("step {step}\n"));
    body.push_str(&format!("atoms {}\n", atoms.len()));
    for a in atoms {
        body.push_str(&format!(
            "{} {} {} {} {} {} {}\n",
            a.gid,
            f64_to_hex(a.pos.x),
            f64_to_hex(a.pos.y),
            f64_to_hex(a.pos.z),
            f64_to_hex(a.vel.x),
            f64_to_hex(a.vel.y),
            f64_to_hex(a.vel.z),
        ));
    }
    seal(body)
}

/// Appends the checksum footer over everything rendered so far.
fn seal(body: String) -> String {
    let sum = fnv1a64(body.as_bytes());
    format!("{body}checksum {sum:016x}\n")
}

/// Splits off and verifies the checksum footer, returning the body lines.
fn open_sealed(text: &str) -> Result<Vec<&str>, CkptError> {
    let trimmed = text.strip_suffix('\n').ok_or_else(|| corrupt("no final newline"))?;
    let (body_end, footer) = trimmed
        .rfind('\n')
        .map(|i| (i + 1, &trimmed[i + 1..]))
        .ok_or_else(|| corrupt("missing checksum footer"))?;
    let found = footer
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| corrupt("bad checksum footer"))?;
    let expected = fnv1a64(&text.as_bytes()[..body_end]);
    if expected != found {
        return Err(corrupt(format!(
            "checksum mismatch: computed {expected:016x}, file carries {found:016x}"
        )));
    }
    Ok(text[..body_end].lines().collect())
}

/// A loaded shard checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCkpt {
    /// Owning rank.
    pub rank: usize,
    /// World size the file was written under.
    pub n_ranks: usize,
    /// Step the atoms are at.
    pub step: u64,
    /// The owned atoms.
    pub atoms: Vec<ShardAtom>,
}

/// Reads and verifies one shard checkpoint file.
pub fn load_shard(path: &Path) -> Result<ShardCkpt, CkptError> {
    let text = std::fs::read_to_string(path)?;
    let lines = open_sealed(&text)?;
    let mut it = lines.into_iter();
    if it.next() != Some("mdshard shard v1") {
        return Err(corrupt("bad magic"));
    }
    let (rank, n_ranks) = {
        let l = it.next().ok_or_else(|| corrupt("missing rank line"))?;
        let rest = l.strip_prefix("rank ").ok_or_else(|| corrupt("bad rank line"))?;
        let (r, n) = rest.split_once(" of ").ok_or_else(|| corrupt("bad rank line"))?;
        (
            r.parse().map_err(|_| corrupt("bad rank"))?,
            n.parse().map_err(|_| corrupt("bad rank count"))?,
        )
    };
    let step = parse_kv(it.next(), "step ")?;
    let count: u64 = parse_kv(it.next(), "atoms ")?;
    let mut atoms = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let l = it.next().ok_or_else(|| corrupt("truncated atom table"))?;
        let mut f = l.split_ascii_whitespace();
        let gid = f
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad atom gid"))?;
        let mut next = || -> Result<f64, CkptError> {
            hex_to_f64(f.next().ok_or_else(|| corrupt("short atom line"))?)
                .map_err(|e| corrupt(e.to_string()))
        };
        let pos = Vec3::new(next()?, next()?, next()?);
        let vel = Vec3::new(next()?, next()?, next()?);
        atoms.push(ShardAtom { gid, pos, vel });
    }
    if it.next().is_some() {
        return Err(corrupt("trailing lines after atom table"));
    }
    Ok(ShardCkpt {
        rank,
        n_ranks,
        step,
        atoms,
    })
}

fn parse_kv(line: Option<&str>, key: &str) -> Result<u64, CkptError> {
    line.and_then(|l| l.strip_prefix(key))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| corrupt(format!("bad '{}' line", key.trim())))
}

/// Atomically commits the manifest naming the generation at `step`; the
/// shard files it lists must already be durable.
pub fn commit_meta(dir: &Path, step: u64, n_ranks: usize) -> Result<(), CkptError> {
    let mut body = String::new();
    body.push_str("mdshard world v1\n");
    body.push_str(&format!("step {step}\n"));
    body.push_str(&format!("shards {n_ranks}\n"));
    for rank in 0..n_ranks {
        body.push_str(&format!("file {}\n", shard_file_name(rank, step)));
    }
    let body = seal(body);
    atomic_write(dir.join(META_FILE), |f| {
        f.write_all(body.as_bytes()).map_err(CheckpointError::Io)
    })?;
    Ok(())
}

/// Reads the manifest: the committed step and shard count.
pub fn load_meta(dir: &Path) -> Result<(u64, usize), CkptError> {
    let text = std::fs::read_to_string(dir.join(META_FILE))?;
    let lines = open_sealed(&text)?;
    let mut it = lines.into_iter();
    if it.next() != Some("mdshard world v1") {
        return Err(corrupt("bad manifest magic"));
    }
    let step = parse_kv(it.next(), "step ")?;
    let shards = parse_kv(it.next(), "shards ")? as usize;
    Ok((step, shards))
}

/// Loads the committed generation: sweeps stale tmp files, reads the
/// manifest, then every shard file, verifying ranks and steps agree.
pub fn load_world(dir: &Path, n_ranks: usize) -> Result<(u64, Vec<Vec<ShardAtom>>), CkptError> {
    sweep_stale_tmp_dir(dir)?;
    let (step, shards) = load_meta(dir)?;
    if shards != n_ranks {
        return Err(corrupt(format!(
            "manifest has {shards} shards, world expects {n_ranks}"
        )));
    }
    let mut per_rank = Vec::with_capacity(shards);
    for rank in 0..shards {
        let ckpt = load_shard(&dir.join(shard_file_name(rank, step)))?;
        if ckpt.rank != rank || ckpt.step != step || ckpt.n_ranks != shards {
            return Err(corrupt(format!(
                "shard file disagrees with manifest: rank {} step {} of {}",
                ckpt.rank, ckpt.step, ckpt.n_ranks
            )));
        }
        per_rank.push(ckpt.atoms);
    }
    Ok((step, per_rank))
}

/// Deletes checkpoint generations other than `keep_step` (called after a
/// successful manifest commit).
pub fn prune_old(dir: &Path, keep_step: u64) -> std::io::Result<()> {
    let keep = format!("@{keep_step}.ckpt");
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("shard-") && name.ends_with(".ckpt") && !name.ends_with(&keep) {
            std::fs::remove_file(&path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(n: u64) -> Vec<ShardAtom> {
        (0..n)
            .map(|gid| ShardAtom {
                gid: gid * 3,
                pos: Vec3::new(0.5 + gid as f64, -0.0, 1.0e-300),
                vel: Vec3::new(-1.5, gid as f64 * 0.125, f64::MIN_POSITIVE),
            })
            .collect()
    }

    #[test]
    fn shard_files_round_trip_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("mdshard-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let want = atoms(5);
        let path = save_shard(&dir, 1, 4, 12, &want).unwrap();
        let back = load_shard(&path).unwrap();
        assert_eq!(back.rank, 1);
        assert_eq!(back.n_ranks, 4);
        assert_eq!(back.step, 12);
        for (a, b) in back.atoms.iter().zip(&want) {
            assert_eq!(a.gid, b.gid);
            assert_eq!(a.pos.to_array().map(f64::to_bits), b.pos.to_array().map(f64::to_bits));
            assert_eq!(a.vel.to_array().map(f64::to_bits), b.vel.to_array().map(f64::to_bits));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_commit_load_and_prune() {
        let dir = std::env::temp_dir().join(format!("mdshard-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for rank in 0..2 {
            save_shard(&dir, rank, 2, 3, &atoms(2)).unwrap();
            save_shard(&dir, rank, 2, 9, &atoms(2)).unwrap();
        }
        commit_meta(&dir, 9, 2).unwrap();
        prune_old(&dir, 9).unwrap();
        assert!(!dir.join(shard_file_name(0, 3)).exists());
        let (step, per_rank) = load_world(&dir, 2).unwrap();
        assert_eq!(step, 9);
        assert_eq!(per_rank.len(), 2);
        assert!(matches!(
            load_world(&dir, 3),
            Err(CkptError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("mdshard-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = save_shard(&dir, 0, 1, 1, &atoms(3)).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replacen("mdshard", "mdshArd", 1);
        std::fs::write(&path, text).unwrap();
        assert!(matches!(load_shard(&path), Err(CkptError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
