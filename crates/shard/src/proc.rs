//! The process backend: one `mdshard-worker` per shard over Unix-domain
//! sockets.
//!
//! The driver binds one listener per rank, spawns the worker with
//! `--connect <socket> --rank <r> --codec <json|binary>`, and wraps the
//! accepted stream in a [`SocketTransport`]. The control link only boots
//! the worker and carries the step schedule; halo payloads flow over the
//! peer mesh the workers wire among themselves during the boot rounds
//! (rendezvous sockets share `sock_dir`). Because the driver sends a whole
//! round of requests before collecting replies, the workers compute their
//! phases concurrently — this backend is where sharding buys real
//! parallelism.
//!
//! A worker that dies (crash, `kill -9`) surfaces as
//! [`ShardFault::TransportClosed`] on its link at the next send or
//! receive: Rust ignores `SIGPIPE`, so a write to the dead socket returns
//! `BrokenPipe` and a read returns a clean EOF, both mapped to the typed
//! fault. The driver can then resume the whole world from the last
//! committed checkpoint generation via [`ProcessWorld::resume`].

use crate::codec::{Codec, CodecError};
use crate::msg::Msg;
use crate::world::{ShardWorld, Transport, WorldSpec};
use crate::ShardFault;
use md_geometry::SimBox;
use md_sim::System;
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A driver ↔ worker link over a Unix-domain socket.
pub struct SocketTransport {
    rank: usize,
    codec: Codec,
    stream: UnixStream,
}

fn is_closed(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::UnexpectedEof
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::NotConnected
    )
}

impl SocketTransport {
    /// Wraps an accepted stream for `rank`, speaking `codec`.
    pub fn new(rank: usize, codec: Codec, stream: UnixStream) -> SocketTransport {
        SocketTransport {
            rank,
            codec,
            stream,
        }
    }

    fn fault(&self, error: CodecError) -> ShardFault {
        match error {
            CodecError::Truncated => ShardFault::TransportClosed { rank: self.rank },
            CodecError::Io(e) if is_closed(e.kind()) => {
                ShardFault::TransportClosed { rank: self.rank }
            }
            CodecError::Io(e) => ShardFault::Io {
                rank: self.rank,
                error: e,
            },
            other => ShardFault::Codec {
                rank: self.rank,
                error: other,
            },
        }
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, msg: &Msg) -> Result<(), ShardFault> {
        self.codec
            .write_msg(&mut self.stream, msg)
            .map(|_| ())
            .map_err(|e| self.fault(e))
    }

    fn recv(&mut self) -> Result<Msg, ShardFault> {
        self.codec
            .read_msg(&mut self.stream)
            .map_err(|e| self.fault(e))
    }
}

/// A [`ShardWorld`] whose shards are worker processes. Dereferences to the
/// world for stepping, gathering and checkpointing.
pub struct ProcessWorld {
    world: ShardWorld,
    children: Vec<Child>,
}

/// Transports and child handles of a freshly spawned worker fleet.
type SpawnedWorkers = (Vec<Box<dyn Transport>>, Vec<Child>);

fn spawn_workers(
    worker: &Path,
    shards: usize,
    sock_dir: &Path,
    codec: Codec,
) -> Result<SpawnedWorkers, ShardFault> {
    std::fs::create_dir_all(sock_dir).map_err(|error| ShardFault::Io { rank: 0, error })?;
    let mut links: Vec<Box<dyn Transport>> = Vec::with_capacity(shards);
    let mut children = Vec::with_capacity(shards);
    for rank in 0..shards {
        match spawn_one(worker, rank, sock_dir, codec) {
            Ok((link, child)) => {
                links.push(Box::new(link));
                children.push(child);
            }
            Err(fault) => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(fault);
            }
        }
    }
    Ok((links, children))
}

fn spawn_one(
    worker: &Path,
    rank: usize,
    sock_dir: &Path,
    codec: Codec,
) -> Result<(SocketTransport, Child), ShardFault> {
    let sock = sock_dir.join(format!("shard-{rank}.sock"));
    let _ = std::fs::remove_file(&sock);
    let io_fault = |error| ShardFault::Io { rank, error };
    let listener = UnixListener::bind(&sock).map_err(io_fault)?;
    listener.set_nonblocking(true).map_err(io_fault)?;
    let mut child = Command::new(worker)
        .arg("--connect")
        .arg(&sock)
        .arg("--rank")
        .arg(rank.to_string())
        .arg("--codec")
        .arg(codec.name())
        .stdin(Stdio::null())
        .spawn()
        .map_err(|e| ShardFault::WorkerExit {
            rank,
            status: format!("spawn failed: {e}"),
        })?;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(io_fault)?;
                let _ = std::fs::remove_file(&sock);
                return Ok((SocketTransport::new(rank, codec, stream), child));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(ShardFault::WorkerExit {
                        rank,
                        status: format!("exited before connecting: {status}"),
                    });
                }
                if Instant::now() > deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(ShardFault::WorkerExit {
                        rank,
                        status: "never connected within 30s".to_string(),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(error) => return Err(io_fault(error)),
        }
    }
}

impl ProcessWorld {
    /// Spawns `shards` workers (the `mdshard-worker` binary at `worker`)
    /// and partitions `system` across them. `sock_dir` holds the
    /// rendezvous sockets — both the driver ↔ worker boot sockets and the
    /// peer-mesh rendezvous endpoints.
    pub fn spawn(
        system: &System,
        spec: &WorldSpec,
        shards: usize,
        worker: &Path,
        sock_dir: &Path,
        codec: Codec,
    ) -> Result<ProcessWorld, ShardFault> {
        let (links, children) = spawn_workers(worker, shards, sock_dir, codec)?;
        match ShardWorld::with_transports(system, spec, links, &sock_dir.to_string_lossy()) {
            Ok(world) => Ok(ProcessWorld { world, children }),
            Err(fault) => {
                kill_all(children);
                Err(fault)
            }
        }
    }

    /// Spawns fresh workers and resumes the world from the committed
    /// checkpoint generation in `ckpt_dir`.
    pub fn resume(
        ckpt_dir: &Path,
        sim_box: SimBox,
        spec: &WorldSpec,
        shards: usize,
        worker: &Path,
        sock_dir: &Path,
        codec: Codec,
    ) -> Result<ProcessWorld, ShardFault> {
        let (links, children) = spawn_workers(worker, shards, sock_dir, codec)?;
        match ShardWorld::resume_with_transports(
            ckpt_dir,
            sim_box,
            spec,
            links,
            &sock_dir.to_string_lossy(),
        ) {
            Ok(world) => Ok(ProcessWorld { world, children }),
            Err(fault) => {
                kill_all(children);
                Err(fault)
            }
        }
    }

    /// The underlying world.
    pub fn world(&mut self) -> &mut ShardWorld {
        &mut self.world
    }

    /// SIGKILLs one worker (chaos testing): the next protocol round on its
    /// link reports [`ShardFault::TransportClosed`].
    pub fn kill_worker(&mut self, rank: usize) -> std::io::Result<()> {
        self.children[rank].kill()?;
        let _ = self.children[rank].wait();
        Ok(())
    }

    /// Clean shutdown: asks workers to exit, then reaps them (killing any
    /// that ignore the request).
    pub fn shutdown(mut self) {
        self.world.shutdown();
        let deadline = Instant::now() + Duration::from_secs(10);
        for child in &mut self.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                    Err(_) => break,
                }
            }
        }
        self.children.clear();
    }
}

impl std::ops::Deref for ProcessWorld {
    type Target = ShardWorld;
    fn deref(&self) -> &ShardWorld {
        &self.world
    }
}

impl std::ops::DerefMut for ProcessWorld {
    fn deref_mut(&mut self) -> &mut ShardWorld {
        &mut self.world
    }
}

impl Drop for ProcessWorld {
    fn drop(&mut self) {
        kill_all(std::mem::take(&mut self.children));
    }
}

fn kill_all(children: Vec<Child>) {
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Resolves the worker binary: `$MDSHARD_WORKER` if set, else
/// `mdshard-worker` next to the current executable.
pub fn default_worker_path() -> Result<PathBuf, String> {
    if let Ok(p) = std::env::var("MDSHARD_WORKER") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(format!("MDSHARD_WORKER={} does not exist", p.display()));
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe failed: {e}"))?;
    let sibling = exe.with_file_name("mdshard-worker");
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "worker binary not found at {} (build it with `cargo build --release -p md-shard` or set MDSHARD_WORKER)",
            sibling.display()
        ))
    }
}
