//! Slab decomposition geometry: which rank owns a coordinate, and how far
//! a coordinate is from a slab under the periodic metric.
//!
//! The box is cut into `count` equal-width slabs along one axis. Ownership
//! is a half-open interval `[lo, hi)` in wrapped coordinates; ghost
//! membership is decided by the *periodic axis distance* from an atom to a
//! target slab, so the halo works for any slab width — a thin slab simply
//! imports ghosts from more than its two face neighbors (the driver relays
//! all-to-all, there is no nearest-neighbor-only constraint).

use md_geometry::Axis;

/// Equal-width slab partition of a periodic axis.
#[derive(Debug, Clone)]
pub struct ShardLayout {
    axis: Axis,
    length: f64,
    bounds: Vec<f64>,
}

impl ShardLayout {
    /// Cuts `length` (the box extent along `axis`) into `count` slabs.
    ///
    /// # Panics
    /// If `count` is zero or `length` is not positive and finite.
    pub fn new(axis: Axis, length: f64, count: usize) -> ShardLayout {
        assert!(count > 0, "shard count must be positive");
        assert!(
            length > 0.0 && length.is_finite(),
            "bad axis length {length}"
        );
        let bounds = (0..=count)
            .map(|i| length * i as f64 / count as f64)
            .collect();
        ShardLayout {
            axis,
            length,
            bounds,
        }
    }

    /// The decomposition axis.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Number of slabs.
    pub fn count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The `[lo, hi)` interval of `rank`'s slab.
    pub fn slab(&self, rank: usize) -> (f64, f64) {
        (self.bounds[rank], self.bounds[rank + 1])
    }

    /// The rank owning wrapped coordinate `c` (`0 <= c < length`).
    pub fn rank_of(&self, c: f64) -> usize {
        debug_assert!((0.0..self.length).contains(&c), "unwrapped coordinate {c}");
        // The linear guess is exact for equal-width slabs up to boundary
        // rounding; nudge it until the half-open invariant holds so a
        // coordinate sitting exactly on a float boundary lands uniquely.
        let mut r = ((c / self.length) * self.count() as f64) as usize;
        r = r.min(self.count() - 1);
        while r > 0 && c < self.bounds[r] {
            r -= 1;
        }
        while r + 1 < self.count() && c >= self.bounds[r + 1] {
            r += 1;
        }
        r
    }

    /// Periodic distance from wrapped coordinate `c` to `rank`'s slab:
    /// zero inside the slab, otherwise the minimum-image distance to the
    /// nearer slab face. An atom is exported as a ghost to `rank` when
    /// this is `<= reach` (`cutoff + skin`).
    pub fn axis_dist(&self, c: f64, rank: usize) -> f64 {
        let (lo, hi) = self.slab(rank);
        if c >= lo && c < hi {
            return 0.0;
        }
        let d = |a: f64, b: f64| {
            let mut d = (a - b).abs();
            if d > self.length * 0.5 {
                d = self.length - d;
            }
            d
        };
        d(c, lo).min(d(c, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_coordinate_has_exactly_one_owner() {
        let l = ShardLayout::new(Axis::X, 12.0, 4);
        for i in 0..1200 {
            let c = 12.0 * i as f64 / 1200.0;
            let r = l.rank_of(c);
            let (lo, hi) = l.slab(r);
            assert!(c >= lo && c < hi, "c={c} rank={r}");
        }
        assert_eq!(l.rank_of(0.0), 0);
        assert_eq!(l.rank_of(11.999_999), 3);
    }

    #[test]
    fn axis_dist_is_zero_inside_and_wraps_around_the_box() {
        let l = ShardLayout::new(Axis::X, 10.0, 2);
        // Slabs: [0,5) and [5,10).
        assert_eq!(l.axis_dist(2.5, 0), 0.0);
        assert_eq!(l.axis_dist(7.5, 1), 0.0);
        // 7.5 is 2.5 from both faces of slab 0 (direct to 5.0, wrapped to 10≡0).
        assert!((l.axis_dist(7.5, 0) - 2.5).abs() < 1e-12);
        // 9.9 is 0.1 below the wrapped lower face of slab 0.
        assert!((l.axis_dist(9.9, 0) - 0.1).abs() < 1e-12);
        // 0.1 is 0.2 above slab 1's upper face across the boundary.
        assert!((l.axis_dist(0.1, 1) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn thin_slabs_still_partition_and_measure() {
        let l = ShardLayout::new(Axis::Z, 6.0, 6);
        let mut owners = vec![0usize; 6];
        for i in 0..600 {
            owners[l.rank_of(6.0 * i as f64 / 600.0)] += 1;
        }
        assert!(owners.iter().all(|&n| n == 100), "{owners:?}");
        // A point in slab 0 is within 1.5 of slabs 1 and 5, further from 3.
        assert!(l.axis_dist(0.5, 1) <= 0.5);
        assert!(l.axis_dist(0.5, 5) <= 0.5);
        assert!(l.axis_dist(0.5, 3) >= 2.0);
    }
}
