//! Property fuzz of the shard wire codec: every f64 bit pattern must
//! round-trip exactly, and torn / truncated / corrupted frames must come
//! back as typed [`CodecError`]s — never a panic, never a silently wrong
//! message.

use md_geometry::Vec3;
use md_serve::wire::compact;
use md_shard::codec::{self, f64_to_hex, hex_to_f64, CodecError, MAX_FRAME};
use md_shard::{GhostExport, Msg, ShardAtom};
use proptest::collection;
use proptest::prelude::*;

/// Highest gid the wire carries as a plain JSON number (f64-exact).
const MAX_GID: u64 = 1 << 53;

fn vec3_of(bits: (u64, u64, u64)) -> Vec3 {
    Vec3::new(
        f64::from_bits(bits.0),
        f64::from_bits(bits.1),
        f64::from_bits(bits.2),
    )
}

type AtomBits = (u64, (u64, u64, u64), (u64, u64, u64));

fn atoms_of(raw: Vec<AtomBits>) -> Vec<ShardAtom> {
    raw.into_iter()
        .map(|(gid, pos, vel)| ShardAtom {
            gid,
            pos: vec3_of(pos),
            vel: vec3_of(vel),
        })
        .collect()
}

/// The canonical comparison: NaN breaks `PartialEq`, compact re-encoding
/// compares the exact wire bytes instead.
fn wire_bytes(msg: &Msg) -> String {
    compact(&msg.encode())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_f64_bit_pattern_survives_the_hex_trip(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        let back = hex_to_f64(&f64_to_hex(x)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn atom_payloads_round_trip_bit_exactly(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..8,
        ),
    ) {
        let msg = Msg::MigIn { atoms: atoms_of(raw) };
        let frame = codec::encode_frame(&msg.encode());
        let (payload, used) = codec::decode_frame(&frame).unwrap();
        prop_assert_eq!(used, frame.len());
        let back = Msg::decode(&payload).unwrap();
        prop_assert_eq!(wire_bytes(&back), wire_bytes(&msg));
    }

    #[test]
    fn ghost_and_fp_payloads_round_trip_bit_exactly(
        entries in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>())),
            0..6,
        ),
        fp_bits in collection::vec(any::<u64>(), 0..6),
        kick in proptest::bool::ANY,
    ) {
        let ghost = Msg::GhostOut {
            to: vec![GhostExport {
                gids: entries.iter().map(|&(gid, _)| gid).collect(),
                pos: entries.iter().map(|&(_, bits)| vec3_of(bits)).collect(),
            }],
        };
        let fp = Msg::FpIn {
            from: vec![fp_bits.iter().map(|&b| f64::from_bits(b)).collect()],
            kick,
        };
        for msg in [ghost, fp] {
            let frame = codec::encode_frame(&msg.encode());
            let (payload, _) = codec::decode_frame(&frame).unwrap();
            let back = Msg::decode(&payload).unwrap();
            prop_assert_eq!(wire_bytes(&back), wire_bytes(&msg));
        }
    }

    #[test]
    fn torn_frames_are_truncated_errors_at_every_cut(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..4,
        ),
        cut_seed in any::<u64>(),
    ) {
        let frame = codec::encode_frame(&Msg::MigIn { atoms: atoms_of(raw) }.encode());
        let cut = (cut_seed % frame.len() as u64) as usize;
        prop_assert!(matches!(
            codec::decode_frame(&frame[..cut]),
            Err(CodecError::Truncated)
        ));
        // The stream reader reports the same condition.
        let mut stream = std::io::Cursor::new(frame[..cut].to_vec());
        prop_assert!(matches!(
            codec::read_frame(&mut stream),
            Err(CodecError::Truncated)
        ));
    }

    #[test]
    fn corrupted_frames_never_yield_a_different_message(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..4,
        ),
        idx_seed in any::<u64>(),
        bit in 0..8u32,
    ) {
        let msg = Msg::MigIn { atoms: atoms_of(raw) };
        let mut frame = codec::encode_frame(&msg.encode());
        let idx = (idx_seed % frame.len() as u64) as usize;
        frame[idx] ^= 1 << bit;
        match codec::decode_frame(&frame) {
            // Typed rejection is the expected outcome for any single-bit
            // corruption (checksum, framing or length damage).
            Err(
                CodecError::Truncated
                | CodecError::Oversize(_)
                | CodecError::BadChecksum { .. }
                | CodecError::BadJson(_)
                | CodecError::BadField(_)
                | CodecError::Io(_),
            ) => {}
            // Acceptance is sound only if the bytes decode to the very
            // same message (theoretically unreachable for a bit flip).
            Ok((payload, _)) => {
                let back = Msg::decode(&payload);
                prop_assert!(back.is_ok());
                prop_assert_eq!(wire_bytes(&back.unwrap()), wire_bytes(&msg));
            }
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating(
        excess in 1u32..=1024,
        tail in collection::vec(any::<u8>(), 0..16),
    ) {
        let mut frame = (MAX_FRAME + excess).to_le_bytes().to_vec();
        frame.extend(tail);
        prop_assert!(matches!(
            codec::decode_frame(&frame),
            Err(CodecError::Oversize(_))
        ));
        let mut stream = std::io::Cursor::new(frame);
        prop_assert!(matches!(
            codec::read_frame(&mut stream),
            Err(CodecError::Oversize(_))
        ));
    }

    #[test]
    fn garbage_byte_soup_never_panics(bytes in collection::vec(any::<u8>(), 0..64)) {
        // Any outcome is fine; the property is the absence of a panic and
        // of unbounded allocation.
        let _ = codec::decode_frame(&bytes);
        let mut stream = std::io::Cursor::new(bytes);
        let _ = codec::read_frame(&mut stream);
    }

    #[test]
    fn unknown_tags_and_missing_fields_are_bad_field_errors(
        tag_bytes in collection::vec(97u8..=122, 1..8),
    ) {
        use md_sim::metrics::JsonValue;
        // An "x"-prefixed lowercase tag collides with no real message tag.
        let tag = format!("x{}", String::from_utf8(tag_bytes).unwrap());
        let unknown = JsonValue::obj(vec![("t", JsonValue::str(&tag))]);
        prop_assert!(matches!(Msg::decode(&unknown), Err(CodecError::BadField(_))));
        // A real tag with its required fields missing is also typed.
        let hollow = JsonValue::obj(vec![("t", JsonValue::str("fp_in"))]);
        prop_assert!(matches!(Msg::decode(&hollow), Err(CodecError::BadField(_))));
    }
}
