//! Property fuzz of the shard wire codecs — the same battery runs against
//! both the hex-f64 JSON codec and the binary codec: every f64 bit pattern
//! must round-trip exactly, the two codecs must decode to the very same
//! message, and torn / truncated / corrupted / oversized frames must come
//! back as typed [`CodecError`]s — never a panic, never a silently wrong
//! message.

use md_geometry::Vec3;
use md_shard::codec::{f64_to_hex, hex_to_f64, Codec, CodecError, MAX_FRAME};
use md_shard::{GhostExport, Msg, ShardAtom};
use proptest::collection;
use proptest::prelude::*;

/// Highest gid the wire carries as a plain JSON number (the decoder
/// rejects anything above 9.0e15 as not exactly representable).
const MAX_GID: u64 = 9_000_000_000_000_000;

const CODECS: [Codec; 2] = [Codec::Json, Codec::Binary];

fn vec3_of(bits: (u64, u64, u64)) -> Vec3 {
    Vec3::new(
        f64::from_bits(bits.0),
        f64::from_bits(bits.1),
        f64::from_bits(bits.2),
    )
}

type AtomBits = (u64, (u64, u64, u64), (u64, u64, u64));

fn atoms_of(raw: Vec<AtomBits>) -> Vec<ShardAtom> {
    raw.into_iter()
        .map(|(gid, pos, vel)| ShardAtom {
            gid,
            pos: vec3_of(pos),
            vel: vec3_of(vel),
        })
        .collect()
}

/// The canonical comparison: NaN breaks `PartialEq`, so messages are
/// compared through their canonical binary encoding, which preserves every
/// bit pattern.
fn wire_bytes(msg: &Msg) -> Vec<u8> {
    msg.encode_binary()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_f64_bit_pattern_survives_the_hex_trip(bits in any::<u64>()) {
        let x = f64::from_bits(bits);
        let back = hex_to_f64(&f64_to_hex(x)).unwrap();
        prop_assert_eq!(back.to_bits(), bits);
    }

    #[test]
    fn atom_payloads_round_trip_bit_exactly_in_both_codecs(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..8,
        ),
    ) {
        let msg = Msg::MigIn { atoms: atoms_of(raw) };
        for codec in CODECS {
            let frame = codec.encode(&msg);
            let (back, used) = codec.decode(&frame).unwrap();
            prop_assert_eq!(used, frame.len(), "{} consumed", codec.name());
            prop_assert_eq!(wire_bytes(&back), wire_bytes(&msg), "{} bytes", codec.name());
        }
    }

    #[test]
    fn ghost_and_fp_payloads_round_trip_bit_exactly_in_both_codecs(
        entries in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>())),
            0..6,
        ),
        fp_bits in collection::vec(any::<u64>(), 0..6),
    ) {
        let ghosts = Msg::PeerGhosts {
            export: GhostExport {
                gids: entries.iter().map(|&(gid, _)| gid).collect(),
                pos: entries.iter().map(|&(_, bits)| vec3_of(bits)).collect(),
            },
        };
        let fp = Msg::PeerFp {
            fp: fp_bits.iter().map(|&b| f64::from_bits(b)).collect(),
        };
        for msg in [ghosts, fp] {
            for codec in CODECS {
                let frame = codec.encode(&msg);
                let (back, _) = codec.decode(&frame).unwrap();
                prop_assert_eq!(wire_bytes(&back), wire_bytes(&msg), "{}", codec.name());
            }
        }
    }

    #[test]
    fn both_codecs_decode_to_the_same_message(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..8,
        ),
        fp_bits in collection::vec(any::<u64>(), 0..6),
        kick in proptest::bool::ANY,
    ) {
        for msg in [
            Msg::MigIn { atoms: atoms_of(raw) },
            Msg::PeerFp { fp: fp_bits.iter().map(|&b| f64::from_bits(b)).collect() },
            Msg::HaloForce { kick },
        ] {
            let (via_json, _) = Codec::Json.decode(&Codec::Json.encode(&msg)).unwrap();
            let (via_bin, _) = Codec::Binary.decode(&Codec::Binary.encode(&msg)).unwrap();
            prop_assert_eq!(wire_bytes(&via_json), wire_bytes(&via_bin));
        }
    }

    #[test]
    fn torn_frames_are_truncated_errors_at_every_cut(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..4,
        ),
        cut_seed in any::<u64>(),
    ) {
        let msg = Msg::MigIn { atoms: atoms_of(raw) };
        for codec in CODECS {
            let frame = codec.encode(&msg);
            let cut = (cut_seed % frame.len() as u64) as usize;
            prop_assert!(
                matches!(codec.decode(&frame[..cut]), Err(CodecError::Truncated)),
                "{} buffer cut at {cut}", codec.name()
            );
            // The stream reader reports the same condition.
            let mut stream = std::io::Cursor::new(frame[..cut].to_vec());
            let got = codec.read_msg(&mut stream);
            prop_assert!(
                matches!(
                    got,
                    Err(CodecError::Truncated)
                        | Err(CodecError::Io(_))
                ),
                "{} stream cut at {cut}", codec.name()
            );
        }
    }

    #[test]
    fn corrupted_frames_never_yield_a_different_message(
        raw in collection::vec(
            (0..MAX_GID, (any::<u64>(), any::<u64>(), any::<u64>()),
             (any::<u64>(), any::<u64>(), any::<u64>())),
            0..4,
        ),
        idx_seed in any::<u64>(),
        bit in 0..8u32,
    ) {
        let msg = Msg::MigIn { atoms: atoms_of(raw) };
        for codec in CODECS {
            let mut frame = codec.encode(&msg);
            let idx = (idx_seed % frame.len() as u64) as usize;
            frame[idx] ^= 1 << bit;
            match codec.decode(&frame) {
                // Typed rejection is the expected outcome for any
                // single-bit corruption (checksum, framing or length
                // damage).
                Err(
                    CodecError::Truncated
                    | CodecError::Oversize(_)
                    | CodecError::BadChecksum { .. }
                    | CodecError::BadJson(_)
                    | CodecError::BadField(_)
                    | CodecError::Io(_),
                ) => {}
                // Acceptance is sound only if the bytes decode to the
                // very same message (theoretically unreachable for a bit
                // flip inside the checksummed region).
                Ok((back, _)) => {
                    prop_assert_eq!(wire_bytes(&back), wire_bytes(&msg), "{}", codec.name());
                }
            }
        }
    }

    #[test]
    fn trailing_garbage_after_the_payload_is_rejected(
        fp_bits in collection::vec(any::<u64>(), 0..4),
        junk in collection::vec(33u8..=126, 1..8),
    ) {
        // Splice garbage between the payload and the checksum, fixing up
        // the length prefix and checksum so only payload-level validation
        // can catch it. Both codecs must reject with a typed error: JSON
        // parsing stops at the document end, binary decoding demands exact
        // consumption.
        let msg = Msg::PeerFp {
            fp: fp_bits.iter().map(|&b| f64::from_bits(b)).collect(),
        };
        for codec in CODECS {
            let frame = codec.encode(&msg);
            let body = &frame[4..frame.len() - 8];
            let mut spliced = body.to_vec();
            spliced.extend_from_slice(&junk);
            let reframed = md_shard::codec::frame(spliced);
            prop_assert!(
                matches!(
                    codec.decode(&reframed),
                    Err(CodecError::BadJson(_) | CodecError::BadField(_))
                ),
                "{} accepted trailing garbage", codec.name()
            );
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating(
        excess in 1u32..=1024,
        tail in collection::vec(any::<u8>(), 0..16),
    ) {
        let mut frame = (MAX_FRAME + excess).to_le_bytes().to_vec();
        frame.extend(tail);
        for codec in CODECS {
            prop_assert!(matches!(
                codec.decode(&frame),
                Err(CodecError::Oversize(_))
            ));
            let mut stream = std::io::Cursor::new(frame.clone());
            prop_assert!(matches!(
                codec.read_msg(&mut stream),
                Err(CodecError::Oversize(_))
            ));
        }
    }

    #[test]
    fn garbage_byte_soup_never_panics(bytes in collection::vec(any::<u8>(), 0..64)) {
        // Any outcome is fine; the property is the absence of a panic and
        // of unbounded allocation.
        for codec in CODECS {
            let _ = codec.decode(&bytes);
            let mut stream = std::io::Cursor::new(bytes.clone());
            let _ = codec.read_msg(&mut stream);
        }
    }

    #[test]
    fn unknown_tags_and_missing_fields_are_bad_field_errors(
        tag_bytes in collection::vec(97u8..=122, 1..8),
    ) {
        use md_sim::metrics::JsonValue;
        // An "x"-prefixed lowercase tag collides with no real message tag.
        let tag = format!("x{}", String::from_utf8(tag_bytes).unwrap());
        let unknown = JsonValue::obj(vec![("t", JsonValue::str(&tag))]);
        prop_assert!(matches!(Msg::decode(&unknown), Err(CodecError::BadField(_))));
        // A real tag with its required fields missing is also typed.
        let hollow = JsonValue::obj(vec![("t", JsonValue::str("peer_fp"))]);
        prop_assert!(matches!(Msg::decode(&hollow), Err(CodecError::BadField(_))));
        // Binary: an out-of-range tag byte is typed, not a panic.
        prop_assert!(matches!(
            Msg::decode_binary(&[0xC8]),
            Err(CodecError::BadField(_))
        ));
    }
}
