//! Chaos test for the process backend: SIGKILL a worker mid-run, observe a
//! typed fault (not a panic, not a hang), then resume the whole world from
//! the last committed per-shard checkpoint at the exact step it was taken.
//!
//! Resume-vs-clean is *not* bitwise: the resumed world rebuilds its
//! neighbor lists at the restart step, so the rebuild cadence differs from
//! an uninterrupted run and summation order shifts within the 1e-10
//! conformance envelope. Resume-vs-resume, with identical cadence, must be
//! bitwise.

use md_geometry::Vec3;
use md_potential::AnalyticEam;
use md_sim::{PotentialChoice, Simulation, StrategyKind, System};
use md_shard::{Codec, ProcessWorld, ShardFault, WorldSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const FE_MASS: f64 = 55.845;
const CELLS: usize = 5;
const SKIN: f64 = 0.05;
const DT: f64 = 0.002;
const SHARDS: usize = 2;

fn worker_path() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_mdshard-worker"))
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mdshard-chaos-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The seeded start state: same construction as the conformance battery's
/// melt workload, so thermal drift breaches the tight skin within the run.
fn start_system() -> System {
    let (bx, pos) = md_geometry::LatticeSpec::bcc_fe(CELLS).build();
    let sim = Simulation::from_system(System::new(bx, pos, FE_MASS))
        .potential_choice(PotentialChoice::Eam(Arc::new(AnalyticEam::fe())))
        .strategy(StrategyKind::Sdc { dims: 2 })
        .threads(1)
        .skin(SKIN)
        .dt(DT)
        .temperature(300.0)
        .seed(7)
        .build()
        .expect("seed build");
    sim.system().clone()
}

fn spec() -> WorldSpec {
    WorldSpec {
        potential: "fe".to_string(),
        tabulated: false,
        fused: true,
        simd: true,
        strategy: "sdc2d".to_string(),
        threads: 1,
        skin: SKIN,
        dt: DT,
        mass: FE_MASS,
    }
}

fn spawn(start: &System, label: &str, codec: Codec) -> (ProcessWorld, PathBuf) {
    let socks = scratch(label);
    let world = ProcessWorld::spawn(start, &spec(), SHARDS, worker_path(), &socks, codec)
        .expect("spawn workers");
    (world, socks)
}

fn assert_close(a: &[Vec3], b: &[Vec3], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for d in 0..3 {
            assert!(
                (x[d] - y[d]).abs() <= tol,
                "{what}: atom {i} component {d}: {} vs {}",
                x[d],
                y[d]
            );
        }
    }
}

fn assert_bitwise(a: &[Vec3], b: &[Vec3], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: atom count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for d in 0..3 {
            assert_eq!(x[d].to_bits(), y[d].to_bits(), "{what}: atom {i} component {d}");
        }
    }
}

#[test]
fn killed_worker_faults_and_checkpoint_resumes_at_the_exact_step() {
    for codec in [Codec::Json, Codec::Binary] {
        chaos_round_trip(codec);
    }
}

/// One full kill / fault / resume cycle over the peer mesh with the given
/// control+halo codec.
fn chaos_round_trip(codec: Codec) {
    let tag = codec.name();
    let start = start_system();
    let sim_box = *start.sim_box();
    let ckpt = scratch(&format!("ckpt-{tag}"));

    // Uninterrupted reference over the process backend.
    let (mut clean, clean_socks) = spawn(&start, &format!("clean-{tag}"), codec);
    clean.refresh_forces().expect("clean refresh");
    clean.run(10).expect("clean run");
    let (clean_pos, clean_vel) = clean.gather().expect("clean gather");
    clean.shutdown();
    let _ = std::fs::remove_dir_all(&clean_socks);

    // Chaos run: checkpoint at step 5, advance past it, then SIGKILL a
    // worker. The next step must surface a typed fault on that rank.
    let (mut chaos, chaos_socks) = spawn(&start, &format!("chaos-{tag}"), codec);
    chaos.refresh_forces().expect("chaos refresh");
    chaos.run(5).expect("chaos run to checkpoint");
    chaos.save_checkpoint(&ckpt).expect("checkpoint");
    chaos.run(2).expect("chaos run past checkpoint");
    chaos.kill_worker(1).expect("kill worker 1");
    let fault = chaos.step().expect_err("stepping a dead worker must fail");
    match fault {
        ShardFault::TransportClosed { rank } => assert_eq!(rank, 1, "fault rank"),
        // A racing write can surface as a raw I/O error instead of the
        // clean close; both are typed, neither is a panic or a hang.
        ShardFault::Io { rank, .. } => assert_eq!(rank, 1, "fault rank"),
        other => panic!("unexpected fault flavor: {other}"),
    }
    drop(chaos); // reaps the surviving worker
    let _ = std::fs::remove_dir_all(&chaos_socks);

    // Resume from the committed generation: fresh workers, exact step.
    let resume_socks = scratch(&format!("resume-{tag}"));
    let mut resumed = ProcessWorld::resume(
        &ckpt, sim_box, &spec(), SHARDS, worker_path(), &resume_socks, codec,
    )
    .expect("resume");
    assert_eq!(resumed.step_count(), 5, "resume step");
    resumed.refresh_forces().expect("resumed refresh");
    resumed.run(5).expect("resumed run");
    assert_eq!(resumed.step_count(), 10);
    let (res_pos, res_vel) = resumed.gather().expect("resumed gather");
    resumed.shutdown();
    let _ = std::fs::remove_dir_all(&resume_socks);

    assert_close(&clean_pos, &res_pos, 1e-10, "resume-vs-clean pos");
    assert_close(&clean_vel, &res_vel, 1e-10, "resume-vs-clean vel");

    // Determinism of the recovery path itself: a second resume from the
    // same generation replays the first bit for bit.
    let again_socks = scratch(&format!("again-{tag}"));
    let mut again = ProcessWorld::resume(
        &ckpt, sim_box, &spec(), SHARDS, worker_path(), &again_socks, codec,
    )
    .expect("second resume");
    again.refresh_forces().expect("second resumed refresh");
    again.run(5).expect("second resumed run");
    let (again_pos, again_vel) = again.gather().expect("second gather");
    again.shutdown();
    let _ = std::fs::remove_dir_all(&again_socks);
    let _ = std::fs::remove_dir_all(&ckpt);

    assert_bitwise(&res_pos, &again_pos, "resume-vs-resume pos");
    assert_bitwise(&res_vel, &again_vel, "resume-vs-resume vel");
}
