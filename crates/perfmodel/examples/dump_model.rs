fn main() {
    use md_perfmodel::*;
    use sdc_core::StrategyKind as K;
    let m = MachineParams::default();
    for case in 1..=4 {
        let c = CaseGeometry::paper_case(case);
        print!("case {case}: ");
        for kind in [K::Sdc{dims:1}, K::Sdc{dims:2}, K::Sdc{dims:3}, K::Critical, K::Atomic, K::Privatized, K::Redundant] {
            print!("{}: ", kind);
            for p in [2usize,4,8,12,16] {
                match speedup(&m, &c, kind, p) { Some(s)=>print!("{s:.2} "), None=>print!("--- ") }
            }
            print!("| ");
        }
        println!();
    }
}
