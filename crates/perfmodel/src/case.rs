//! Workload geometry.
//!
//! The model needs only the *geometry* of a test case — atom count, stored
//! pair count, box dimensions — plus the real decomposition the SDC engine
//! would build. For the paper's perfect BCC iron crystals all of these are
//! exact closed forms: within the 5.67 Å cutoff every atom has 58 neighbors
//! (8+6+12+24+8 shells), i.e. 29 stored half-pairs per atom.

use md_geometry::{LatticeSpec, Vec3};
use sdc_core::{ColoredDecomposition, DecompositionConfig, DecompositionError};

/// Stored half-pairs per atom in perfect BCC iron with `r_c = 5.67 Å`.
pub const FE_PAIRS_PER_ATOM: f64 = 29.0;

/// Fe EAM cutoff used throughout the paper reproduction (Å).
pub const FE_CUTOFF: f64 = 5.67;

/// Geometry of one benchmark case.
#[derive(Debug, Clone)]
pub struct CaseGeometry {
    /// Human-readable name ("small", "medium", …).
    pub name: String,
    /// Number of atoms.
    pub n_atoms: usize,
    /// Stored half-pairs.
    pub pairs: f64,
    box_lengths: Vec3,
    range: f64,
}

impl CaseGeometry {
    /// One of the paper's four test cases (§III.B):
    /// 54,000 / 265,302 / 1,062,882 / 3,456,000 BCC Fe atoms.
    pub fn paper_case(case: usize) -> CaseGeometry {
        let spec = LatticeSpec::paper_case(case);
        let name = match case {
            1 => "small(1)",
            2 => "medium(2)",
            3 => "large(3)",
            _ => "large(4)",
        };
        CaseGeometry::from_lattice(name, spec, FE_CUTOFF, FE_PAIRS_PER_ATOM)
    }

    /// Builds a case from any lattice spec.
    pub fn from_lattice(
        name: &str,
        spec: LatticeSpec,
        range: f64,
        pairs_per_atom: f64,
    ) -> CaseGeometry {
        let n = spec.atom_count();
        CaseGeometry {
            name: name.to_string(),
            n_atoms: n,
            pairs: n as f64 * pairs_per_atom,
            box_lengths: spec.sim_box().lengths(),
            range,
        }
    }

    /// Interaction range the decomposition uses.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Box edge lengths.
    #[inline]
    pub fn box_lengths(&self) -> Vec3 {
        self.box_lengths
    }

    /// The real SDC decomposition for this case and dimensionality — the
    /// exact same code path the execution engine uses, so task counts and
    /// colors in the model are the engine's, not an approximation.
    pub fn decomposition(&self, dims: usize) -> Result<ColoredDecomposition, DecompositionError> {
        let sim_box = md_geometry::SimBox::periodic(self.box_lengths);
        ColoredDecomposition::new(&sim_box, DecompositionConfig::new(dims, self.range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cases_have_exact_atom_counts() {
        assert_eq!(CaseGeometry::paper_case(1).n_atoms, 54_000);
        assert_eq!(CaseGeometry::paper_case(2).n_atoms, 265_302);
        assert_eq!(CaseGeometry::paper_case(3).n_atoms, 1_062_882);
        assert_eq!(CaseGeometry::paper_case(4).n_atoms, 3_456_000);
    }

    #[test]
    fn pairs_scale_with_atoms() {
        let c = CaseGeometry::paper_case(1);
        assert_eq!(c.pairs, 54_000.0 * 29.0);
    }

    #[test]
    fn decompositions_follow_case_size() {
        // Small case: 86 Å box → 6 even subdomains per axis (floor 7.58).
        let small = CaseGeometry::paper_case(1);
        let d1 = small.decomposition(1).unwrap();
        assert_eq!(d1.counts(), [6, 1, 1]);
        // Large case 4: 344 Å box → 30 per axis.
        let large = CaseGeometry::paper_case(4);
        let d3 = large.decomposition(3).unwrap();
        assert_eq!(d3.counts(), [30, 30, 30]);
        // Paper §II.B: "nearly 5000 subdomains with each color in large test
        // case" — 30³/8 = 3375, same order.
        assert!(d3.subdomains_per_color() >= 3000);
    }

    #[test]
    fn verified_against_real_neighbor_list() {
        // The closed-form 29 pairs/atom matches an actual Verlet build.
        use md_neighbor::{NeighborList, VerletConfig};
        let spec = LatticeSpec::bcc_fe(5);
        let (bx, pos) = spec.build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.0));
        let per_atom = nl.entries() as f64 / pos.len() as f64;
        assert!((per_atom - FE_PAIRS_PER_ATOM).abs() < 1e-9, "{per_atom}");
    }
}
