//! Observed (measured) load imbalance, bridging the metrics layer to the
//! analytic model.
//!
//! The model side of Table 1 predicts SDC's per-sweep barrier cost as
//! `colors × barrier(P)` ([`crate::MachineParams::barrier`]) on top of a
//! *perfectly balanced* round-based makespan. The observability layer
//! (`md-sim::metrics`) measures the real thing: per-color wall times and
//! per-thread busy times, whose difference is what threads actually spent
//! waiting at color barriers. [`ObservedImbalance`] holds those measured
//! numbers — extracted from a `ScatterMetrics` bundle or a run report — and
//! compares them against the model, closing the predicted-vs-observed loop
//! that makes perf PRs verifiable instead of anecdotal.

use crate::machine::MachineParams;

/// Measured per-thread busy/wall data for the color regions of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedImbalance {
    /// Busy nanoseconds per worker thread inside subdomain tasks.
    pub thread_busy_ns: Vec<u64>,
    /// Total wall nanoseconds across all color parallel regions.
    pub color_wall_ns: u64,
    /// Number of color barriers executed (colors × sweeps).
    pub barriers: u64,
}

impl ObservedImbalance {
    /// Builds from raw measurements. `thread_busy_ns` must have one entry
    /// per worker.
    pub fn new(thread_busy_ns: Vec<u64>, color_wall_ns: u64, barriers: u64) -> ObservedImbalance {
        ObservedImbalance {
            thread_busy_ns,
            color_wall_ns,
            barriers,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.thread_busy_ns.len()
    }

    /// Load-imbalance factor: busiest worker over the mean (≥ 1.0; exactly
    /// 1.0 when perfectly balanced or when nothing was measured).
    pub fn imbalance_factor(&self) -> f64 {
        let n = self.thread_busy_ns.len();
        if n == 0 {
            return 1.0;
        }
        let sum: u64 = self.thread_busy_ns.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let max = *self.thread_busy_ns.iter().max().unwrap() as f64;
        max / (sum as f64 / n as f64)
    }

    /// Parallel efficiency inside the color regions: useful busy work over
    /// `threads × wall` (1.0 = no idle time at barriers).
    pub fn efficiency(&self) -> f64 {
        let n = self.thread_busy_ns.len();
        if n == 0 || self.color_wall_ns == 0 {
            return 1.0;
        }
        let sum: u64 = self.thread_busy_ns.iter().sum();
        (sum as f64 / (n as f64 * self.color_wall_ns as f64)).min(1.0)
    }

    /// Total measured wait: `threads × wall − Σ busy`, in seconds — the
    /// aggregate time workers spent idle at color barriers.
    pub fn total_wait_seconds(&self) -> f64 {
        let n = self.thread_busy_ns.len() as f64;
        let busy: u64 = self.thread_busy_ns.iter().sum();
        ((n * self.color_wall_ns as f64) - busy as f64).max(0.0) * 1e-9
    }

    /// Mean measured wait per barrier per thread, seconds. This is the
    /// quantity the model's [`MachineParams::barrier`] term predicts.
    pub fn mean_barrier_wait_seconds(&self) -> f64 {
        let events = self.barriers as f64 * self.thread_busy_ns.len() as f64;
        if events == 0.0 {
            return 0.0;
        }
        self.total_wait_seconds() / events
    }

    /// The model's prediction for the same quantity at this thread count.
    pub fn predicted_barrier_wait_seconds(&self, machine: &MachineParams) -> f64 {
        machine.barrier(self.threads().max(1))
    }

    /// Observed-over-predicted barrier wait. Near 1 means Table 1's barrier
    /// constants describe this host; ≫ 1 means real imbalance (or a loaded
    /// machine) exceeds the modeled fork-join cost, and the *measured*
    /// number is the one to trust.
    pub fn barrier_wait_ratio(&self, machine: &MachineParams) -> f64 {
        let predicted = self.predicted_barrier_wait_seconds(machine);
        if predicted <= 0.0 {
            return f64::INFINITY;
        }
        self.mean_barrier_wait_seconds() / predicted
    }

    /// Observed imbalance relative to what the active plan *predicts*:
    /// [`ObservedImbalance::imbalance_factor`] over the plan's thread-aware
    /// imbalance (`SdcPlan::imbalance_threaded`, `max thread-bin / mean
    /// thread-bin` under LPT packing — **not** the per-subdomain
    /// `SdcPlan::imbalance`, which overstates barrier wait whenever
    /// subdomains outnumber threads).
    ///
    /// Near 1 means threads wait exactly as much as the pair-count skew
    /// forces them to — re-planning cannot help. Substantially above 1 means
    /// the load moved since the plan was costed (atoms drifted, a cluster
    /// heated up) and a re-plan is worth its cost; the balancer's mid-run
    /// trigger compares this ratio against its threshold.
    pub fn excess_over_plan(&self, planned_imbalance: f64) -> f64 {
        self.imbalance_factor() / planned_imbalance.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_threads_have_factor_one_and_full_efficiency() {
        let o = ObservedImbalance::new(vec![1_000, 1_000], 1_000, 2);
        assert_eq!(o.imbalance_factor(), 1.0);
        assert_eq!(o.efficiency(), 1.0);
        assert_eq!(o.total_wait_seconds(), 0.0);
        assert_eq!(o.mean_barrier_wait_seconds(), 0.0);
    }

    #[test]
    fn skewed_threads_show_imbalance_and_wait() {
        // Wall 1000 ns over 2 colors; thread 0 busy 900, thread 1 busy 300.
        let o = ObservedImbalance::new(vec![900, 300], 1_000, 2);
        assert!((o.imbalance_factor() - 1.5).abs() < 1e-12);
        assert!((o.efficiency() - 0.6).abs() < 1e-12);
        // Total wait = 2×1000 − 1200 = 800 ns over 2 barriers × 2 threads.
        assert!((o.total_wait_seconds() - 800e-9).abs() < 1e-18);
        assert!((o.mean_barrier_wait_seconds() - 200e-9).abs() < 1e-18);
    }

    #[test]
    fn excess_over_plan_normalizes_by_the_predicted_imbalance() {
        let o = ObservedImbalance::new(vec![900, 300], 1_000, 2);
        // Observed factor 1.5; a plan that already predicted 1.5 explains
        // all of it, a perfectly balanced plan none of it.
        assert!((o.excess_over_plan(1.5) - 1.0).abs() < 1e-12);
        assert!((o.excess_over_plan(1.0) - 1.5).abs() < 1e-12);
        // Degenerate planned values clamp to 1 instead of dividing by < 1.
        assert!((o.excess_over_plan(0.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_measurements_degrade_gracefully() {
        let o = ObservedImbalance::new(vec![], 0, 0);
        assert_eq!(o.imbalance_factor(), 1.0);
        assert_eq!(o.efficiency(), 1.0);
        assert_eq!(o.mean_barrier_wait_seconds(), 0.0);
    }

    #[test]
    fn comparison_against_the_model_barrier_term() {
        let machine = MachineParams::default();
        // Make the observed wait exactly the model's barrier(2) per event.
        let predicted = machine.barrier(2);
        let wall = 1_000_000u64;
        let barriers = 4u64;
        // wait/event = (2·wall − Σbusy)/(barriers·2) = predicted
        // ⇒ Σbusy = 2·wall − predicted·barriers·2 (in ns).
        let total_busy = 2.0 * wall as f64 - predicted * 1e9 * barriers as f64 * 2.0;
        let per_thread = (total_busy / 2.0) as u64;
        let o = ObservedImbalance::new(vec![per_thread, per_thread], wall, barriers);
        let ratio = o.barrier_wait_ratio(&machine);
        assert!((ratio - 1.0).abs() < 1e-3, "ratio = {ratio}");
        assert_eq!(o.predicted_barrier_wait_seconds(&machine), predicted);
    }
}
