//! The per-strategy time predictions (see the crate docs for the formulas).

use crate::case::CaseGeometry;
use crate::machine::MachineParams;
use sdc_core::StrategyKind;

/// Predicted wall-clock seconds per time-step for the paper's timed phases
/// (density + force sweeps).
///
/// Returns `None` for configurations the paper leaves blank: an SDC
/// decomposition that cannot be built (box too small for `dims`), or one
/// whose total subdomain count is below the thread count (Table 1's blank
/// cells — some threads would always idle).
pub fn predict_seconds(
    m: &MachineParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
) -> Option<f64> {
    assert!(threads >= 1, "thread count must be ≥ 1");
    let sweeps = m.sweeps as f64;
    let w_sweep = case.pairs * m.pair_cost; // serial work of one sweep
    let p = threads as f64;
    let ovh = m.overhead(threads);
    match kind {
        StrategyKind::Serial => Some(sweeps * w_sweep),
        StrategyKind::Sdc { dims } => {
            let decomp = case.decomposition(dims).ok()?;
            let total = decomp.subdomain_count();
            if total < threads {
                return None; // the paper's blank-cell rule
            }
            let colors = decomp.color_count();
            let per_color = decomp.subdomains_per_color();
            // Halo-traffic locality factor: ratio of (subdomain + r_c halo)
            // volume to subdomain volume over the decomposed axes.
            let counts = decomp.counts();
            let lengths = case.box_lengths();
            let mut halo_ratio = 1.0;
            for d in 0..dims {
                let edge = lengths[d] / counts[d] as f64;
                halo_ratio *= (edge + 2.0 * case.range()) / edge;
            }
            let locality = 1.0 + m.halo_kappa * (halo_ratio - 1.0);
            // Uniform crystal: equal tasks. Makespan in rounds of P tasks;
            // the final partial round overlaps partially (round_overlap).
            let task = w_sweep / total as f64 * locality;
            let frac = per_color as f64 / threads as f64;
            let ceil = per_color.div_ceil(threads) as f64;
            let rounds = (frac + m.round_overlap * (ceil - frac)).max(1.0);
            let per_sweep = colors as f64 * (rounds * task * ovh + m.barrier(threads));
            Some(sweeps * per_sweep)
        }
        StrategyKind::TaskGraph { dims } => {
            let decomp = case.decomposition(dims).ok()?;
            let total = decomp.subdomain_count();
            if total < threads {
                return None; // the paper's blank-cell rule
            }
            // Same halo-locality factor as barriered SDC — the tasks are the
            // same subdomains, only the synchronization changes.
            let counts = decomp.counts();
            let lengths = case.box_lengths();
            let mut halo_ratio = 1.0;
            for d in 0..dims {
                let edge = lengths[d] / counts[d] as f64;
                halo_ratio *= (edge + 2.0 * case.range()) / edge;
            }
            let locality = 1.0 + m.halo_kappa * (halo_ratio - 1.0);
            let task = w_sweep / total as f64 * locality;
            // Dependency-driven execution: no color serialization, so the
            // round count is over *all* tasks, and the only synchronization
            // is the final pool join (one barrier per sweep instead of one
            // per color). Uniform crystal ⇒ the critical path is shorter
            // than total/P whenever total ≥ P, so the work term dominates.
            let frac = total as f64 / p;
            let ceil = total.div_ceil(threads) as f64;
            let rounds = (frac + m.round_overlap * (ceil - frac)).max(1.0);
            let per_sweep = rounds * task * ovh + m.barrier(threads);
            Some(sweeps * per_sweep)
        }
        StrategyKind::Critical => {
            let locked = case.pairs * m.lock_cost * (1.0 + m.lock_contention * (p - 1.0));
            Some(sweeps * (w_sweep / p * ovh + locked))
        }
        StrategyKind::Atomic => {
            let synced = case.pairs * m.atomic_cost * (1.0 + m.atomic_contention * (p - 1.0));
            Some(sweeps * (w_sweep / p * ovh + synced) + sweeps * m.barrier(threads))
        }
        StrategyKind::Locks => {
            // Two uncontended lock round-trips per pair, spread over the
            // stripe pool; contention grows slowly (collision probability
            // ~ P / stripes) — parallelizable but overhead-heavy.
            let synced = case.pairs
                * (2.0 * m.lock_cost)
                * (1.0 + m.atomic_contention * (p - 1.0))
                / p;
            Some(sweeps * (w_sweep / p * ovh + synced) + sweeps * m.barrier(threads))
        }
        StrategyKind::LocalWrite => {
            // Boundary pairs cost a second kernel evaluation; writes need
            // no synchronization at all (one barrier per sweep).
            let work = w_sweep * (1.0 + m.lw_boundary_frac);
            Some(sweeps * (work / p * ovh + m.barrier(threads)))
        }
        StrategyKind::Privatized => {
            let compute = w_sweep / p * ovh * (1.0 + m.sap_cache * (p - 1.0));
            let init = case.n_atoms as f64 * m.zero_cost;
            let merge = p * case.n_atoms as f64 * m.merge_cost;
            Some(sweeps * (compute + init + merge))
        }
        StrategyKind::Redundant => {
            Some(sweeps * (m.rc_work * w_sweep / p * ovh + m.barrier(threads)))
        }
    }
}

/// Speedup versus the serial sweep: the paper's reported metric.
///
/// ```
/// use md_perfmodel::{speedup, CaseGeometry, MachineParams};
/// use sdc_core::StrategyKind;
///
/// let m = MachineParams::default();
/// let case = CaseGeometry::paper_case(3); // 1,062,882 atoms
/// let s = speedup(&m, &case, StrategyKind::Sdc { dims: 2 }, 16).unwrap();
/// assert!(s > 10.0, "paper Table 1 reports 12.31 here");
/// // Blank cell: 1-D SDC on the small case cannot feed 16 threads.
/// let small = CaseGeometry::paper_case(1);
/// assert!(speedup(&m, &small, StrategyKind::Sdc { dims: 1 }, 16).is_none());
/// ```
pub fn speedup(
    m: &MachineParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
) -> Option<f64> {
    let serial = predict_seconds(m, case, StrategyKind::Serial, 1).unwrap();
    predict_seconds(m, case, kind, threads).map(|t| serial / t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineParams {
        MachineParams::default()
    }

    fn sp(case: usize, kind: StrategyKind, p: usize) -> Option<f64> {
        speedup(&m(), &CaseGeometry::paper_case(case), kind, p)
    }

    const SDC2: StrategyKind = StrategyKind::Sdc { dims: 2 };
    const SDC1: StrategyKind = StrategyKind::Sdc { dims: 1 };
    const SDC3: StrategyKind = StrategyKind::Sdc { dims: 3 };

    #[test]
    fn serial_speedup_is_one() {
        assert_eq!(sp(2, StrategyKind::Serial, 1), Some(1.0));
    }

    #[test]
    fn no_strategy_beats_the_thread_count() {
        for case in 1..=4 {
            for kind in StrategyKind::all() {
                for p in [1, 2, 3, 4, 8, 12, 16] {
                    if let Some(s) = sp(case, kind, p) {
                        assert!(
                            s <= p as f64 + 1e-9,
                            "{kind} case {case} P={p}: speedup {s} > P"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sdc_2d_is_near_linear_on_large_cases() {
        // Paper Table 1: 2-D SDC reaches 12.31 / 12.42 at 16 cores on the
        // large cases.
        for case in [3, 4] {
            let s16 = sp(case, SDC2, 16).unwrap();
            assert!((9.0..=14.5).contains(&s16), "case {case}: {s16}");
            let s2 = sp(case, SDC2, 2).unwrap();
            assert!((1.6..=2.0).contains(&s2), "case {case}: {s2}");
        }
    }

    #[test]
    fn sdc_speedup_grows_with_cores_on_large_cases() {
        for case in [3, 4] {
            let mut prev = 0.0;
            for p in [2, 3, 4, 8, 12, 16] {
                let s = sp(case, SDC2, p).unwrap();
                assert!(
                    s >= prev - 0.25,
                    "case {case}: speedup dropped {prev} → {s} at P={p}"
                );
                prev = s;
            }
        }
    }

    #[test]
    fn one_dimensional_sdc_saturates_at_its_subdomain_count() {
        // Large case 3: 20 slabs → 10 per color; speedups at 12 and 16
        // threads stay pinned near 10 (paper: 9.76, 9.59).
        let s12 = sp(3, SDC1, 12).unwrap();
        let s16 = sp(3, SDC1, 16).unwrap();
        assert!((7.5..=10.0).contains(&s12), "{s12}");
        assert!((s16 - s12).abs() < 1.0, "saturated: {s12} vs {s16}");
        // And 2-D SDC clearly beats it at 16 threads (paper: 12.31 vs 9.59).
        assert!(sp(3, SDC2, 16).unwrap() > s16 + 1.0);
    }

    #[test]
    fn taskgraph_never_loses_to_barriered_sdc_at_the_same_dims() {
        // Same subdomain tasks, same locality — the graph drops the per-color
        // serialization and all but one barrier per sweep, so its predicted
        // time can only improve. Blank cells must also coincide.
        for case in 1..=4 {
            for dims in 1..=3 {
                for p in [1, 2, 4, 8, 16] {
                    let sdc = sp(case, StrategyKind::Sdc { dims }, p);
                    let tg = sp(case, StrategyKind::TaskGraph { dims }, p);
                    assert_eq!(sdc.is_some(), tg.is_some(), "case {case} d{dims} P={p}");
                    if let (Some(sdc), Some(tg)) = (sdc, tg) {
                        assert!(
                            tg >= sdc - 1e-9,
                            "case {case} d{dims} P={p}: graph speedup {tg} < barriered {sdc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn table1_blank_cells_are_none() {
        // Small case: 6 slabs total → 1-D SDC blank at 8, 12, 16 threads
        // (the paper's blanks at 12/16; our maximal-even rule yields 6
        // subdomains so 8 is blank too — documented in EXPERIMENTS.md).
        assert!(sp(1, SDC1, 12).is_none());
        assert!(sp(1, SDC1, 16).is_none());
        // Medium case: 12 slabs → runs at 12 threads, blank at 16 (paper).
        assert!(sp(2, SDC1, 12).is_some());
        assert!(sp(2, SDC1, 16).is_none());
        // 2-D / 3-D never blank on any paper case (paper Table 1).
        for case in 1..=4 {
            for p in [2, 3, 4, 8, 12, 16] {
                assert!(sp(case, SDC2, p).is_some(), "2D case {case} P={p}");
                assert!(sp(case, SDC3, p).is_some(), "3D case {case} P={p}");
            }
        }
    }

    #[test]
    fn critical_section_is_slowest_and_flat() {
        // Paper: "CS method achieves lowest efficiency… not feasible".
        for case in 1..=4 {
            for p in [2, 4, 8, 16] {
                let cs = sp(case, StrategyKind::Critical, p).unwrap();
                assert!(cs < 2.0, "case {case} P={p}: CS speedup {cs}");
                let sdc = sp(case, SDC2, p).unwrap();
                assert!(cs < sdc, "CS must lose to SDC");
                let sap = sp(case, StrategyKind::Privatized, p).unwrap();
                let rc = sp(case, StrategyKind::Redundant, p).unwrap();
                assert!(cs < sap && cs < rc, "CS must be the slowest");
            }
        }
    }

    #[test]
    fn sap_degrades_past_eight_cores() {
        // Paper: SAP beats RC below 8 cores, then degrades (serialized
        // merge + cache pressure).
        for case in [2, 3, 4] {
            let sap4 = sp(case, StrategyKind::Privatized, 4).unwrap();
            let rc4 = sp(case, StrategyKind::Redundant, 4).unwrap();
            assert!(sap4 > rc4, "case {case}: SAP({sap4}) ≤ RC({rc4}) at 4 cores");
            let sap8 = sp(case, StrategyKind::Privatized, 8).unwrap();
            let sap16 = sp(case, StrategyKind::Privatized, 16).unwrap();
            assert!(
                sap16 < sap8 * 1.15,
                "case {case}: SAP kept scaling past 8 ({sap8} → {sap16})"
            );
            let rc16 = sp(case, StrategyKind::Redundant, 16).unwrap();
            assert!(rc16 > sap16, "case {case}: RC must win at 16 cores");
        }
    }

    #[test]
    fn rc_is_near_linear_at_half_slope_and_sdc_wins_by_about_1_7() {
        // Paper §IV: "RC method achieves a nearly linear speedup… SDC can
        // gain about 1.7-fold increase in performance as compared to RC on
        // medium and large test cases."
        for case in [2, 3, 4] {
            let rc16 = sp(case, StrategyKind::Redundant, 16).unwrap();
            assert!((5.5..=9.0).contains(&rc16), "case {case}: RC(16) = {rc16}");
            let sdc16 = sp(case, SDC2, 16).unwrap();
            let ratio = sdc16 / rc16;
            assert!(
                (1.35..=2.1).contains(&ratio),
                "case {case}: SDC/RC = {ratio}"
            );
        }
    }

    #[test]
    fn three_dimensional_sdc_tracks_two_dimensional_closely() {
        // Paper Table 1: 2-D and 3-D SDC are within ~2% of each other on
        // the large cases (12.31 vs 12.29; 12.42 vs 12.34) — 3-D's extra
        // fork-join overhead roughly cancels its finer task granularity.
        // The model reproduces that near-tie to within 15%.
        for case in [2, 3, 4] {
            let s2 = sp(case, SDC2, 16).unwrap();
            let s3 = sp(case, SDC3, 16).unwrap();
            let rel = (s3 / s2 - 1.0).abs();
            assert!(rel < 0.15, "case {case}: 3D {s3} vs 2D {s2} ({rel:.3})");
        }
    }

    #[test]
    fn speedup_improves_with_case_size_for_sdc() {
        // Paper §IV: performance improves "with the increase in the number
        // of atoms".
        let small = sp(1, SDC2, 16).unwrap();
        let large = sp(4, SDC2, 16).unwrap();
        assert!(large > small, "large {large} vs small {small}");
    }

    #[test]
    fn atomic_sits_between_cs_and_sdc() {
        for p in [4, 16] {
            let cs = sp(3, StrategyKind::Critical, p).unwrap();
            let at = sp(3, StrategyKind::Atomic, p).unwrap();
            let sdc = sp(3, SDC2, p).unwrap();
            assert!(cs < at && at < sdc, "P={p}: {cs} < {at} < {sdc} violated");
        }
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn zero_threads_rejected() {
        let _ = sp(1, StrategyKind::Serial, 0);
    }
}
