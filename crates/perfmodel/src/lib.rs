//! # md-perfmodel
//!
//! A calibrated multicore **cost model** for the irregular-reduction
//! strategies of `sdc-core`.
//!
//! ## Why this exists (substitution note)
//!
//! The paper's evaluation (Table 1, Fig. 9) reports *speedup versus core
//! count* on a 4-socket, 16-core Xeon E7320. The present reproduction
//! environment exposes **one** CPU, so wall-clock speedup cannot physically
//! materialize — any thread count collapses onto the same core. Following
//! the reproduction ground rules ("if the paper requires hardware you do not
//! have, simulate it"), this crate models the parallel execution of each
//! strategy analytically and *deterministically*, driven by:
//!
//! * the **real decomposition geometry** from `sdc-core` (subdomain counts,
//!   colors, tasks per color — the same code the real engine runs), and
//! * a **per-pair kernel cost calibrated on the host** by timing the real
//!   serial EAM sweeps (see the bench harness), plus documented
//!   synchronization constants.
//!
//! The model computes, per strategy and thread count `P`:
//!
//! | strategy | modeled time per sweep |
//! |---|---|
//! | Serial | `pairs·c_pair` |
//! | SDC | `Σ_colors ceil(tasks_c/P)·w·ovh(P) + colors·barrier(P)` — round-based makespan of equal subdomain tasks, plus one barrier per color |
//! | CS | `W/P·ovh(P) + pairs·c_lock·(1 + λ(P−1))` — compute scales, lock traffic is serialized and degrades with contention |
//! | Atomic | `W/P·ovh(P) + pairs·c_atomic·(1 + λₐ(P−1))` |
//! | Locks | `W/P·ovh(P) + pairs·2c_lock·(1 + λₐ(P−1))/P` — striped locks parallelize but pay two lock round-trips per pair |
//! | LOCALWRITE | `W·(1 + boundary_frac)/P·ovh(P) + barrier(P)` — class 3: no sync, boundary pairs computed twice |
//! | SAP | `W/P·ovh(P)·(1 + σ(P−1)) + N·c_zero + P·N·c_merge` — private-copy cache pressure plus the serialized merge |
//! | RC | `κ_rc·W/P·ovh(P) + barrier(P)` — doubled pair work, one barrier |
//!
//! with `ovh(P) = 1 + μ·ln P` the shared-memory-bandwidth degradation.
//! Speedup is `T(serial) / T(strategy, P)` — the paper's metric, over the
//! paper's timed phases (density + force: `sweeps = 2`).
//!
//! The *shape* claims of the paper are encoded as unit tests: SDC ≈ linear
//! and best overall; CS worst and flat below ~1.5; SAP competitive at low P
//! but degrading past 8; RC near-linear at half slope with SDC/RC ≈ 1.7 on
//! large cases; 1-D SDC saturating at its subdomain count.

#![warn(missing_docs)]

pub mod balance;
pub mod case;
pub mod machine;
pub mod model;
pub mod observed;
pub mod rebuild;
pub mod shard;
pub mod table;

pub use balance::{
    makespan_params, predicted_graph_seconds, predicted_schedule_seconds, ObservedMakespan,
};
pub use case::CaseGeometry;
pub use machine::MachineParams;
pub use observed::ObservedImbalance;
pub use model::{predict_seconds, speedup};
pub use rebuild::{predict_step_with_rebuild, rebuild_seconds, speedup_with_rebuild};
pub use shard::{predict_shard_step, shard_speedup, ShardLinkParams};
pub use table::{
    fig9_rows, table1_rows, table1_rows_with_rebuild, Fig9Row, Table1Row, FIG9_STRATEGIES,
    THREAD_SWEEP,
};
