//! Inter-shard halo-exchange cost: extends the per-step model with the
//! `md-shard` decomposition's overheads.
//!
//! A sharded run (`mdrun --shards S`) splits the box into S slabs along one
//! axis. Each shard sweeps its owned atoms **plus** a ghost halo of width
//! `r_c + skin` imported from the neighboring slabs, so the compute side
//! carries redundant work proportional to the ghost fraction; on top of
//! that every step pays the wire protocol (position + embedding-derivative
//! exchanges), and every neighbor-list rebuild pays a **repartition**: atom
//! migration across slab boundaries plus re-selection of the ghost export
//! sets. This module prices all three terms:
//!
//! ```text
//! t_shard(S, P) = t_sweep(P)·(1/S + g(S))          redundant halo compute
//!               + t_rebuild(P)·(1/S + g(S))/every  amortized local rebuild
//!               + exchange(S)                      per-step wire traffic
//!               + repartition(S)/every             amortized migration
//! ```
//!
//! with `g(S)` the ghost fraction of [`ghost_fraction`]. The model exposes
//! the same shape facts the conformance battery measures: near-linear
//! scaling while slabs are wide and compute dominates, saturation once the
//! slab width falls under the interaction range (every shard then ghosts
//! most of the box), and a repartition term that amortizes away with the
//! rebuild interval.

use crate::case::CaseGeometry;
use crate::machine::MachineParams;
use crate::model::predict_seconds;
use crate::rebuild::{predict_step_with_rebuild, rebuild_seconds};
use sdc_core::StrategyKind;

/// Wire and migration constants of one driver ↔ shard link (the framed
/// compact-JSON codec of `md-shard` over Unix-domain sockets). Order of
/// magnitude from timing the codec round trip on the host; the *shape* of
/// the model, not the absolute numbers, carries the claims.
#[derive(Debug, Clone)]
pub struct ShardLinkParams {
    /// Seconds to ship one ghost atom's position one way (encode + relay +
    /// decode; three hex-encoded f64s plus framing).
    pub ghost_cost: f64,
    /// Seconds to ship one ghost atom's embedding derivative (one f64).
    pub fp_cost: f64,
    /// Fixed seconds per protocol round trip (syscall + scheduling).
    pub round_latency: f64,
    /// Protocol round trips of a plain step (begin, pos, pos-in, fp).
    pub rounds_plain: f64,
    /// Protocol round trips of a rebuild step (+ migrate, mig-in).
    pub rounds_rebuild: f64,
    /// Seconds to migrate one atom to a new owner (full state on the wire
    /// plus the merge-sort back into gid order).
    pub migrate_cost: f64,
    /// Seconds per local atom per rank to re-select the ghost export sets
    /// after a repartition (the slab-distance scan).
    pub select_cost: f64,
    /// Fraction of the skin an atom typically drifts between rebuilds,
    /// which sets how many boundary atoms change owner (`skin/2` triggers
    /// the rebuild; the average mover has covered about half of that).
    pub drift_frac: f64,
}

impl Default for ShardLinkParams {
    fn default() -> ShardLinkParams {
        ShardLinkParams {
            ghost_cost: 1.2e-6,
            fp_cost: 4.0e-7,
            round_latency: 5.0e-5,
            rounds_plain: 4.0,
            rounds_rebuild: 6.0,
            migrate_cost: 2.0e-6,
            select_cost: 1.0e-8,
            drift_frac: 0.5,
        }
    }
}

/// The ghost fraction `g(S)`: ghosts a shard imports, as a fraction of the
/// total atom count. A slab of width `W = L/S` imports two slices of
/// thickness `r_c + skin` — capped at the rest of the box once the slabs
/// are thinner than the interaction range (`min-image uniqueness keeps one
/// copy per atom, so the import can never exceed `L − W`).
pub fn ghost_fraction(case: &CaseGeometry, skin: f64, shards: usize) -> f64 {
    assert!(shards >= 1, "shard count must be ≥ 1");
    if shards == 1 {
        return 0.0;
    }
    let l = case.box_lengths().x;
    let width = l / shards as f64;
    let reach = case.range() + skin;
    (2.0 * reach).min(l - width) / l
}

/// Per-step wire cost of the halo protocol. The star relay is **serial in
/// the driver**: every shard's ghost payload funnels through one process,
/// so the traffic term scales with the *total* ghost count `S·N·g(S)` —
/// this, not the per-shard compute, is what eventually caps the scaling
/// curve as slabs thin out.
pub fn exchange_seconds(
    p: &ShardLinkParams,
    case: &CaseGeometry,
    skin: f64,
    shards: usize,
) -> f64 {
    if shards == 1 {
        // One shard still runs the protocol, but ships no ghosts.
        return p.round_latency * p.rounds_plain;
    }
    let total_ghosts =
        shards as f64 * case.n_atoms as f64 * ghost_fraction(case, skin, shards);
    p.round_latency * p.rounds_plain + total_ghosts * (p.ghost_cost + p.fp_cost)
}

/// Cost of one repartition round for one shard (not yet amortized): the
/// extra protocol legs, the boundary atoms that change owner, and the
/// export re-selection scan over the local (owned + ghost) atoms.
pub fn repartition_seconds(
    p: &ShardLinkParams,
    case: &CaseGeometry,
    skin: f64,
    shards: usize,
) -> f64 {
    if shards == 1 {
        return p.round_latency * (p.rounds_rebuild - p.rounds_plain);
    }
    let n = case.n_atoms as f64;
    let l = case.box_lengths().x;
    // Atoms within one drift distance of any of the S slab boundaries.
    let drift = skin * 0.5 * p.drift_frac;
    let movers = n * (2.0 * drift * shards as f64 / l).min(1.0) / 2.0;
    let local = n * (1.0 / shards as f64 + ghost_fraction(case, skin, shards));
    p.round_latency * (p.rounds_rebuild - p.rounds_plain)
        + movers / shards as f64 * p.migrate_cost
        + local * shards as f64 * p.select_cost
}

/// Predicted seconds per time-step of an S-shard run, each shard sweeping
/// on `threads` workers. Uniform density makes every shard the critical
/// path, so the per-shard time *is* the step time. `None` exactly when the
/// base strategy model is infeasible (blank Table-1 cells). `mdrun` runs
/// with the builder's default 0.3 Å skin ([`DEFAULT_SKIN`]).
pub fn predict_shard_step(
    m: &MachineParams,
    p: &ShardLinkParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    shards: usize,
    skin: f64,
) -> Option<f64> {
    let sweep = predict_seconds(m, case, kind, threads)?;
    let local = 1.0 / shards as f64 + ghost_fraction(case, skin, shards);
    let every = m.rebuild_every.max(1.0);
    let rebuild = rebuild_seconds(m, case, true, threads) * local / every;
    Some(
        sweep * local
            + rebuild
            + exchange_seconds(p, case, skin, shards)
            + repartition_seconds(p, case, skin, shards) / every,
    )
}

/// Speedup of the S-shard run versus the same strategy/threads unsharded
/// (rebuild amortized on both sides) — the scaling curve EXPERIMENTS.md
/// measures with `mdrun --shards --shard-backend process`.
pub fn shard_speedup(
    m: &MachineParams,
    p: &ShardLinkParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    shards: usize,
    skin: f64,
) -> Option<f64> {
    let unsharded = predict_step_with_rebuild(m, case, kind, threads, true)?;
    predict_shard_step(m, p, case, kind, threads, shards, skin).map(|t| unsharded / t)
}

/// The Verlet skin every `mdrun` shard run uses (the builder default).
pub const DEFAULT_SKIN: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;

    const SDC2: StrategyKind = StrategyKind::Sdc { dims: 2 };

    fn m() -> MachineParams {
        MachineParams::default()
    }

    fn p() -> ShardLinkParams {
        ShardLinkParams::default()
    }

    #[test]
    fn ghost_fraction_grows_then_saturates() {
        let case = CaseGeometry::paper_case(3);
        assert_eq!(ghost_fraction(&case, 0.3, 1), 0.0);
        let g2 = ghost_fraction(&case, 0.3, 2);
        let g4 = ghost_fraction(&case, 0.3, 4);
        assert!(g2 > 0.0 && g4 >= g2, "g2 {g2}, g4 {g4}");
        // Thin slabs: the import caps at the rest of the box, never the
        // whole of it.
        let g64 = ghost_fraction(&case, 0.3, 64);
        assert!(g64 < 1.0);
        let l = case.box_lengths().x;
        assert!((g64 - (l - l / 64.0) / l).abs() < 1e-12 || g64 < (l - l / 64.0) / l + 1e-12);
    }

    #[test]
    fn wide_slabs_scale_and_thin_slabs_saturate() {
        // Large case: compute dominates, so 2 and 4 shards pay off; by 64
        // shards every slab ghosts most of the box and the redundant work
        // erases the gain.
        let case = CaseGeometry::paper_case(4);
        let s2 = shard_speedup(&m(), &p(), &case, SDC2, 4, 2, DEFAULT_SKIN).unwrap();
        let s4 = shard_speedup(&m(), &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        let s64 = shard_speedup(&m(), &p(), &case, SDC2, 4, 64, DEFAULT_SKIN).unwrap();
        assert!(s2 > 1.3, "2 shards: {s2}");
        assert!(s4 > s2, "4 shards {s4} vs 2 shards {s2}");
        assert!(s64 < s4, "64 shards {s64} should saturate below {s4}");
        // Redundant ghost work keeps sharding strictly below linear.
        assert!(s2 < 2.0 && s4 < 4.0);
    }

    #[test]
    fn one_shard_costs_only_the_protocol_floor() {
        let case = CaseGeometry::paper_case(2);
        let base = predict_step_with_rebuild(&m(), &case, SDC2, 4, true).unwrap();
        let one = predict_shard_step(&m(), &p(), &case, SDC2, 4, 1, DEFAULT_SKIN).unwrap();
        let floor = p().round_latency * p().rounds_plain;
        assert!(one >= base, "sharding cannot be free");
        assert!(one <= base + floor + repartition_seconds(&p(), &case, 0.3, 1) + 1e-12);
    }

    #[test]
    fn repartition_amortizes_with_the_rebuild_interval() {
        let case = CaseGeometry::paper_case(3);
        let mut rare = m();
        rare.rebuild_every = 100.0;
        let often = predict_shard_step(&m(), &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        let seldom = predict_shard_step(&rare, &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        assert!(seldom < often);
        // Migration work is real whenever there is more than one shard.
        assert!(
            repartition_seconds(&p(), &case, 0.3, 4)
                > repartition_seconds(&p(), &case, 0.3, 1)
        );
    }

    #[test]
    fn infeasible_base_cells_stay_blank() {
        let small = CaseGeometry::paper_case(1);
        let one_d = StrategyKind::Sdc { dims: 1 };
        assert!(predict_shard_step(&m(), &p(), &small, one_d, 16, 4, DEFAULT_SKIN).is_none());
        assert!(shard_speedup(&m(), &p(), &small, one_d, 16, 4, DEFAULT_SKIN).is_none());
    }
}
