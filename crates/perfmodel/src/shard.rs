//! Inter-shard halo-exchange cost: extends the per-step model with the
//! `md-shard` decomposition's overheads.
//!
//! A sharded run (`mdrun --shards S`) splits the box into S slabs along one
//! axis. Each shard sweeps its owned atoms **plus** a ghost halo of width
//! `r_c + skin` imported from the neighboring slabs, so the compute side
//! carries redundant work proportional to the ghost fraction; on top of
//! that every step pays the wire protocol (position + embedding-derivative
//! exchanges over the peer mesh), and every neighbor-list rebuild pays a
//! **repartition**: atom migration across slab boundaries plus re-selection
//! of the ghost export sets. This module prices all three terms:
//!
//! ```text
//! t_shard(S, P) = t_sweep(P)·(1/S + g(S))          redundant halo compute
//!               + t_rebuild(P)·(1/S + g(S))/every  amortized local rebuild
//!               + exchange(S)                      per-step wire traffic
//!               + repartition(S)/every             amortized migration
//! ```
//!
//! with `g(S)` the ghost fraction of [`ghost_fraction`]. Since the peer
//! mesh (PR 9) the exchange term is **per shard**: every shard ships its
//! own halo to its neighbors concurrently, so the wire cost on the
//! critical path is `N·g(S)` records, not the star relay's serial
//! `S·N·g(S)` funnel. With `g(S)` pinned at `2(r_c+skin)/L` for any slab
//! wider than the interaction range, the exchange term is *constant* in S
//! and the predicted curve no longer saturates as slabs thin out — the
//! remaining sub-linearity is the redundant ghost compute, which is the
//! shape Beazley & Lomdahl's neighbor-exchange machines show. The model
//! prices both wire codecs ([`ShardLinkParams::json`] /
//! [`ShardLinkParams::binary`]) and calibrates against the report's
//! `shards.wire_seconds` (wire only — compute wait is tallied separately).

use crate::case::CaseGeometry;
use crate::machine::MachineParams;
use crate::model::predict_seconds;
use crate::rebuild::{predict_step_with_rebuild, rebuild_seconds};
use sdc_core::StrategyKind;

/// Wire and migration constants of the shard protocol (peer-mesh halo
/// frames over Unix-domain sockets, driver control rounds around them).
/// Order of magnitude from timing the codec round trip on the host; the
/// *shape* of the model, not the absolute numbers, carries the claims.
#[derive(Debug, Clone)]
pub struct ShardLinkParams {
    /// Seconds to ship one ghost atom's position one way over a peer link
    /// (encode + ship + decode of three f64s plus framing share).
    pub ghost_cost: f64,
    /// Seconds to ship one ghost atom's embedding derivative (one f64).
    pub fp_cost: f64,
    /// Fixed seconds per driver control round trip (syscall + scheduling).
    pub round_latency: f64,
    /// Control round trips of a plain step (begin, halo-send, density,
    /// force).
    pub rounds_plain: f64,
    /// Control round trips of a rebuild step (+ migrate).
    pub rounds_rebuild: f64,
    /// Seconds to migrate one atom to a new owner (full state on the wire
    /// plus the merge-sort back into gid order).
    pub migrate_cost: f64,
    /// Seconds per local atom per rank to re-select the ghost export sets
    /// after a repartition (the slab-distance scan).
    pub select_cost: f64,
    /// Fraction of the skin an atom typically drifts between rebuilds,
    /// which sets how many boundary atoms change owner (`skin/2` triggers
    /// the rebuild; the average mover has covered about half of that).
    pub drift_frac: f64,
}

impl ShardLinkParams {
    /// Constants for the hex-f64 JSON codec: every f64 costs 16 text bytes
    /// plus field syntax, and the decoder re-parses the hex.
    pub fn json() -> ShardLinkParams {
        ShardLinkParams {
            ghost_cost: 1.2e-6,
            fp_cost: 4.0e-7,
            round_latency: 5.0e-5,
            rounds_plain: 4.0,
            rounds_rebuild: 5.0,
            migrate_cost: 2.0e-6,
            select_cost: 1.0e-8,
            drift_frac: 0.5,
        }
    }

    /// Constants for the binary codec: raw little-endian bit patterns, 8
    /// bytes per f64 and no text parse — roughly 4× cheaper per record.
    pub fn binary() -> ShardLinkParams {
        ShardLinkParams {
            ghost_cost: 3.0e-7,
            fp_cost: 1.0e-7,
            ..ShardLinkParams::json()
        }
    }
}

impl Default for ShardLinkParams {
    fn default() -> ShardLinkParams {
        ShardLinkParams::json()
    }
}

/// The ghost fraction `g(S)`: ghosts a shard imports, as a fraction of the
/// total atom count. A slab of width `W = L/S` imports two slices of
/// thickness `r_c + skin` — capped at the rest of the box once the slabs
/// are thinner than the interaction range (`min-image uniqueness keeps one
/// copy per atom, so the import can never exceed `L − W`).
pub fn ghost_fraction(case: &CaseGeometry, skin: f64, shards: usize) -> f64 {
    assert!(shards >= 1, "shard count must be ≥ 1");
    if shards == 1 {
        return 0.0;
    }
    let l = case.box_lengths().x;
    let width = l / shards as f64;
    let reach = case.range() + skin;
    (2.0 * reach).min(l - width) / l
}

/// Per-step wire cost of the halo protocol. The peer mesh ships every
/// shard's halo **concurrently** (each shard streams to its neighbors
/// while they stream back), so the critical-path traffic is one shard's
/// import, `N·g(S)` records — the star relay's serial `S·N·g(S)` funnel
/// is gone, and with `g(S)` constant for slabs wider than the interaction
/// range this term no longer grows with S at all.
pub fn exchange_seconds(
    p: &ShardLinkParams,
    case: &CaseGeometry,
    skin: f64,
    shards: usize,
) -> f64 {
    if shards == 1 {
        // One shard still runs the protocol, but ships no ghosts.
        return p.round_latency * p.rounds_plain;
    }
    let per_shard_ghosts = case.n_atoms as f64 * ghost_fraction(case, skin, shards);
    p.round_latency * p.rounds_plain + per_shard_ghosts * (p.ghost_cost + p.fp_cost)
}

/// Cost of one repartition round for one shard (not yet amortized): the
/// extra protocol legs, the boundary atoms that change owner, and the
/// export re-selection scan over the local (owned + ghost) atoms.
pub fn repartition_seconds(
    p: &ShardLinkParams,
    case: &CaseGeometry,
    skin: f64,
    shards: usize,
) -> f64 {
    if shards == 1 {
        return p.round_latency * (p.rounds_rebuild - p.rounds_plain);
    }
    let n = case.n_atoms as f64;
    let l = case.box_lengths().x;
    // Atoms within one drift distance of any of the S slab boundaries.
    let drift = skin * 0.5 * p.drift_frac;
    let movers = n * (2.0 * drift * shards as f64 / l).min(1.0) / 2.0;
    let local = n * (1.0 / shards as f64 + ghost_fraction(case, skin, shards));
    p.round_latency * (p.rounds_rebuild - p.rounds_plain)
        + movers / shards as f64 * p.migrate_cost
        + local * shards as f64 * p.select_cost
}

/// Predicted seconds per time-step of an S-shard run, each shard sweeping
/// on `threads` workers. Uniform density makes every shard the critical
/// path, so the per-shard time *is* the step time. `None` exactly when the
/// base strategy model is infeasible (blank Table-1 cells). `mdrun` runs
/// with the builder's default 0.3 Å skin ([`DEFAULT_SKIN`]).
pub fn predict_shard_step(
    m: &MachineParams,
    p: &ShardLinkParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    shards: usize,
    skin: f64,
) -> Option<f64> {
    let sweep = predict_seconds(m, case, kind, threads)?;
    let local = 1.0 / shards as f64 + ghost_fraction(case, skin, shards);
    let every = m.rebuild_every.max(1.0);
    let rebuild = rebuild_seconds(m, case, true, threads) * local / every;
    Some(
        sweep * local
            + rebuild
            + exchange_seconds(p, case, skin, shards)
            + repartition_seconds(p, case, skin, shards) / every,
    )
}

/// Speedup of the S-shard run versus the same strategy/threads unsharded
/// (rebuild amortized on both sides) — the scaling curve EXPERIMENTS.md
/// measures with `mdrun --shards --shard-backend process`.
pub fn shard_speedup(
    m: &MachineParams,
    p: &ShardLinkParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    shards: usize,
    skin: f64,
) -> Option<f64> {
    let unsharded = predict_step_with_rebuild(m, case, kind, threads, true)?;
    predict_shard_step(m, p, case, kind, threads, shards, skin).map(|t| unsharded / t)
}

/// The Verlet skin every `mdrun` shard run uses (the builder default).
pub const DEFAULT_SKIN: f64 = 0.3;

#[cfg(test)]
mod tests {
    use super::*;

    const SDC2: StrategyKind = StrategyKind::Sdc { dims: 2 };

    fn m() -> MachineParams {
        MachineParams::default()
    }

    fn p() -> ShardLinkParams {
        ShardLinkParams::default()
    }

    #[test]
    fn ghost_fraction_grows_then_saturates() {
        let case = CaseGeometry::paper_case(3);
        assert_eq!(ghost_fraction(&case, 0.3, 1), 0.0);
        let g2 = ghost_fraction(&case, 0.3, 2);
        let g4 = ghost_fraction(&case, 0.3, 4);
        assert!(g2 > 0.0 && g4 >= g2, "g2 {g2}, g4 {g4}");
        // Thin slabs: the import caps at the rest of the box, never the
        // whole of it.
        let g64 = ghost_fraction(&case, 0.3, 64);
        assert!(g64 < 1.0);
        let l = case.box_lengths().x;
        assert!((g64 - (l - l / 64.0) / l).abs() < 1e-12 || g64 < (l - l / 64.0) / l + 1e-12);
    }

    #[test]
    fn peer_exchange_no_longer_saturates_at_thin_slabs() {
        // Star relay serialized S·N·g(S) through the driver and capped the
        // curve by 64 slabs; the peer mesh ships halos concurrently, so
        // more slabs keep paying off (sub-linearly — the redundant ghost
        // compute is still real).
        let case = CaseGeometry::paper_case(4);
        let s2 = shard_speedup(&m(), &p(), &case, SDC2, 4, 2, DEFAULT_SKIN).unwrap();
        let s4 = shard_speedup(&m(), &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        let s64 = shard_speedup(&m(), &p(), &case, SDC2, 4, 64, DEFAULT_SKIN).unwrap();
        assert!(s2 > 1.3, "2 shards: {s2}");
        assert!(s4 > s2, "4 shards {s4} vs 2 shards {s2}");
        assert!(s64 > s4, "64 shards {s64} must beat 4 shards {s4}");
        // Redundant ghost work keeps sharding strictly below linear.
        assert!(s2 < 2.0 && s4 < 4.0 && s64 < 64.0);
    }

    #[test]
    fn exchange_term_is_per_shard_not_total() {
        // Between 4 and 64 slabs g(S) is pinned at 2·reach/L, so the
        // peer-mesh exchange term must not grow with S (the old model's
        // S· multiplier made it 16× larger here).
        let case = CaseGeometry::paper_case(4);
        let e4 = exchange_seconds(&p(), &case, DEFAULT_SKIN, 4);
        let e64 = exchange_seconds(&p(), &case, DEFAULT_SKIN, 64);
        assert!(
            (e64 - e4).abs() < 1e-12,
            "exchange grew with S: {e4} -> {e64}"
        );
    }

    #[test]
    fn binary_codec_is_cheaper_on_the_wire() {
        let case = CaseGeometry::paper_case(4);
        let json = exchange_seconds(&ShardLinkParams::json(), &case, DEFAULT_SKIN, 4);
        let binary = exchange_seconds(&ShardLinkParams::binary(), &case, DEFAULT_SKIN, 4);
        assert!(binary < json, "binary {binary} vs json {json}");
        // The latency floor is shared; only the per-record term shrinks.
        let floor = ShardLinkParams::json().round_latency * ShardLinkParams::json().rounds_plain;
        assert!((json - floor) / (binary - floor) > 3.0);
    }

    #[test]
    fn one_shard_costs_only_the_protocol_floor() {
        let case = CaseGeometry::paper_case(2);
        let base = predict_step_with_rebuild(&m(), &case, SDC2, 4, true).unwrap();
        let one = predict_shard_step(&m(), &p(), &case, SDC2, 4, 1, DEFAULT_SKIN).unwrap();
        let floor = p().round_latency * p().rounds_plain;
        assert!(one >= base, "sharding cannot be free");
        assert!(one <= base + floor + repartition_seconds(&p(), &case, 0.3, 1) + 1e-12);
    }

    #[test]
    fn repartition_amortizes_with_the_rebuild_interval() {
        let case = CaseGeometry::paper_case(3);
        let mut rare = m();
        rare.rebuild_every = 100.0;
        let often = predict_shard_step(&m(), &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        let seldom = predict_shard_step(&rare, &p(), &case, SDC2, 4, 4, DEFAULT_SKIN).unwrap();
        assert!(seldom < often);
        // Migration work is real whenever there is more than one shard.
        assert!(
            repartition_seconds(&p(), &case, 0.3, 4)
                > repartition_seconds(&p(), &case, 0.3, 1)
        );
    }

    #[test]
    fn infeasible_base_cells_stay_blank() {
        let small = CaseGeometry::paper_case(1);
        let one_d = StrategyKind::Sdc { dims: 1 };
        assert!(predict_shard_step(&m(), &p(), &small, one_d, 16, 4, DEFAULT_SKIN).is_none());
        assert!(shard_speedup(&m(), &p(), &small, one_d, 16, 4, DEFAULT_SKIN).is_none());
    }
}
