//! Neighbor-list rebuild cost and its effect on end-to-end speedup.
//!
//! The base model ([`crate::predict_seconds`]) covers the paper's *timed*
//! phases — the density and force sweeps. A real trajectory also pays for
//! periodic neighbor-list rebuilds (binning + stencil pair generation),
//! amortized over `rebuild_every` steps. With a **serial** rebuild this is a
//! classic Amdahl term: it caps 2-D SDC's 16-thread speedup on the large
//! cases well below the sweep-only number. The rayon-parallel rebuild
//! (`md_neighbor::NeighborList::build_parallel`) removes that cap — which is
//! exactly what these functions quantify.

use crate::case::CaseGeometry;
use crate::machine::MachineParams;
use crate::model::predict_seconds;
use sdc_core::StrategyKind;

/// Predicted seconds for **one** neighbor-list rebuild (cell binning plus
/// stencil pair generation), serial or on `threads` workers.
///
/// Serial: `N·c_bin + pairs·κ_cand·c_gen`. Parallel: the same work divided
/// by `P` under the shared-bandwidth overhead, plus the rebuild's fork-join
/// barriers — both phases of the deterministic parallel build (chunked
/// counting sort, per-cell row generation) scale this way because every
/// write window is private.
pub fn rebuild_seconds(
    m: &MachineParams,
    case: &CaseGeometry,
    parallel: bool,
    threads: usize,
) -> f64 {
    assert!(threads >= 1, "thread count must be ≥ 1");
    let work =
        case.n_atoms as f64 * m.bin_cost + case.pairs * m.candidate_ratio * m.pair_gen_cost;
    if !parallel || threads == 1 {
        work
    } else {
        work / threads as f64 * m.overhead(threads) + m.rebuild_barriers * m.barrier(threads)
    }
}

/// Predicted seconds per time-step **including** the amortized rebuild:
/// sweep phases from the strategy model plus `rebuild / rebuild_every`.
///
/// `parallel_rebuild` selects the list-build path; the sweep strategy and
/// the rebuild path are independent knobs, matching the engine
/// (`ForceEngine::set_parallel_list`). Returns `None` exactly when the base
/// model does (blank Table-1 cells).
pub fn predict_step_with_rebuild(
    m: &MachineParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    parallel_rebuild: bool,
) -> Option<f64> {
    let sweep = predict_seconds(m, case, kind, threads)?;
    let every = m.rebuild_every.max(1.0);
    Some(sweep + rebuild_seconds(m, case, parallel_rebuild, threads) / every)
}

/// End-to-end speedup versus the fully serial step (serial sweeps + serial
/// rebuild), with the rebuild cost amortized on both sides.
///
/// With `parallel_rebuild = false` the rebuild is the Amdahl serial
/// fraction; with `true` it scales alongside the sweeps.
pub fn speedup_with_rebuild(
    m: &MachineParams,
    case: &CaseGeometry,
    kind: StrategyKind,
    threads: usize,
    parallel_rebuild: bool,
) -> Option<f64> {
    let serial =
        predict_step_with_rebuild(m, case, StrategyKind::Serial, 1, false).expect("serial");
    predict_step_with_rebuild(m, case, kind, threads, parallel_rebuild).map(|t| serial / t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::speedup;

    const SDC2: StrategyKind = StrategyKind::Sdc { dims: 2 };

    fn m() -> MachineParams {
        MachineParams::default()
    }

    #[test]
    fn parallel_rebuild_is_cheaper_than_serial_on_many_threads() {
        let case = CaseGeometry::paper_case(3);
        let serial = rebuild_seconds(&m(), &case, false, 16);
        let parallel = rebuild_seconds(&m(), &case, true, 16);
        assert!(parallel < serial / 8.0, "{parallel} vs {serial}");
        // One worker takes the serial path regardless of the flag.
        assert_eq!(rebuild_seconds(&m(), &case, true, 1), serial);
    }

    #[test]
    fn serial_rebuild_is_an_amdahl_cap_on_sdc() {
        // Large case 3, 2-D SDC, 16 threads: the sweep-only model reports
        // ≈ 12.3×. A serial rebuild amortized over 10 steps drags the
        // end-to-end number below half of that; the parallel rebuild
        // restores it to within ~5%.
        let case = CaseGeometry::paper_case(3);
        let pure = speedup(&m(), &case, SDC2, 16).unwrap();
        let capped = speedup_with_rebuild(&m(), &case, SDC2, 16, false).unwrap();
        let restored = speedup_with_rebuild(&m(), &case, SDC2, 16, true).unwrap();
        assert!(capped < pure * 0.55, "capped {capped} vs pure {pure}");
        assert!(restored > pure * 0.95, "restored {restored} vs pure {pure}");
        assert!(restored < 16.0);
    }

    #[test]
    fn rebuild_cost_amortizes_with_rebuild_interval() {
        let case = CaseGeometry::paper_case(2);
        let mut rare = m();
        rare.rebuild_every = 100.0;
        let often = predict_step_with_rebuild(&m(), &case, SDC2, 8, false).unwrap();
        let seldom = predict_step_with_rebuild(&rare, &case, SDC2, 8, false).unwrap();
        assert!(seldom < often);
        // Sweep-only time is the limit of an infinite rebuild interval.
        let sweep = predict_seconds(&m(), &case, SDC2, 8).unwrap();
        assert!(seldom > sweep);
    }

    #[test]
    fn blank_cells_stay_blank_with_rebuild() {
        let small = CaseGeometry::paper_case(1);
        let one_d = StrategyKind::Sdc { dims: 1 };
        assert!(predict_step_with_rebuild(&m(), &small, one_d, 16, true).is_none());
        assert!(speedup_with_rebuild(&m(), &small, one_d, 16, true).is_none());
    }

    #[test]
    fn end_to_end_speedup_never_beats_thread_count() {
        for case_id in 1..=4 {
            let case = CaseGeometry::paper_case(case_id);
            for p in [2, 4, 8, 16] {
                for parallel in [false, true] {
                    if let Some(s) = speedup_with_rebuild(&m(), &case, SDC2, p, parallel) {
                        assert!(s <= p as f64 + 1e-9, "case {case_id} P={p}: {s}");
                    }
                }
            }
        }
    }
}
