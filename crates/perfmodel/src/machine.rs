//! Machine cost parameters.

/// Cost constants of the modeled shared-memory machine.
///
/// Times are seconds. Defaults are order-of-magnitude values for a mid-2000s
/// multi-socket Xeon (the paper's E7320 era), chosen so the modeled curves
/// reproduce the paper's *shapes*; `pair_cost` should be overridden with the
/// host-calibrated value (the bench harness measures it from the real serial
/// engine) when absolute times matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// Serial cost of one stored half-pair in one sweep (density or force)
    /// on the reference (per-pair dyn-dispatched) evaluation path.
    pub pair_cost: f64,
    /// Serial cost of one stored half-pair under the fused path (§II.D):
    /// monomorphized dispatch, Horner-form spline segments, the interleaved
    /// φ/f table, and the phase-1 scratch that spares phase 3 the
    /// min_image/sqrt/spline recomputation. Default is `pair_cost / 1.25`,
    /// the measured single-thread gain on the tabulated iron case
    /// (EXPERIMENTS.md §fused).
    pub fused_pair_cost: f64,
    /// Serial cost of one stored half-pair under the SIMD fused path at
    /// full lane occupancy: the φ/f spline lookups run four pairs per AVX2
    /// block in the cluster-batched precompute pass, leaving the sweeps as
    /// pure replays. Real cost is `simd_pair_cost / occupancy` — partially
    /// filled tail batches pay for their idle lanes — which is the
    /// [`MachineParams::simd`] view's lane-efficiency term. Default is
    /// `fused_pair_cost / 1.2`, the measured single-thread gain on the
    /// tabulated iron case (EXPERIMENTS.md §simd).
    pub simd_pair_cost: f64,
    /// Shared-bandwidth degradation μ: work cost scales by `1 + μ·ln P`.
    pub mem_contention: f64,
    /// Fixed cost of one fork-join barrier.
    pub barrier_base: f64,
    /// Additional barrier cost per `log2 P` (tree reduction).
    pub barrier_log: f64,
    /// Serialized cost of one lock-protected update (CS strategy).
    pub lock_cost: f64,
    /// Lock handoff degradation λ: lock cost scales by `1 + λ(P−1)`.
    pub lock_contention: f64,
    /// Cost of one CAS-loop atomic update.
    pub atomic_cost: f64,
    /// Atomic retry degradation (scales like the lock term, much weaker).
    pub atomic_contention: f64,
    /// SAP: merge cost per array element per thread copy (serialized).
    pub merge_cost: f64,
    /// SAP: private-array zeroing cost per element.
    pub zero_cost: f64,
    /// SAP: extra cache-pressure slope σ (`1 + σ(P−1)` on the compute part).
    pub sap_cache: f64,
    /// SDC: cache-locality penalty slope for subdomain halo traffic. A task
    /// touching subdomain `S` streams `S` plus its `r_c` halo; the larger
    /// the halo-to-subdomain volume ratio, the worse the reuse. Cost scales
    /// by `1 + halo_kappa·(halo_ratio − 1)` — this is the paper's §IV
    /// argument for why compact 2-D subdomains beat both 1-D slabs (fewer
    /// but no worse) and fine 3-D cells (more fork-join, more halo).
    pub halo_kappa: f64,
    /// SDC: fraction of the final partial round that fails to overlap with
    /// earlier rounds (1.0 = hard `ceil` makespan, 0.0 = perfectly fluid
    /// work-stealing). OpenMP static scheduling with equal tasks sits in
    /// between.
    pub round_overlap: f64,
    /// LOCALWRITE: boundary-pair fraction of an index-chunked partitioning
    /// (the class-3 redundant work; the inspector itself is amortized over
    /// list rebuilds like the SDC plan).
    pub lw_boundary_frac: f64,
    /// RC: work multiplier versus the half-list sweep (the paper: "there is
    /// two-fold computation work for the force calculations in RC method").
    pub rc_work: f64,
    /// Timed sweeps per step (density + force = 2, the paper's §III.A).
    pub sweeps: usize,
    /// Cores per socket of the modeled machine (the paper's E7320 box is
    /// 4 sockets × 4 cores).
    pub cores_per_socket: usize,
    /// NUMA remote-access penalty (paper §V names "a detailed study of SDC
    /// on NUMA memory architecture" as future work; this parameter models
    /// it): once threads span multiple sockets, a fraction
    /// `(sockets_used − 1)/sockets_used` of memory traffic is remote and
    /// costs `(1 + numa_penalty)` per access. 0 disables NUMA modeling
    /// (the paper's implicit flat-memory assumption).
    pub numa_penalty: f64,
    /// Neighbor rebuild: per-atom cell-binning cost (one coordinate → cell
    /// map plus a counting-sort pass).
    pub bin_cost: f64,
    /// Neighbor rebuild: cost of *examining* one candidate pair in the
    /// stencil walk (distance check; cheaper than `pair_cost`, which also
    /// evaluates the potential kernel).
    pub pair_gen_cost: f64,
    /// Neighbor rebuild: candidate pairs examined per stored half-pair. For
    /// a 27-cell stencil with `cell ≈ r_c` this is the ratio of the stencil
    /// volume to the cutoff-sphere volume, ≈ 27/(4π/3) ≈ 6.4.
    pub candidate_ratio: f64,
    /// Steps between list rebuilds (skin-triggered; ≈ 10 for the paper's
    /// 0.3 Å skin at melt temperatures).
    pub rebuild_every: f64,
    /// Fork-join barriers per parallel rebuild (bin, scatter, pair
    /// generation).
    pub rebuild_barriers: f64,
}

impl Default for MachineParams {
    fn default() -> MachineParams {
        MachineParams {
            pair_cost: 60e-9,
            fused_pair_cost: 48e-9,
            simd_pair_cost: 40e-9,
            mem_contention: 0.05,
            barrier_base: 4e-6,
            barrier_log: 1.5e-6,
            lock_cost: 30e-9,
            lock_contention: 0.12,
            atomic_cost: 12e-9,
            atomic_contention: 0.02,
            merge_cost: 20e-9,
            zero_cost: 1e-9,
            sap_cache: 0.05,
            halo_kappa: 0.02,
            round_overlap: 0.5,
            lw_boundary_frac: 0.25,
            rc_work: 2.0,
            sweeps: 2,
            cores_per_socket: 4,
            numa_penalty: 0.0,
            bin_cost: 5e-9,
            pair_gen_cost: 25e-9,
            candidate_ratio: 6.4,
            rebuild_every: 10.0,
            rebuild_barriers: 3.0,
        }
    }
}

impl MachineParams {
    /// Default constants with a host-calibrated per-pair cost.
    pub fn calibrated(pair_cost: f64) -> MachineParams {
        assert!(
            pair_cost > 0.0 && pair_cost.is_finite(),
            "pair cost must be positive, got {pair_cost}"
        );
        MachineParams {
            pair_cost,
            // Keep the measured fused/reference and SIMD/fused ratios of
            // the defaults.
            fused_pair_cost: pair_cost * 0.8,
            simd_pair_cost: pair_cost * 0.8 / 1.2,
            ..MachineParams::default()
        }
    }

    /// Constants for predicting the fused evaluation path: the per-pair
    /// sweep cost drops to [`MachineParams::fused_pair_cost`]; every
    /// synchronization, bandwidth, and rebuild constant is unchanged (the
    /// fused path keeps the same strategy-routed scatter).
    pub fn fused(mut self) -> MachineParams {
        self.pair_cost = self.fused_pair_cost;
        self
    }

    /// Constants for predicting the SIMD fused path at the given lane
    /// occupancy (`ClusterList::lane_occupancy` from `md-neighbor`, in
    /// `(0, 1]`): the per-pair cost becomes `simd_pair_cost / occupancy` —
    /// idle lanes in a cluster's tail batch still occupy the vector units —
    /// and, like [`MachineParams::fused`], every synchronization,
    /// bandwidth, and rebuild constant is unchanged.
    ///
    /// # Panics
    /// Panics unless `0 < occupancy ≤ 1`.
    pub fn simd(mut self, occupancy: f64) -> MachineParams {
        assert!(
            occupancy > 0.0 && occupancy <= 1.0,
            "lane occupancy must be in (0, 1], got {occupancy}"
        );
        self.pair_cost = self.simd_pair_cost / occupancy;
        self
    }

    /// The work-scaling overhead `(1 + μ·ln P) · numa(P)`.
    #[inline]
    pub fn overhead(&self, threads: usize) -> f64 {
        (1.0 + self.mem_contention * (threads as f64).ln()) * self.numa_factor(threads)
    }

    /// NUMA remote-traffic multiplier at `P` threads (1.0 when NUMA
    /// modeling is off or all threads fit one socket).
    #[inline]
    pub fn numa_factor(&self, threads: usize) -> f64 {
        if self.numa_penalty <= 0.0 {
            return 1.0;
        }
        let sockets_used = threads.div_ceil(self.cores_per_socket.max(1));
        if sockets_used <= 1 {
            1.0
        } else {
            let remote = (sockets_used - 1) as f64 / sockets_used as f64;
            1.0 + self.numa_penalty * remote
        }
    }

    /// Barrier cost at `P` threads.
    #[inline]
    pub fn barrier(&self, threads: usize) -> f64 {
        self.barrier_base + self.barrier_log * (threads as f64).log2().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_one_for_single_thread() {
        let m = MachineParams::default();
        assert_eq!(m.overhead(1), 1.0);
        assert!(m.overhead(16) > m.overhead(2));
    }

    #[test]
    fn barrier_grows_with_threads() {
        let m = MachineParams::default();
        assert!(m.barrier(16) > m.barrier(2));
        assert!(m.barrier(1) >= m.barrier_base);
    }

    #[test]
    fn numa_factor_kicks_in_past_one_socket() {
        let mut m = MachineParams::default();
        assert_eq!(m.numa_factor(16), 1.0, "off by default");
        m.numa_penalty = 0.4;
        assert_eq!(m.numa_factor(4), 1.0, "one socket: all local");
        let two = m.numa_factor(8); // 2 sockets → half remote
        assert!((two - 1.2).abs() < 1e-12, "{two}");
        let four = m.numa_factor(16); // 4 sockets → 3/4 remote
        assert!((four - 1.3).abs() < 1e-12, "{four}");
        assert!(m.overhead(16) > MachineParams::default().overhead(16));
    }

    #[test]
    fn calibration_overrides_pair_cost_only() {
        let m = MachineParams::calibrated(123e-9);
        assert_eq!(m.pair_cost, 123e-9);
        assert_eq!(m.lock_cost, MachineParams::default().lock_cost);
    }

    #[test]
    fn fused_view_swaps_in_the_cheaper_pair_cost() {
        let m = MachineParams::default();
        let f = m.fused();
        assert_eq!(f.pair_cost, m.fused_pair_cost);
        assert!(f.pair_cost < m.pair_cost, "fused must be cheaper");
        assert_eq!(f.barrier_base, m.barrier_base, "sync costs unchanged");
        // Calibration preserves the fused/reference ratio.
        let c = MachineParams::calibrated(100e-9);
        assert!((c.fused_pair_cost / c.pair_cost - 0.8).abs() < 1e-12);
    }

    #[test]
    fn simd_view_scales_with_lane_occupancy() {
        let m = MachineParams::default();
        let full = m.simd(1.0);
        assert_eq!(full.pair_cost, m.simd_pair_cost);
        assert!(full.pair_cost < m.fused().pair_cost, "SIMD must beat fused");
        assert_eq!(full.barrier_base, m.barrier_base, "sync costs unchanged");
        // Half-empty lanes double the effective per-pair cost; occupancy
        // can degrade the SIMD path below the scalar fused one.
        let half = m.simd(0.5);
        assert!((half.pair_cost - 2.0 * m.simd_pair_cost).abs() < 1e-18);
        assert!(half.pair_cost > m.fused().pair_cost);
        // Calibration preserves the SIMD/fused ratio.
        let c = MachineParams::calibrated(100e-9);
        assert!((c.fused_pair_cost / c.simd_pair_cost - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "occupancy")]
    fn out_of_range_occupancy_rejected() {
        let _ = MachineParams::default().simd(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_pair_cost_rejected() {
        let _ = MachineParams::calibrated(0.0);
    }
}
