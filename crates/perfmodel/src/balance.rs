//! Makespan model for cost-guided SDC schedules, and its validation against
//! observed color walls.
//!
//! `sdc-core::schedule` does the combinatorics (LPT packing, plan search)
//! against an abstract [`MakespanParams`]; this module supplies those
//! parameters from the calibrated [`MachineParams`] — per-pair task cost
//! scaled by the bandwidth overhead `(1 + μ·ln P)`, the fork-join barrier at
//! `P` threads, and the paper's two timed sweeps per step — and closes the
//! loop on the *measured* side: [`ObservedMakespan`] extracts the busiest
//! color's real wall time from a metrics report so a predicted makespan
//! reduction can be confirmed (or refuted) by the observability layer.

use crate::machine::MachineParams;
use sdc_core::schedule::{ColorSchedule, MakespanParams};

/// The schedule-model cost constants at `threads` workers, derived from the
/// machine model: `task_unit = pair_cost · overhead(P)`,
/// `barrier = barrier(P)`, `sweeps` as configured (2 for EAM).
pub fn makespan_params(machine: &MachineParams, threads: usize) -> MakespanParams {
    let threads = threads.max(1);
    MakespanParams {
        task_unit_seconds: machine.pair_cost * machine.overhead(threads),
        barrier_seconds: machine.barrier(threads),
        sweeps: machine.sweeps as f64,
    }
}

/// Predicted wall seconds per step for a *dependency-graph* execution of a
/// plan — the greedy-scheduler (Graham) bound with one pool join per sweep
/// instead of one barrier per color:
///
/// `sweeps · (max(critical_path, total/P) · task_unit + barrier)`
///
/// `cp_units` is the graph's critical path and `total_units` the total task
/// cost, both in the same units the LPT schedule uses (pair counts), so the
/// result is directly comparable to [`predicted_schedule_seconds`] /
/// `ColorSchedule::predicted_seconds` when `balance.rs` chooses
/// graph-vs-barrier per plan.
pub fn predicted_graph_seconds(
    cp_units: f64,
    total_units: f64,
    threads: usize,
    params: &MakespanParams,
) -> f64 {
    let p = threads.max(1) as f64;
    let span = cp_units.max(total_units / p);
    params.sweeps * (span * params.task_unit_seconds + params.barrier_seconds)
}

/// Predicted wall seconds per step for an LPT schedule under the machine
/// model — `sweeps · Σ_colors (max-thread-bin · task + barrier)`.
pub fn predicted_schedule_seconds(
    machine: &MachineParams,
    schedule: &ColorSchedule,
    threads: usize,
) -> f64 {
    schedule.predicted_seconds(&makespan_params(machine, threads))
}

/// Measured per-color wall times of a run — the observed counterpart of the
/// schedule model's `Σ_colors max-thread-bin` term. Built from the
/// `ScatterMetrics` color-wall histograms (their per-color sums).
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedMakespan {
    /// Total wall nanoseconds per color across the whole run.
    pub color_wall_ns: Vec<u64>,
    /// Scatter sweeps executed (barriers ÷ colors).
    pub sweeps: u64,
}

impl ObservedMakespan {
    /// Builds from per-color wall sums and the executed sweep count.
    pub fn new(color_wall_ns: Vec<u64>, sweeps: u64) -> ObservedMakespan {
        ObservedMakespan { color_wall_ns, sweeps }
    }

    /// The busiest color's mean wall seconds per sweep — what every barrier
    /// in that color actually waited for.
    pub fn busiest_color_seconds(&self) -> f64 {
        if self.sweeps == 0 {
            return 0.0;
        }
        let max = self.color_wall_ns.iter().copied().max().unwrap_or(0);
        max as f64 * 1e-9 / self.sweeps as f64
    }

    /// Mean wall seconds of one full sweep (all colors, serial over colors).
    pub fn sweep_seconds(&self) -> f64 {
        if self.sweeps == 0 {
            return 0.0;
        }
        let total: u64 = self.color_wall_ns.iter().sum();
        total as f64 * 1e-9 / self.sweeps as f64
    }

    /// Observed-over-predicted sweep makespan under `params` (the
    /// validation ratio: near 1 means the model describes this host;
    /// 0 when nothing was measured).
    pub fn model_ratio(&self, schedule: &ColorSchedule, params: &MakespanParams) -> f64 {
        let predicted = schedule.predicted_seconds(params);
        if predicted <= 0.0 {
            return f64::INFINITY;
        }
        // predicted_seconds covers `sweeps` model sweeps per step; compare
        // per-sweep to stay independent of step count.
        let predicted_per_sweep = predicted / params.sweeps.max(1.0);
        self.sweep_seconds() / predicted_per_sweep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;
    use md_neighbor::{NeighborList, VerletConfig};
    use sdc_core::{DecompositionConfig, SdcPlan};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;

    fn schedule(threads: usize) -> ColorSchedule {
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(2, CUTOFF + SKIN)).unwrap();
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        ColorSchedule::lpt(plan.decomposition(), &costs, threads)
    }

    #[test]
    fn params_come_from_the_machine_model() {
        let m = MachineParams::default();
        let p = makespan_params(&m, 4);
        assert_eq!(p.task_unit_seconds, m.pair_cost * m.overhead(4));
        assert_eq!(p.barrier_seconds, m.barrier(4));
        assert_eq!(p.sweeps, 2.0);
        // Single thread: no bandwidth overhead on the task unit.
        assert_eq!(makespan_params(&m, 1).task_unit_seconds, m.pair_cost);
    }

    #[test]
    fn prediction_scales_with_pair_cost_and_shrinks_with_threads() {
        let s1 = schedule(1);
        let s4 = schedule(4);
        let m = MachineParams::default();
        let t1 = predicted_schedule_seconds(&m, &s1, 1);
        let t4 = predicted_schedule_seconds(&m, &s4, 4);
        assert!(t4 < t1, "4 threads predicted slower than 1: {t4} vs {t1}");
        let expensive = MachineParams::calibrated(m.pair_cost * 10.0);
        assert!(predicted_schedule_seconds(&expensive, &s4, 4) > t4);
    }

    #[test]
    fn graph_prediction_is_bounded_by_work_and_span() {
        let params = makespan_params(&MachineParams::default(), 4);
        // Work-dominated: 100 equal units, cp 10 → span = 100/4 = 25.
        let t = predicted_graph_seconds(10.0, 100.0, 4, &params);
        let expect = params.sweeps * (25.0 * params.task_unit_seconds + params.barrier_seconds);
        assert!((t - expect).abs() < 1e-18, "{t} vs {expect}");
        // Span-dominated: a long chain cannot go faster than its critical
        // path no matter the thread count.
        let chain = predicted_graph_seconds(90.0, 100.0, 16, &params);
        let floor = params.sweeps * 90.0 * params.task_unit_seconds;
        assert!(chain >= floor);
        // More threads never predict slower.
        let params1 = makespan_params(&MachineParams::default(), 1);
        assert!(t < predicted_graph_seconds(10.0, 100.0, 1, &params1));
    }

    #[test]
    fn graph_beats_the_barriered_schedule_on_a_free_graph() {
        // Same plan, same costs: with no dependencies the graph pays one
        // barrier per sweep where the colored schedule pays one per color.
        let s = schedule(4);
        let params = makespan_params(&MachineParams::default(), 4);
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(2, CUTOFF + SKIN)).unwrap();
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        let total: f64 = costs.iter().sum();
        let cp = costs.iter().cloned().fold(0.0, f64::max);
        let graph = predicted_graph_seconds(cp, total, 4, &params);
        assert!(
            graph < s.predicted_seconds(&params),
            "free graph must beat the color-barriered schedule"
        );
    }

    #[test]
    fn observed_makespan_per_sweep_accounting() {
        // Two colors, 4 sweeps: busiest color accumulated 8 ms.
        let o = ObservedMakespan::new(vec![8_000_000, 4_000_000], 4);
        assert!((o.busiest_color_seconds() - 2e-3).abs() < 1e-15);
        assert!((o.sweep_seconds() - 3e-3).abs() < 1e-15);
        let empty = ObservedMakespan::new(vec![], 0);
        assert_eq!(empty.busiest_color_seconds(), 0.0);
        assert_eq!(empty.sweep_seconds(), 0.0);
    }

    #[test]
    fn model_ratio_is_one_when_observation_matches_prediction() {
        let s = schedule(2);
        let params = makespan_params(&MachineParams::default(), 2);
        let per_sweep = s.predicted_seconds(&params) / params.sweeps;
        // Fabricate an observation that matches the prediction exactly:
        // all wall time in one color, `sweeps = 10`.
        let o = ObservedMakespan::new(vec![(per_sweep * 10.0 * 1e9) as u64], 10);
        let ratio = o.model_ratio(&s, &params);
        assert!((ratio - 1.0).abs() < 1e-6, "ratio = {ratio}");
    }
}
