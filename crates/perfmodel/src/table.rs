//! Table 1 / Fig. 9 row generation and formatting.
//!
//! These functions produce the exact row/series structure of the paper's
//! evaluation artifacts; the `sdc-bench` binaries print them (and the
//! measured counterparts) side by side with the paper's published numbers.

use crate::case::CaseGeometry;
use crate::machine::MachineParams;
use crate::model::speedup;
use sdc_core::StrategyKind;

/// The thread counts of the paper's sweeps (Table 1 columns).
pub const THREAD_SWEEP: [usize; 6] = [2, 3, 4, 8, 12, 16];

/// The strategies of Fig. 9, in its legend order.
pub const FIG9_STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Sdc { dims: 2 },
    StrategyKind::Critical,
    StrategyKind::Privatized,
    StrategyKind::Redundant,
];

/// One row of Table 1: a case × SDC dimensionality, speedups per thread
/// count (`None` = the paper's blank cells).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Case name.
    pub case: String,
    /// SDC dimensionality (1, 2 or 3).
    pub dims: usize,
    /// Speedups at [`THREAD_SWEEP`] thread counts.
    pub speedups: [Option<f64>; 6],
}

/// One series of Fig. 9: a case × strategy, speedups per thread count.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Case name.
    pub case: String,
    /// Strategy of the series.
    pub strategy: StrategyKind,
    /// Speedups at [`THREAD_SWEEP`] thread counts.
    pub speedups: [Option<f64>; 6],
}

/// Generates every row of Table 1 (4 cases × 3 dimensionalities).
pub fn table1_rows(m: &MachineParams) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(12);
    for case_id in 1..=4 {
        let case = CaseGeometry::paper_case(case_id);
        for dims in 1..=3 {
            let mut speedups = [None; 6];
            for (k, &p) in THREAD_SWEEP.iter().enumerate() {
                speedups[k] = speedup(m, &case, StrategyKind::Sdc { dims }, p);
            }
            rows.push(Table1Row {
                case: case.name.clone(),
                dims,
                speedups,
            });
        }
    }
    rows
}

/// [`table1_rows`] with the amortized neighbor-rebuild cost folded into
/// every cell (see [`crate::rebuild`]): `parallel_rebuild = false` shows the
/// Amdahl cap of a serial list build, `true` the recovered trajectory with
/// the parallel build.
pub fn table1_rows_with_rebuild(m: &MachineParams, parallel_rebuild: bool) -> Vec<Table1Row> {
    let mut rows = Vec::with_capacity(12);
    for case_id in 1..=4 {
        let case = CaseGeometry::paper_case(case_id);
        for dims in 1..=3 {
            let mut speedups = [None; 6];
            for (k, &p) in THREAD_SWEEP.iter().enumerate() {
                speedups[k] = crate::rebuild::speedup_with_rebuild(
                    m,
                    &case,
                    StrategyKind::Sdc { dims },
                    p,
                    parallel_rebuild,
                );
            }
            rows.push(Table1Row {
                case: case.name.clone(),
                dims,
                speedups,
            });
        }
    }
    rows
}

/// Generates every series of Fig. 9 (4 cases × 4 strategies).
pub fn fig9_rows(m: &MachineParams) -> Vec<Fig9Row> {
    let mut rows = Vec::with_capacity(16);
    for case_id in 1..=4 {
        let case = CaseGeometry::paper_case(case_id);
        for strategy in FIG9_STRATEGIES {
            let mut speedups = [None; 6];
            for (k, &p) in THREAD_SWEEP.iter().enumerate() {
                speedups[k] = speedup(m, &case, strategy, p);
            }
            rows.push(Fig9Row {
                case: case.name.clone(),
                strategy,
                speedups,
            });
        }
    }
    rows
}

/// Formats an optional speedup like the paper's table (blank when absent).
pub fn fmt_cell(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:>6.2}"),
        None => format!("{:>6}", ""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twelve_rows_in_case_major_order() {
        let rows = table1_rows(&MachineParams::default());
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].case, "small(1)");
        assert_eq!(rows[0].dims, 1);
        assert_eq!(rows[11].case, "large(4)");
        assert_eq!(rows[11].dims, 3);
    }

    #[test]
    fn table1_blanks_match_the_paper_pattern() {
        let rows = table1_rows(&MachineParams::default());
        let find = |case: &str, dims: usize| {
            rows.iter()
                .find(|r| r.case == case && r.dims == dims)
                .unwrap()
                .clone()
        };
        // Small case, 1-D: blanks at 12 and 16 threads (indices 4, 5).
        let s1 = find("small(1)", 1);
        assert!(s1.speedups[4].is_none() && s1.speedups[5].is_none());
        // Medium case, 1-D: value at 12, blank at 16.
        let m1 = find("medium(2)", 1);
        assert!(m1.speedups[4].is_some());
        assert!(m1.speedups[5].is_none());
        // Everything 2-D/3-D filled.
        for case in ["small(1)", "medium(2)", "large(3)", "large(4)"] {
            for dims in [2, 3] {
                assert!(find(case, dims).speedups.iter().all(|s| s.is_some()));
            }
        }
    }

    #[test]
    fn fig9_has_sixteen_series_and_sdc_dominates() {
        let rows = fig9_rows(&MachineParams::default());
        assert_eq!(rows.len(), 16);
        // In every case, at every thread count, SDC is the top series
        // (paper: "our two-dimensional SDC method … has highest speedup than
        // other methods on all of test cases").
        for case in ["small(1)", "medium(2)", "large(3)", "large(4)"] {
            let of = |s: StrategyKind| {
                rows.iter()
                    .find(|r| r.case == case && r.strategy == s)
                    .unwrap()
                    .clone()
            };
            let sdc = of(StrategyKind::Sdc { dims: 2 });
            for other in [
                StrategyKind::Critical,
                StrategyKind::Privatized,
                StrategyKind::Redundant,
            ] {
                let o = of(other);
                #[allow(clippy::needless_range_loop)]
                for k in 0..6 {
                    if let (Some(a), Some(b)) = (sdc.speedups[k], o.speedups[k]) {
                        // 5% tolerance: at 2–4 threads on the small case the
                        // paper's own curves cluster within line width.
                        assert!(
                            a >= b * 0.95,
                            "{case}: {other} ({b}) beats SDC ({a}) at {} threads",
                            THREAD_SWEEP[k]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rebuild_table_shows_cap_and_recovery() {
        let m = MachineParams::default();
        let pure = table1_rows(&m);
        let capped = table1_rows_with_rebuild(&m, false);
        let recovered = table1_rows_with_rebuild(&m, true);
        assert_eq!(capped.len(), 12);
        assert_eq!(recovered.len(), 12);
        for ((p, c), r) in pure.iter().zip(&capped).zip(&recovered) {
            for k in 0..6 {
                match (p.speedups[k], c.speedups[k], r.speedups[k]) {
                    (Some(pv), Some(cv), Some(rv)) => {
                        assert!(cv < pv, "{}/{}D: serial rebuild must cost", p.case, p.dims);
                        assert!(rv > cv, "{}/{}D: parallel rebuild must help", p.case, p.dims);
                    }
                    (None, None, None) => {}
                    other => panic!("blank-cell pattern diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cells_format_fixed_width() {
        assert_eq!(fmt_cell(Some(1.234)).len(), 6);
        assert_eq!(fmt_cell(None).len(), 6);
        assert_eq!(fmt_cell(Some(12.317)), " 12.32");
    }
}
