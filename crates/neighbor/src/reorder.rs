//! Data-reordering locality transforms (paper §II.D).
//!
//! Irregular MD loops "do not repeatedly access data in memory with small
//! constant strides" (the paper citing Han & Tseng). The paper applies two
//! remedies, both implemented here:
//!
//! 1. **Spatial atom reordering** — relabel atoms so that spatially close
//!    atoms get close indices (we sort by linked-cell id). Neighbor indices
//!    `j` in the inner loops then read `rho[j]` / `pos[j]` from nearby cache
//!    lines.
//! 2. **Regularized neighbor arrays** — the CSR layout of [`crate::Csr`]
//!    replaces the irregular `neighindex[]`/`neighlen[]` pair, and
//!    [`crate::Csr::sort_rows`] makes each row's reads monotone in memory.
//!
//! The permutation type is explicit about direction: `new_to_old[new] = old`.

use crate::cell_grid::CellGrid;
use crate::csr::{Csr, PAR_MIN_CHUNK};
use crate::verlet::{NeighborList, NeighborListKind};
use md_geometry::{SimBox, Vec3};
use rayon::prelude::*;

/// A relabeling of `n` atoms: `new_to_old[new_index] = old_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<u32>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Permutation {
        Permutation {
            new_to_old: (0..n as u32).collect(),
        }
    }

    /// Builds a permutation from a `new_to_old` mapping.
    ///
    /// # Panics
    /// Panics unless the mapping is a bijection on `0..n`.
    pub fn from_new_to_old(new_to_old: Vec<u32>) -> Permutation {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &o in &new_to_old {
            assert!((o as usize) < n, "index {o} out of range for permutation of {n}");
            assert!(!seen[o as usize], "index {o} appears twice; not a permutation");
            seen[o as usize] = true;
        }
        Permutation { new_to_old }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The raw `new_to_old` mapping.
    #[inline]
    pub fn new_to_old(&self) -> &[u32] {
        &self.new_to_old
    }

    /// Old index of the atom now labeled `new`.
    #[inline]
    pub fn old_of(&self, new: usize) -> usize {
        self.new_to_old[new] as usize
    }

    /// The inverse permutation (`old_to_new`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            inv[old as usize] = new as u32;
        }
        Permutation { new_to_old: inv }
    }

    /// Applies the relabeling to per-atom data: `out[new] = data[old]`.
    pub fn apply<T: Clone>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "data length != permutation length");
        self.new_to_old
            .iter()
            .map(|&old| data[old as usize].clone())
            .collect()
    }

    /// Applies the relabeling in place using a scratch buffer.
    pub fn apply_in_place<T: Clone>(&self, data: &mut Vec<T>) {
        let out = self.apply(data);
        *data = out;
    }

    /// Parallel [`Permutation::apply`]: `out[new] = data[old]`, gathered with
    /// rayon. Each output slot is written by exactly one task, and the gather
    /// order has no effect on the result, so this is bitwise identical to the
    /// serial path. Falls back to the serial gather for small inputs or a
    /// single-thread pool.
    pub fn apply_par<T: Clone + Send + Sync>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "data length != permutation length");
        if rayon::current_num_threads() <= 1 || data.len() < PAR_MIN_CHUNK {
            return self.apply(data);
        }
        self.new_to_old
            .par_iter()
            .map(|&old| data[old as usize].clone())
            .collect()
    }

    /// Parallel [`Permutation::apply_in_place`].
    pub fn apply_in_place_par<T: Clone + Send + Sync>(&self, data: &mut Vec<T>) {
        let out = self.apply_par(data);
        *data = out;
    }

    /// Composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self`.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation sizes differ");
        let new_to_old = self
            .new_to_old
            .iter()
            .map(|&mid| other.new_to_old[mid as usize])
            .collect();
        Permutation { new_to_old }
    }
}

/// Computes the spatial-sort permutation: atoms ordered by linked-cell id
/// (x-major), preserving input order within a cell.
///
/// This is the paper's §II.D.1 transform: after relabeling, consecutive atom
/// indices are spatially adjacent, so the irregular reads in the inner force
/// loops hit nearby cache lines.
pub fn spatial_permutation(sim_box: &SimBox, positions: &[Vec3], cell_size: f64) -> Permutation {
    if positions.is_empty() {
        return Permutation::identity(0);
    }
    let grid = CellGrid::build(sim_box, positions, cell_size);
    let order: Vec<u32> = grid.atoms_in_cell_order().collect();
    Permutation::from_new_to_old(order)
}

/// Parallel [`spatial_permutation`]: bins atoms with
/// [`CellGrid::build_parallel`], whose CSR is bitwise identical to the serial
/// grid, so the resulting permutation is too.
pub fn spatial_permutation_parallel(
    sim_box: &SimBox,
    positions: &[Vec3],
    cell_size: f64,
) -> Permutation {
    if positions.is_empty() {
        return Permutation::identity(0);
    }
    let grid = CellGrid::build_parallel(sim_box, positions, cell_size);
    let order: Vec<u32> = grid.atoms_in_cell_order().collect();
    Permutation::from_new_to_old(order)
}

/// Remaps a CSR adjacency under an atom relabeling, re-canonicalizing each
/// stored pair so that half-list invariants (owner = lower index, rows
/// ascending) survive the relabeling.
pub fn remap_csr(csr: &Csr, perm: &Permutation, kind: NeighborListKind) -> Csr {
    let n = csr.rows();
    assert_eq!(n, perm.len(), "CSR rows != permutation length");
    let old_to_new = perm.inverse();
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(csr.entries());
    match kind {
        NeighborListKind::Half => {
            for (i_old, row) in csr.iter_rows() {
                let i_new = old_to_new.new_to_old[i_old];
                for &j_old in row {
                    let j_new = old_to_new.new_to_old[j_old as usize];
                    let (a, b) = if i_new < j_new { (i_new, j_new) } else { (j_new, i_new) };
                    pairs.push((a, b));
                }
            }
        }
        NeighborListKind::Full => {
            for (i_old, row) in csr.iter_rows() {
                let i_new = old_to_new.new_to_old[i_old];
                for &j_old in row {
                    pairs.push((i_new, old_to_new.new_to_old[j_old as usize]));
                }
            }
        }
    }
    let mut out = Csr::from_pairs(n, &pairs);
    out.sort_rows();
    out
}

/// Applies an atom relabeling to a whole neighbor list (CSR + reference
/// positions), preserving its kind and configuration.
pub fn reorder_neighbor_list(nl: &NeighborList, perm: &Permutation) -> NeighborList {
    let csr = remap_csr(nl.csr(), perm, nl.kind());
    NeighborList::from_parts(nl.config(), csr, perm.apply(nl.ref_positions_raw()))
}

impl NeighborList {
    /// Reassembles a list from parts (used by the reordering transform).
    pub(crate) fn from_parts(
        config: crate::verlet::VerletConfig,
        csr: Csr,
        ref_positions: Vec<Vec3>,
    ) -> NeighborList {
        NeighborList::assemble_from_parts(config, csr, ref_positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verlet::VerletConfig;
    use md_geometry::LatticeSpec;

    #[test]
    fn identity_apply_is_noop() {
        let p = Permutation::identity(4);
        let data = vec![10, 20, 30, 40];
        assert_eq!(p.apply(&data), data);
    }

    #[test]
    fn apply_moves_old_to_new() {
        // new 0 takes old 2, new 1 takes old 0, new 2 takes old 1.
        let p = Permutation::from_new_to_old(vec![2, 0, 1]);
        assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
        assert_eq!(p.old_of(0), 2);
    }

    #[test]
    fn inverse_round_trips() {
        let p = Permutation::from_new_to_old(vec![3, 1, 0, 2]);
        let data = vec![1, 2, 3, 4];
        let there = p.apply(&data);
        let back = p.inverse().apply(&there);
        assert_eq!(back, data);
    }

    #[test]
    fn compose_applies_right_then_left() {
        let f = Permutation::from_new_to_old(vec![1, 2, 0]);
        let g = Permutation::from_new_to_old(vec![2, 1, 0]);
        let fg = f.compose(&g);
        let data = vec!['x', 'y', 'z'];
        assert_eq!(fg.apply(&data), f.apply(&g.apply(&data)));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_rejected() {
        let _ = Permutation::from_new_to_old(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let _ = Permutation::from_new_to_old(vec![0, 3]);
    }

    #[test]
    fn spatial_permutation_is_a_permutation_and_clusters_cells() {
        let (bx, pos) = LatticeSpec::bcc_fe(3).build();
        let p = spatial_permutation(&bx, &pos, 2.9);
        assert_eq!(p.len(), pos.len());
        // After relabeling, consecutive atoms should mostly be nearby:
        // measure mean distance between consecutive indices before/after.
        let reordered = p.apply(&pos);
        let mean_step = |ps: &[md_geometry::Vec3]| {
            ps.windows(2)
                .map(|w| bx.distance_sq(w[0], w[1]).sqrt())
                .sum::<f64>()
                / (ps.len() - 1) as f64
        };
        // BCC generation order is already fairly local; the reorder must not
        // be dramatically worse and must remain a valid permutation.
        assert!(mean_step(&reordered) <= mean_step(&pos) * 2.0);
        let mut sorted = p.new_to_old().to_vec();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..pos.len() as u32).collect();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn apply_par_matches_serial_apply() {
        let (bx, pos) = LatticeSpec::bcc_fe(6).build();
        let p = spatial_permutation(&bx, &pos, 2.9);
        assert_eq!(p.apply_par(&pos), p.apply(&pos));
        let mut in_place = pos.clone();
        p.apply_in_place_par(&mut in_place);
        assert_eq!(in_place, p.apply(&pos));
    }

    #[test]
    fn parallel_spatial_permutation_matches_serial() {
        let (bx, pos) = LatticeSpec::bcc_fe(6).build();
        let serial = spatial_permutation(&bx, &pos, 2.9);
        let parallel = spatial_permutation_parallel(&bx, &pos, 2.9);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn remap_preserves_pair_set_half() {
        let (bx, pos) = LatticeSpec::bcc_fe(2).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(2.5, 0.0));
        let p = Permutation::from_new_to_old({
            // reverse order — a maximally disruptive relabeling
            (0..pos.len() as u32).rev().collect()
        });
        let remapped = remap_csr(nl.csr(), &p, NeighborListKind::Half);
        // The set of unordered pairs (translated back) must be identical.
        let to_old = |x: u32| p.new_to_old()[x as usize];
        let mut orig: Vec<(u32, u32)> = nl
            .csr()
            .iter_rows()
            .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
            .collect();
        let mut back: Vec<(u32, u32)> = remapped
            .iter_rows()
            .flat_map(|(i, r)| {
                r.iter().map(move |&j| {
                    let (a, b) = (to_old(i as u32), to_old(j));
                    if a < b {
                        (a, b)
                    } else {
                        (b, a)
                    }
                })
            })
            .collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
        // Half invariants hold after remap.
        for (i, row) in remapped.iter_rows() {
            for &j in row {
                assert!(j as usize > i);
            }
        }
    }

    #[test]
    fn reordered_list_agrees_with_rebuild() {
        // Reordering the list must equal rebuilding from reordered positions.
        let (bx, pos) = LatticeSpec::bcc_fe(2).build();
        let cfg = VerletConfig::half(2.5, 0.2);
        let nl = NeighborList::build(&bx, &pos, cfg);
        let p = spatial_permutation(&bx, &pos, cfg.reach());
        let reordered = reorder_neighbor_list(&nl, &p);
        let rebuilt = NeighborList::build(&bx, &p.apply(&pos), cfg);
        let pairs = |l: &NeighborList| {
            let mut v: Vec<(u32, u32)> = l
                .csr()
                .iter_rows()
                .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(pairs(&reordered), pairs(&rebuilt));
    }
}
