//! # md-neighbor
//!
//! Neighbor-finding machinery for short-range molecular dynamics:
//!
//! * [`CellGrid`] — linked-cell binning of atoms into cutoff-sized cells;
//! * [`NeighborList`] — Verlet neighbor lists (Verlet 1967), in both the
//!   **half** form (each pair stored once, enabling Newton's-third-law
//!   accumulation — the source of the irregular-reduction hazard the paper
//!   solves) and the **full** form (each pair stored twice, used by the
//!   paper's *Redundant Computation* baseline);
//! * [`Csr`] — compressed sparse row storage. This is exactly the paper's
//!   "regular arrays" representation of `neighindex[]` / `neighlen[]`
//!   (§II.D.2): a single offsets array replaces both irregular arrays;
//! * [`reorder`] — the paper's data-reordering locality optimizations
//!   (§II.D): spatially sorted atom order and ascending-sorted neighbor rows.
//!
//! All atom indices are `u32` (4 bytes) rather than `usize`: neighbor lists
//! dominate the memory footprint of EAM simulations (the paper's motivation,
//! §I), and halving index width halves that footprint and the bandwidth the
//! force loops consume.

#![warn(missing_docs)]

pub mod cell_grid;
pub mod cluster;
pub mod csr;
pub mod reorder;
pub mod stats;
pub mod verlet;

pub use cell_grid::CellGrid;
pub use cluster::{cluster_permutation, ClusterList, DEFAULT_CLUSTER_M};
pub use csr::Csr;
pub use reorder::Permutation;
pub use stats::NeighborStats;
pub use verlet::{NeighborList, NeighborListKind, VerletConfig};
