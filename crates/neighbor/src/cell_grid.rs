//! Linked-cell binning.
//!
//! Atoms are binned into a regular grid of cells whose edge is at least the
//! interaction range, so all neighbors of an atom lie in its own cell or the
//! 26 surrounding cells. Construction is a counting sort (O(N)); the cell
//! contents are stored in CSR form, so a build performs exactly three passes
//! over the atoms and two allocations. [`CellGrid::build_parallel`] runs the
//! same counting sort chunked over rayon workers with prefix-summed write
//! windows, producing bytes identical to the serial build at any thread
//! count.

use crate::csr::{Csr, PAR_MIN_CHUNK};
use md_geometry::{SimBox, Vec3};
use rayon::prelude::*;

/// A regular grid of cells over a periodic simulation box, with atoms binned
/// into cells.
#[derive(Debug, Clone)]
pub struct CellGrid {
    dims: [usize; 3],
    cells: Csr,
    /// cell id of each atom, kept for O(1) lookup.
    atom_cell: Vec<u32>,
}

impl CellGrid {
    /// Bins `positions` into cells of edge ≥ `min_cell` inside `sim_box`.
    ///
    /// Positions must already be wrapped into the primary image along the
    /// periodic axes. Along non-periodic axes, atoms that drifted past a
    /// face are binned into the boundary cell instead of being rejected —
    /// open boundaries make such drift legitimate, and higher layers (the
    /// simulation watchdog) decide when it has become an escape.
    ///
    /// # Panics
    /// Panics if `min_cell` is not positive, exceeds any box edge, or if
    /// any position lies outside the primary image along a periodic axis.
    pub fn build(sim_box: &SimBox, positions: &[Vec3], min_cell: f64) -> CellGrid {
        let geo = GridGeometry::of(sim_box, min_cell);
        let atom_cell: Vec<u32> = positions
            .iter()
            .enumerate()
            .map(|(a, &p)| geo.bin_atom(sim_box, a, p))
            .collect();
        let cells = Csr::group_by_key(geo.cell_count(), &atom_cell);
        CellGrid {
            dims: geo.dims,
            cells,
            atom_cell,
        }
    }

    /// [`CellGrid::build`] with rayon-parallel binning, bitwise-identical
    /// to the serial build for every thread count.
    ///
    /// Cell assignment is a pure per-atom map (order-preserving parallel
    /// collect), and the CSR scatter is the deterministic chunked counting
    /// sort of [`Csr::group_by_key_par`]. Runs on the current rayon pool —
    /// call it inside `ThreadPool::install`; on a one-worker pool (or a
    /// small system) it takes the serial path.
    ///
    /// # Panics
    /// As [`CellGrid::build`].
    pub fn build_parallel(sim_box: &SimBox, positions: &[Vec3], min_cell: f64) -> CellGrid {
        let geo = GridGeometry::of(sim_box, min_cell);
        if rayon::current_num_threads() <= 1 || positions.len() < 2 * PAR_MIN_CHUNK {
            return CellGrid::build(sim_box, positions, min_cell);
        }
        let atom_cell: Vec<u32> = positions
            .par_iter()
            .enumerate()
            .map(|(a, &p)| geo.bin_atom(sim_box, a, p))
            .collect();
        let cells = Csr::group_by_key_par(geo.cell_count(), &atom_cell);
        CellGrid {
            dims: geo.dims,
            cells,
            atom_cell,
        }
    }

    /// Grid dimensions (number of cells along each axis).
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Total number of cells.
    #[inline]
    pub fn cell_count(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Atoms contained in cell `c`.
    #[inline]
    pub fn cell_atoms(&self, c: usize) -> &[u32] {
        self.cells.row(c)
    }

    /// Cell id of atom `a`.
    #[inline]
    pub fn cell_of_atom(&self, a: usize) -> usize {
        self.atom_cell[a] as usize
    }

    /// Linear cell id from 3-D cell coordinates.
    #[inline]
    pub fn cell_id(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (ix * self.dims[1] + iy) * self.dims[2] + iz
    }

    /// 3-D cell coordinates from a linear id.
    #[inline]
    pub fn cell_coords(&self, c: usize) -> [usize; 3] {
        let iz = c % self.dims[2];
        let iy = (c / self.dims[2]) % self.dims[1];
        let ix = c / (self.dims[1] * self.dims[2]);
        [ix, iy, iz]
    }

    /// The *unique* cells in the 3×3×3 stencil around cell `c`, with periodic
    /// wrap. When the grid has fewer than three cells along some axis the
    /// wrapped stencil would repeat cells; duplicates are removed so that a
    /// pair of cells appears at most once.
    pub fn stencil(&self, c: usize) -> Vec<usize> {
        let [ix, iy, iz] = self.cell_coords(c);
        let mut out = Vec::with_capacity(27);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nx = wrap(ix as i64 + dx, self.dims[0]);
                    let ny = wrap(iy as i64 + dy, self.dims[1]);
                    let nz = wrap(iz as i64 + dz, self.dims[2]);
                    out.push(self.cell_id(nx, ny, nz));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Iterates all atoms in cell order (used by the spatial-sort reordering).
    pub fn atoms_in_cell_order(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.cell_count()).flat_map(move |c| self.cell_atoms(c).iter().copied())
    }

    /// Mean atoms per cell.
    pub fn mean_occupancy(&self) -> f64 {
        self.atom_cell.len() as f64 / self.cell_count() as f64
    }
}

/// Grid dimensions and the cell-index map, shared by the serial and the
/// parallel builder so the two can never diverge in how they bin an atom.
#[derive(Debug, Clone, Copy)]
struct GridGeometry {
    dims: [usize; 3],
    inv_cell: Vec3,
    lengths: Vec3,
}

impl GridGeometry {
    fn of(sim_box: &SimBox, min_cell: f64) -> GridGeometry {
        assert!(min_cell > 0.0 && min_cell.is_finite(), "min_cell must be positive");
        let l = sim_box.lengths();
        let mut dims = [0usize; 3];
        for d in 0..3 {
            let n = (l[d] / min_cell).floor() as usize;
            assert!(n >= 1, "cell size {min_cell} exceeds box edge {}", l[d]);
            dims[d] = n;
        }
        let inv_cell = Vec3::new(
            dims[0] as f64 / l.x,
            dims[1] as f64 / l.y,
            dims[2] as f64 / l.z,
        );
        GridGeometry {
            dims,
            inv_cell,
            lengths: l,
        }
    }

    #[inline]
    fn cell_count(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Cell id of atom `a` at position `p`, with the periodic-image check
    /// and the open-boundary clamp.
    #[inline]
    fn bin_atom(&self, sim_box: &SimBox, a: usize, p: Vec3) -> u32 {
        let l = self.lengths;
        let mut q = p;
        for (d, axis) in md_geometry::Axis::ALL.into_iter().enumerate() {
            if sim_box.is_periodic(axis) {
                assert!(
                    p[d] >= 0.0 && p[d] < l[d],
                    "atom {a} at {p} outside primary image of box {l}"
                );
            } else {
                // Open boundary: atoms may legitimately drift past the
                // face. Bin them into the boundary cell; the simulation
                // watchdog decides when drift has become an escape.
                q[d] = p[d].clamp(0.0, l[d]);
            }
        }
        cell_of(q, self.inv_cell, self.dims) as u32
    }
}

#[inline]
fn wrap(i: i64, n: usize) -> usize {
    let n = n as i64;
    (((i % n) + n) % n) as usize
}

#[inline]
fn cell_of(p: Vec3, inv_cell: Vec3, dims: [usize; 3]) -> usize {
    let mut idx = [0usize; 3];
    for d in 0..3 {
        // Clamp handles positions within float-epsilon of the upper edge.
        let i = (p[d] * inv_cell[d]) as usize;
        idx[d] = i.min(dims[d] - 1);
    }
    (idx[0] * dims[1] + idx[1]) * dims[2] + idx[2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;

    #[test]
    fn every_atom_lands_in_exactly_one_cell() {
        let (bx, pos) = LatticeSpec::bcc_fe(3).build();
        let g = CellGrid::build(&bx, &pos, 2.87);
        let total: usize = (0..g.cell_count()).map(|c| g.cell_atoms(c).len()).sum();
        assert_eq!(total, pos.len());
        for a in 0..pos.len() {
            let c = g.cell_of_atom(a);
            assert!(g.cell_atoms(c).contains(&(a as u32)));
        }
    }

    #[test]
    fn parallel_build_matches_serial_bitwise() {
        // bcc_fe(11) = 2662 atoms > 2 * PAR_MIN_CHUNK, so the chunked
        // counting sort actually runs rather than falling back.
        let (bx, pos) = LatticeSpec::bcc_fe(11).build();
        let serial = CellGrid::build(&bx, &pos, 2.87);
        for threads in [2usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let parallel = pool.install(|| CellGrid::build_parallel(&bx, &pos, 2.87));
            assert_eq!(serial.dims(), parallel.dims());
            assert_eq!(serial.cells, parallel.cells);
        }
    }

    #[test]
    fn dims_respect_min_cell() {
        let bx = SimBox::cubic(10.0);
        let g = CellGrid::build(&bx, &[Vec3::splat(1.0)], 3.0);
        assert_eq!(g.dims(), [3, 3, 3]);
        // Each cell edge is 10/3 ≈ 3.33 ≥ 3.0.
    }

    #[test]
    fn cell_id_coords_round_trip() {
        let bx = SimBox::periodic(Vec3::new(12.0, 8.0, 20.0));
        let g = CellGrid::build(&bx, &[Vec3::splat(0.5)], 2.0);
        for c in 0..g.cell_count() {
            let [ix, iy, iz] = g.cell_coords(c);
            assert_eq!(g.cell_id(ix, iy, iz), c);
        }
    }

    #[test]
    fn stencil_full_grid_has_27_unique_cells() {
        let bx = SimBox::cubic(12.0);
        let g = CellGrid::build(&bx, &[Vec3::splat(0.5)], 3.0); // 4×4×4
        let s = g.stencil(g.cell_id(1, 1, 1));
        assert_eq!(s.len(), 27);
    }

    #[test]
    fn stencil_wraps_at_boundary() {
        let bx = SimBox::cubic(12.0);
        let g = CellGrid::build(&bx, &[Vec3::splat(0.5)], 3.0); // 4×4×4
        let s = g.stencil(g.cell_id(0, 0, 0));
        assert_eq!(s.len(), 27);
        // The wrapped neighbor (3,3,3) must be present.
        assert!(s.contains(&g.cell_id(3, 3, 3)));
    }

    #[test]
    fn stencil_dedups_on_small_grids() {
        let bx = SimBox::cubic(4.0);
        let g = CellGrid::build(&bx, &[Vec3::splat(0.5)], 2.0); // 2×2×2 grid
        let s = g.stencil(0);
        // With 2 cells per axis the 27-stencil collapses to all 8 cells.
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn atoms_near_upper_edge_are_clamped_into_last_cell() {
        let bx = SimBox::cubic(10.0);
        let p = Vec3::splat(10.0 - 1e-13);
        let g = CellGrid::build(&bx, &[p], 2.5);
        let c = g.cell_of_atom(0);
        assert_eq!(g.cell_coords(c), [3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "outside primary image")]
    fn unwrapped_positions_are_rejected() {
        let bx = SimBox::cubic(10.0);
        let _ = CellGrid::build(&bx, &[Vec3::splat(10.5)], 2.5);
    }

    #[test]
    fn open_axis_overflow_bins_into_the_boundary_cell() {
        // z is non-periodic: drift past either face is tolerated and lands
        // in the nearest boundary cell instead of panicking.
        let bx = SimBox::with_periodicity(Vec3::splat(10.0), [true, true, false]);
        let above = Vec3::new(1.0, 1.0, 13.5);
        let below = Vec3::new(1.0, 1.0, -2.0);
        let g = CellGrid::build(&bx, &[above, below], 2.5);
        assert_eq!(g.cell_coords(g.cell_of_atom(0)), [0, 0, 3]);
        assert_eq!(g.cell_coords(g.cell_of_atom(1)), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "exceeds box edge")]
    fn oversized_cell_rejected() {
        let bx = SimBox::cubic(2.0);
        let _ = CellGrid::build(&bx, &[Vec3::splat(0.5)], 3.0);
    }

    #[test]
    fn cell_order_iteration_covers_all_atoms() {
        let (bx, pos) = LatticeSpec::bcc_fe(2).build();
        let g = CellGrid::build(&bx, &pos, 2.8);
        let mut seen: Vec<u32> = g.atoms_in_cell_order().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..pos.len() as u32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn mean_occupancy_is_total_over_cells() {
        let (bx, pos) = LatticeSpec::bcc_fe(3).build();
        let g = CellGrid::build(&bx, &pos, 2.87);
        let expected = pos.len() as f64 / g.cell_count() as f64;
        assert!((g.mean_occupancy() - expected).abs() < 1e-12);
    }
}
