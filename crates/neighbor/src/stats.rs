//! Neighbor-count statistics.
//!
//! The paper motivates SDC partly by metals' high coordination ("metal atoms
//! usually have more neighboring atoms than other type atoms", §I) — these
//! statistics make that density visible in examples and benchmarks.

use crate::csr::Csr;

/// Per-row (per-atom) count statistics of a CSR adjacency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborStats {
    /// Smallest row length.
    pub min: usize,
    /// Largest row length.
    pub max: usize,
    /// Mean row length.
    pub mean: f64,
    /// Total stored entries.
    pub total: usize,
    /// Number of rows.
    pub rows: usize,
}

impl NeighborStats {
    /// Computes statistics over all rows of a CSR.
    ///
    /// For an empty CSR (no rows) all fields are zero.
    pub fn of_csr(csr: &Csr) -> NeighborStats {
        let rows = csr.rows();
        if rows == 0 {
            return NeighborStats {
                min: 0,
                max: 0,
                mean: 0.0,
                total: 0,
                rows: 0,
            };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for i in 0..rows {
            let l = csr.row_len(i);
            min = min.min(l);
            max = max.max(l);
        }
        let total = csr.entries();
        NeighborStats {
            min,
            max,
            mean: total as f64 / rows as f64,
            total,
            rows,
        }
    }
}

impl std::fmt::Display for NeighborStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries over {} atoms (min {}, mean {:.2}, max {})",
            self.total, self.rows, self.min, self.mean, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_csr() {
        let c = Csr::from_rows(&[vec![1, 2, 3], vec![0], vec![]]);
        let s = NeighborStats::of_csr(&c);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.total, 4);
        assert_eq!(s.rows, 3);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_csr() {
        let s = NeighborStats::of_csr(&Csr::empty(0));
        assert_eq!(s.rows, 0);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_is_informative() {
        let c = Csr::from_rows(&[vec![1], vec![0]]);
        let s = NeighborStats::of_csr(&c).to_string();
        assert!(s.contains("2 entries"));
        assert!(s.contains("2 atoms"));
    }
}
