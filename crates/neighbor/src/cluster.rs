//! Cluster-of-M neighbor grouping for lane-parallel force kernels.
//!
//! The SIMD fused EAM path evaluates spline lookups four pairs at a time.
//! To feed full lanes it walks the half list **cluster by cluster**: a
//! cluster is `M` consecutive CSR rows, and because a half list stores each
//! row's entries contiguously, every cluster owns one contiguous span of
//! pair slots. Pairs from all rows of a cluster are packed into lane
//! batches together, so the only partially-filled batch per cluster is its
//! tail — lane occupancy approaches 1 as cluster spans grow.
//!
//! Combined with the spatial relabeling of [`crate::reorder`] (see
//! [`cluster_permutation`]), consecutive rows are spatially adjacent atoms,
//! so the four lanes of a batch read neighboring table segments and
//! positions from nearby cache lines — the cluster-pair formats of
//! Mangiardi & Meyer (arXiv:1611.00075) applied to a CSR half list.
//!
//! The grouping is **purely an iteration schedule**: atoms are never
//! relabeled by clustering and the CSR itself is untouched, so checkpoints,
//! dumps and gathered observables cannot observe whether clustering was on.

use crate::csr::Csr;
use crate::reorder::{spatial_permutation, Permutation};
use md_geometry::{SimBox, Vec3};
use std::ops::Range;

/// Default cluster height: four CSR rows per cluster, matching the 4-wide
/// f64 lanes of the AVX2 spline kernels.
pub const DEFAULT_CLUSTER_M: usize = 4;

/// A grouping of a half list's rows into clusters of `M` consecutive rows
/// (the last cluster may be shorter). See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterList {
    m: usize,
    rows: usize,
    /// `starts[c]` = first pair slot of cluster `c`; `starts[clusters()]` =
    /// total entry count. Slot spans are contiguous and disjoint, which is
    /// what lets the precompute pass scatter into per-slot scratch from
    /// several clusters in parallel.
    starts: Vec<u32>,
}

impl ClusterList {
    /// Groups `csr`'s rows into clusters of `m` consecutive rows.
    ///
    /// # Panics
    /// Panics if `m == 0`.
    pub fn build(csr: &Csr, m: usize) -> ClusterList {
        assert!(m > 0, "cluster height m must be positive");
        let rows = csr.rows();
        let offsets = csr.offsets();
        let clusters = rows.div_ceil(m);
        let mut starts = Vec::with_capacity(clusters + 1);
        for c in 0..=clusters {
            starts.push(offsets[(c * m).min(rows)]);
        }
        ClusterList { m, rows, starts }
    }

    /// Cluster height `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of rows of the underlying CSR.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of clusters.
    #[inline]
    pub fn clusters(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of pair slots covered.
    #[inline]
    pub fn entries(&self) -> usize {
        *self.starts.last().expect("starts is never empty") as usize
    }

    /// The CSR rows belonging to cluster `c`.
    #[inline]
    pub fn cluster_rows(&self, c: usize) -> Range<usize> {
        let lo = c * self.m;
        lo..((c + 1) * self.m).min(self.rows)
    }

    /// The contiguous pair-slot span of cluster `c`.
    #[inline]
    pub fn cluster_span(&self, c: usize) -> Range<usize> {
        self.starts[c] as usize..self.starts[c + 1] as usize
    }

    /// Fraction of SIMD lanes that carry real pairs when each cluster's
    /// span is packed into `width`-wide batches (only the tail batch of a
    /// cluster can run partially filled): `entries / (width · Σ_c
    /// ⌈span_c/width⌉)`. Returns 1.0 for an empty list. Feeds the perf
    /// model's lane-efficiency term.
    pub fn lane_occupancy(&self, width: usize) -> f64 {
        assert!(width > 0, "lane width must be positive");
        let batches: usize = (0..self.clusters())
            .map(|c| self.cluster_span(c).len().div_ceil(width))
            .sum();
        if batches == 0 {
            return 1.0;
        }
        self.entries() as f64 / (width * batches) as f64
    }

    /// Heap bytes used by the grouping (memory-overhead reporting).
    pub fn heap_bytes(&self) -> usize {
        self.starts.capacity() * std::mem::size_of::<u32>()
    }
}

/// The atom relabeling that makes clusters spatially coherent: atoms sorted
/// by linked-cell id, so the `M` rows of a cluster sit in the same (or an
/// adjacent) cell and their lanes touch nearby memory. This is exactly the
/// §II.D.1 spatial sort — clustering adds no relabeling of its own, which
/// is what keeps checkpoints and dumps identical with clustering on or off.
pub fn cluster_permutation(sim_box: &SimBox, positions: &[Vec3], cell_size: f64) -> Permutation {
    spatial_permutation(sim_box, positions, cell_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;

    fn sample() -> Csr {
        // Ten rows with assorted lengths, including empty rows.
        Csr::from_rows(&[
            vec![1, 2, 3],
            vec![2],
            vec![],
            vec![4, 5],
            vec![5, 6, 7, 8],
            vec![6],
            vec![7],
            vec![8, 9],
            vec![9],
            vec![],
        ])
    }

    #[test]
    fn spans_partition_all_entries_in_order() {
        let csr = sample();
        for m in [1, 2, 3, 4, 7, 10, 13] {
            let cl = ClusterList::build(&csr, m);
            assert_eq!(cl.m(), m);
            assert_eq!(cl.rows(), csr.rows());
            assert_eq!(cl.clusters(), csr.rows().div_ceil(m));
            assert_eq!(cl.entries(), csr.entries());
            let mut next_slot = 0;
            let mut next_row = 0;
            for c in 0..cl.clusters() {
                let rows = cl.cluster_rows(c);
                let span = cl.cluster_span(c);
                assert_eq!(rows.start, next_row, "row gap at cluster {c} (m = {m})");
                assert_eq!(span.start, next_slot, "slot gap at cluster {c} (m = {m})");
                // The span is exactly the union of its rows' entry ranges.
                let row_total: usize = rows.clone().map(|i| csr.row_len(i)).sum();
                assert_eq!(span.len(), row_total);
                next_row = rows.end;
                next_slot = span.end;
            }
            assert_eq!(next_row, csr.rows());
            assert_eq!(next_slot, csr.entries());
        }
    }

    #[test]
    fn remainder_cluster_is_shorter() {
        let cl = ClusterList::build(&sample(), 4);
        assert_eq!(cl.clusters(), 3);
        assert_eq!(cl.cluster_rows(2), 8..10);
    }

    #[test]
    fn lane_occupancy_bounds_and_exact_cases() {
        let csr = sample();
        for m in [1, 2, 4, 8] {
            let occ = ClusterList::build(&csr, m).lane_occupancy(4);
            assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ} out of range");
        }
        // One cluster spanning everything: 15 entries over ceil(15/4) = 4
        // batches of width 4.
        assert_eq!(csr.entries(), 15);
        let one = ClusterList::build(&csr, 16);
        assert!((one.lane_occupancy(4) - 15.0 / 16.0).abs() < 1e-15);
        // Width 1 packs perfectly.
        assert_eq!(ClusterList::build(&csr, 4).lane_occupancy(1), 1.0);
        // Empty list: defined as fully occupied.
        assert_eq!(ClusterList::build(&Csr::empty(5), 4).lane_occupancy(4), 1.0);
    }

    #[test]
    fn occupancy_grows_with_cluster_height() {
        // Taller clusters merge row remainders: occupancy must not drop.
        let csr = sample();
        let o1 = ClusterList::build(&csr, 1).lane_occupancy(4);
        let o4 = ClusterList::build(&csr, 4).lane_occupancy(4);
        let oall = ClusterList::build(&csr, csr.rows()).lane_occupancy(4);
        assert!(o1 <= o4 + 1e-15);
        assert!(o4 <= oall + 1e-15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cluster_height_rejected() {
        let _ = ClusterList::build(&sample(), 0);
    }

    #[test]
    fn cluster_permutation_is_the_spatial_sort() {
        let (bx, pos) = LatticeSpec::bcc_fe(3).build();
        assert_eq!(
            cluster_permutation(&bx, &pos, 2.9),
            spatial_permutation(&bx, &pos, 2.9)
        );
    }

    #[test]
    fn heap_bytes_counts_starts() {
        let cl = ClusterList::build(&sample(), 4);
        assert!(cl.heap_bytes() >= (cl.clusters() + 1) * 4);
    }
}
