//! Compressed sparse row (CSR) adjacency storage.
//!
//! The paper's serial code (its Figs. 1–2) walks neighbor lists through two
//! *irregular* arrays, `neighindex[i]` (start of atom `i`'s neighbors) and
//! `neighlen[i]` (their count). Its §II.D.2 optimization replaces them with
//! "regular arrays" so that accesses become sequential — which is precisely
//! the CSR layout implemented here: one `offsets` array of length `n + 1`
//! (monotone, so `offsets[i+1] - offsets[i]` *is* `neighlen[i]`) plus one
//! contiguous `indices` array.

use rayon::prelude::*;

/// Below this many elements a parallel build is all overhead; the parallel
/// entry points fall back to their serial twins (which produce identical
/// bytes, so the cutover is invisible to callers).
pub(crate) const PAR_MIN_CHUNK: usize = 1024;

/// A `&mut [u32]` that can be scattered into from several rayon workers at
/// once. Soundness is the *caller's* obligation: every slot must be written
/// by at most one worker (the deterministic counting-sort window argument).
pub(crate) struct SharedSlots<'a> {
    ptr: *mut u32,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [u32]>,
}

// SAFETY: the raw pointer is only dereferenced through `write`, whose
// contract requires disjoint slots across workers.
unsafe impl Sync for SharedSlots<'_> {}
unsafe impl Send for SharedSlots<'_> {}

impl<'a> SharedSlots<'a> {
    pub(crate) fn new(data: &'a mut [u32]) -> SharedSlots<'a> {
        SharedSlots {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Writes `v` into slot `at`.
    ///
    /// # Safety
    /// `at` must be in bounds and no other worker may ever write (or read)
    /// the same slot while this `SharedSlots` is alive.
    pub(crate) unsafe fn write(&self, at: usize, v: u32) {
        debug_assert!(at < self.len, "slot {at} out of bounds ({})", self.len);
        unsafe { *self.ptr.add(at) = v };
    }
}

/// CSR adjacency: `indices[offsets[i] .. offsets[i+1]]` are the neighbors of
/// row `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    indices: Vec<u32>,
}

impl Csr {
    /// An empty CSR with `rows` empty rows.
    pub fn empty(rows: usize) -> Csr {
        Csr {
            offsets: vec![0; rows + 1],
            indices: Vec::new(),
        }
    }

    /// Builds a CSR from per-row neighbor vectors.
    pub fn from_rows(rows: &[Vec<u32>]) -> Csr {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut total = 0u32;
        offsets.push(0);
        for r in rows {
            total = total
                .checked_add(r.len() as u32)
                .expect("CSR entry count overflows u32");
            offsets.push(total);
        }
        let mut indices = Vec::with_capacity(total as usize);
        for r in rows {
            indices.extend_from_slice(r);
        }
        Csr { offsets, indices }
    }

    /// Builds a *square* CSR adjacency with `rows` rows from `(row, value)`
    /// pairs in any order, by counting sort. Within each row, values keep
    /// their input order (the sort is stable).
    ///
    /// Both the row and the value of every pair are validated against
    /// `rows`: a neighbor index pointing past the atom count is a
    /// correctness bug in the producer, and letting it through would only
    /// surface later as an out-of-bounds panic (or silent garbage) deep in
    /// a force kernel. Use [`Csr::from_pairs_rect`] for non-square maps
    /// (e.g. cells × atoms).
    ///
    /// # Panics
    /// Panics if any row or value is `≥ rows`.
    pub fn from_pairs(rows: usize, pairs: &[(u32, u32)]) -> Csr {
        for &(_, v) in pairs {
            assert!(
                (v as usize) < rows,
                "value {v} out of range for square adjacency (rows = {rows})"
            );
        }
        Csr::from_pairs_rect(rows, rows, pairs)
    }

    /// Builds a *rectangular* CSR with `rows` rows from `(row, value)`
    /// pairs, by stable counting sort; values are validated against `cols`.
    ///
    /// # Panics
    /// Panics if any row is `≥ rows` or any value is `≥ cols`.
    pub fn from_pairs_rect(rows: usize, cols: usize, pairs: &[(u32, u32)]) -> Csr {
        let mut counts = vec![0u32; rows + 1];
        for &(r, v) in pairs {
            assert!((r as usize) < rows, "row {r} out of range (rows = {rows})");
            assert!((v as usize) < cols, "value {v} out of range (cols = {cols})");
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; pairs.len()];
        for &(r, v) in pairs {
            let at = cursor[r as usize];
            indices[at as usize] = v;
            cursor[r as usize] += 1;
        }
        Csr { offsets, indices }
    }

    /// Groups the value `i` under row `keys[i]` for every `i`: the CSR whose
    /// row `r` lists, in ascending order, the positions where `keys` equals
    /// `r`. Equivalent to `from_pairs_rect(rows, keys.len(), [(keys[i], i)])`
    /// — the one-pass stable counting sort linked-cell binning uses.
    ///
    /// # Panics
    /// Panics if any key is `≥ rows`.
    pub fn group_by_key(rows: usize, keys: &[u32]) -> Csr {
        let mut counts = vec![0u32; rows + 1];
        for &k in keys {
            assert!((k as usize) < rows, "key {k} out of range (rows = {rows})");
            counts[k as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; keys.len()];
        for (i, &k) in keys.iter().enumerate() {
            let at = cursor[k as usize];
            indices[at as usize] = i as u32;
            cursor[k as usize] += 1;
        }
        Csr { offsets, indices }
    }

    /// Parallel [`Csr::group_by_key`], bitwise-identical to the serial form
    /// for every thread count.
    ///
    /// The input is split into one contiguous chunk per worker; each worker
    /// counts its keys privately, a column-wise exclusive prefix over
    /// `(chunk, row)` turns the private counts into disjoint write windows,
    /// and every worker then scatters its values into its own windows. The
    /// windows partition `0..keys.len()` exactly as the serial stable
    /// counting sort fills it, so the offsets *and* the indices come out
    /// byte-identical regardless of how many workers ran. Runs on the
    /// current rayon pool; with one worker (or a small input) it falls back
    /// to the serial code path.
    ///
    /// # Panics
    /// Panics if any key is `≥ rows`.
    pub fn group_by_key_par(rows: usize, keys: &[u32]) -> Csr {
        let workers = rayon::current_num_threads();
        if workers <= 1 || keys.len() < 2 * PAR_MIN_CHUNK {
            return Csr::group_by_key(rows, keys);
        }
        let chunk = keys.len().div_ceil(workers).max(PAR_MIN_CHUNK);
        let n_chunks = keys.len().div_ceil(chunk);
        let chunk_of = |t: usize| &keys[t * chunk..((t + 1) * chunk).min(keys.len())];
        // Per-chunk private histograms (validated in parallel).
        let locals: Vec<Vec<u32>> = (0..n_chunks)
            .into_par_iter()
            .map(|t| {
                let mut counts = vec![0u32; rows];
                for &k in chunk_of(t) {
                    assert!((k as usize) < rows, "key {k} out of range (rows = {rows})");
                    counts[k as usize] += 1;
                }
                counts
            })
            .collect();
        // Global offsets, then per-(chunk, row) start cursors: chunk t's
        // window in row r begins after every earlier chunk's keys for r.
        let mut offsets = vec![0u32; rows + 1];
        for r in 0..rows {
            let total: u32 = locals.iter().map(|l| l[r]).sum();
            offsets[r + 1] = offsets[r] + total;
        }
        let mut starts: Vec<Vec<u32>> = Vec::with_capacity(n_chunks);
        let mut cursor = offsets[..rows].to_vec();
        for local in &locals {
            starts.push(cursor.clone());
            for r in 0..rows {
                cursor[r] += local[r];
            }
        }
        let mut indices = vec![0u32; keys.len()];
        {
            let slots = SharedSlots::new(&mut indices);
            let slots = &slots;
            starts
                .into_par_iter()
                .enumerate()
                .for_each(|(t, mut cur)| {
                    let base = t * chunk;
                    for (i, &k) in chunk_of(t).iter().enumerate() {
                        let at = cur[k as usize];
                        cur[k as usize] += 1;
                        // SAFETY: `at` lies in chunk t's private window of
                        // row k — windows are disjoint across chunks and
                        // rows and partition 0..keys.len(), so no two
                        // workers ever write the same slot.
                        unsafe { slots.write(at as usize, (base + i) as u32) };
                    }
                });
        }
        Csr { offsets, indices }
    }

    /// Assembles a CSR directly from raw parts.
    ///
    /// # Panics
    /// Panics unless `offsets` is non-empty, monotone non-decreasing, starts
    /// at 0 and ends at `indices.len()`.
    pub fn from_raw(offsets: Vec<u32>, indices: Vec<u32>) -> Csr {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone non-decreasing"
        );
        assert_eq!(
            *offsets.last().unwrap() as usize,
            indices.len(),
            "last offset must equal indices length"
        );
        Csr { offsets, indices }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored entries.
    #[inline]
    pub fn entries(&self) -> usize {
        self.indices.len()
    }

    /// The neighbors of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of row `i` (the paper's `neighlen[i]`).
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The raw offsets array (the paper's regularized `neighindex[]`).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw indices array (the paper's `neighlist[]`).
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates `(row, &neighbors)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        (0..self.rows()).map(move |i| (i, self.row(i)))
    }

    /// Sorts every row ascending in place (the paper's §II.D.1 neighbor
    /// reordering, which makes the inner-loop reads of `rho[j]` sweep memory
    /// monotonically).
    pub fn sort_rows(&mut self) {
        for i in 0..self.rows() {
            let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            self.indices[s..e].sort_unstable();
        }
    }

    /// Returns the *mirrored* CSR: entry `j ∈ row(i)` becomes `i ∈ row(j)`.
    ///
    /// Applied to a half neighbor list this yields "the other half"; the
    /// union (see [`Csr::symmetrized`]) is the full list the Redundant
    /// Computation baseline consumes.
    pub fn mirrored(&self) -> Csr {
        let n = self.rows();
        let mut counts = vec![0u32; n + 1];
        for &j in &self.indices {
            assert!((j as usize) < n, "mirror requires square adjacency");
            counts[j as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut indices = vec![0u32; self.indices.len()];
        for (i, row) in self.iter_rows() {
            for &j in row {
                let at = cursor[j as usize];
                indices[at as usize] = i as u32;
                cursor[j as usize] += 1;
            }
        }
        Csr { offsets, indices }
    }

    /// Union of `self` and its mirror: the full (symmetric) adjacency.
    /// Rows of the result are sorted ascending.
    pub fn symmetrized(&self) -> Csr {
        let mirror = self.mirrored();
        let n = self.rows();
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut r: Vec<u32> = self.row(i).to_vec();
            r.extend_from_slice(mirror.row(i));
            r.sort_unstable();
            r.dedup();
            rows.push(r);
        }
        Csr::from_rows(&rows)
    }

    /// Heap bytes used by the structure (for memory-overhead reporting; the
    /// paper motivates SDC partly by EAM's memory pressure).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.indices.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        Csr::from_rows(&[vec![1, 2], vec![2], vec![], vec![0]])
    }

    #[test]
    fn rows_and_entries() {
        let c = sample();
        assert_eq!(c.rows(), 4);
        assert_eq!(c.entries(), 4);
        assert_eq!(c.row(0), &[1, 2]);
        assert_eq!(c.row(1), &[2]);
        assert_eq!(c.row(2), &[] as &[u32]);
        assert_eq!(c.row(3), &[0]);
        assert_eq!(c.row_len(0), 2);
        assert_eq!(c.row_len(2), 0);
    }

    #[test]
    fn empty_has_no_entries() {
        let c = Csr::empty(3);
        assert_eq!(c.rows(), 3);
        assert_eq!(c.entries(), 0);
        for i in 0..3 {
            assert!(c.row(i).is_empty());
        }
    }

    #[test]
    fn from_pairs_matches_from_rows() {
        let pairs = [(0, 1), (3, 0), (0, 2), (1, 2)];
        let c = Csr::from_pairs(4, &pairs);
        assert_eq!(c, sample());
    }

    #[test]
    fn from_pairs_is_stable_within_rows() {
        let pairs = [(0, 5), (0, 3), (0, 4)];
        let c = Csr::from_pairs_rect(1, 6, &pairs);
        assert_eq!(c.row(0), &[5, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range for square adjacency")]
    fn from_pairs_rejects_out_of_range_value() {
        // Row index fits but the stored value 7 names a nonexistent column.
        let _ = Csr::from_pairs(4, &[(0, 1), (2, 7)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_pairs_rect_rejects_out_of_range_value() {
        let _ = Csr::from_pairs_rect(2, 3, &[(1, 3)]);
    }

    #[test]
    fn group_by_key_groups_stably() {
        let keys = [2u32, 0, 2, 1, 0];
        let c = Csr::group_by_key(3, &keys);
        assert_eq!(c.row(0), &[1, 4]);
        assert_eq!(c.row(1), &[3]);
        assert_eq!(c.row(2), &[0, 2]);
    }

    #[test]
    fn group_by_key_par_matches_serial() {
        // Large enough to clear the 2 * PAR_MIN_CHUNK serial-fallback gate.
        let n = 3 * PAR_MIN_CHUNK;
        let rows = 17;
        let keys: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % rows) as u32).collect();
        let serial = Csr::group_by_key(rows, &keys);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let parallel = pool.install(|| Csr::group_by_key_par(rows, &keys));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn from_raw_validates() {
        let c = Csr::from_raw(vec![0, 2, 2], vec![7, 8]);
        assert_eq!(c.row(0), &[7, 8]);
        assert_eq!(c.row(1), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_decreasing_offsets() {
        let _ = Csr::from_raw(vec![0, 2, 1], vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn from_raw_rejects_bad_total() {
        let _ = Csr::from_raw(vec![0, 1], vec![7, 8]);
    }

    #[test]
    fn sort_rows_sorts_each_row() {
        let mut c = Csr::from_rows(&[vec![3, 1, 2], vec![9, 0]]);
        c.sort_rows();
        assert_eq!(c.row(0), &[1, 2, 3]);
        assert_eq!(c.row(1), &[0, 9]);
    }

    #[test]
    fn mirror_reverses_all_edges() {
        let c = sample();
        let m = c.mirrored();
        assert_eq!(m.row(0), &[3]);
        assert_eq!(m.row(1), &[0]);
        assert_eq!(m.row(2), &[0, 1]);
        assert_eq!(m.row(3), &[] as &[u32]);
        assert_eq!(m.entries(), c.entries());
        // Mirroring twice restores the edge set (possibly reordered).
        let mm = m.mirrored();
        let mut orig: Vec<(usize, u32)> = c.iter_rows().flat_map(|(i, r)| r.iter().map(move |&j| (i, j))).collect();
        let mut back: Vec<(usize, u32)> = mm.iter_rows().flat_map(|(i, r)| r.iter().map(move |&j| (i, j))).collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
    }

    #[test]
    fn symmetrized_contains_both_directions() {
        let c = Csr::from_rows(&[vec![1], vec![], vec![1]]);
        let s = c.symmetrized();
        assert_eq!(s.row(0), &[1]);
        assert_eq!(s.row(1), &[0, 2]);
        assert_eq!(s.row(2), &[1]);
        // A half list of p pairs symmetrizes to exactly 2p entries.
        assert_eq!(s.entries(), 2 * c.entries());
    }

    #[test]
    fn iter_rows_visits_all() {
        let c = sample();
        let collected: Vec<(usize, Vec<u32>)> =
            c.iter_rows().map(|(i, r)| (i, r.to_vec())).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[3], (3, vec![0]));
    }

    #[test]
    fn heap_bytes_counts_both_arrays() {
        let c = sample();
        assert!(c.heap_bytes() >= (c.offsets().len() + c.indices().len()) * 4);
    }
}
