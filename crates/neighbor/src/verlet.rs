//! Verlet neighbor lists.
//!
//! A Verlet list (Verlet 1967, the paper's ref. 2) records, for every atom,
//! the indices of all atoms within `cutoff + skin`. The *skin* margin lets a
//! list survive several time-steps: it only needs rebuilding once some atom
//! has moved further than `skin / 2` since the list was built (two atoms
//! approaching head-on close the gap at twice the single-atom rate).
//!
//! Two list shapes are provided:
//!
//! * [`NeighborListKind::Half`] — each pair `(i, j)` stored once, under
//!   `min(i, j)`. Force kernels then apply Newton's third law, writing to
//!   **both** `i` and `j` — the irregular scatter the paper's SDC method
//!   parallelizes.
//! * [`NeighborListKind::Full`] — each pair stored in both rows. Kernels
//!   only ever write to their own row (gather form); this doubles the pair
//!   computations and the list memory, which is exactly the paper's
//!   *Redundant Computation* (RC) baseline.

use crate::cell_grid::CellGrid;
use crate::csr::{Csr, PAR_MIN_CHUNK};
use crate::stats::NeighborStats;
use md_geometry::{SimBox, Vec3};
use rayon::prelude::*;

/// Whether each pair is stored once (half) or twice (full).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborListKind {
    /// Pair `(i, j)` with `i < j` stored once in row `i`.
    Half,
    /// Pair stored in both row `i` and row `j`.
    Full,
}

/// Parameters for building a [`NeighborList`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerletConfig {
    /// Interaction cutoff `r_c` (Å).
    pub cutoff: f64,
    /// Extra skin margin (Å); the list holds all pairs within
    /// `cutoff + skin`.
    pub skin: f64,
    /// Half or full list.
    pub kind: NeighborListKind,
}

impl VerletConfig {
    /// Half list with the given cutoff and skin.
    pub fn half(cutoff: f64, skin: f64) -> VerletConfig {
        VerletConfig {
            cutoff,
            skin,
            kind: NeighborListKind::Half,
        }
    }

    /// Full list with the given cutoff and skin.
    pub fn full(cutoff: f64, skin: f64) -> VerletConfig {
        VerletConfig {
            cutoff,
            skin,
            kind: NeighborListKind::Full,
        }
    }

    /// The list radius `cutoff + skin`.
    #[inline]
    pub fn reach(&self) -> f64 {
        self.cutoff + self.skin
    }

    fn validate(&self) {
        assert!(
            self.cutoff > 0.0 && self.cutoff.is_finite(),
            "cutoff must be positive, got {}",
            self.cutoff
        );
        assert!(
            self.skin >= 0.0 && self.skin.is_finite(),
            "skin must be non-negative, got {}",
            self.skin
        );
    }
}

/// A built Verlet neighbor list in CSR form.
///
/// ```
/// use md_geometry::LatticeSpec;
/// use md_neighbor::{NeighborList, VerletConfig};
///
/// let (sim_box, positions) = LatticeSpec::bcc_fe(5).build();
/// let list = NeighborList::build(&sim_box, &positions, VerletConfig::half(5.67, 0.0));
/// // Perfect BCC iron: 58 neighbors within 5.67 Å, so the half list
/// // stores 29 pairs per atom (each pair once).
/// assert_eq!(list.entries(), positions.len() * 29);
/// assert_eq!(list.to_full().stats().min, 58);
/// assert!(!list.needs_rebuild(&sim_box, &positions));
/// ```
#[derive(Debug, Clone)]
pub struct NeighborList {
    config: VerletConfig,
    csr: Csr,
    /// Atom positions at build time, for the displacement rebuild check.
    ref_positions: Vec<Vec3>,
}

impl NeighborList {
    /// Builds a neighbor list with linked-cell binning: O(N) for homogeneous
    /// systems.
    ///
    /// `positions` must be wrapped into the primary image of `sim_box`, and
    /// every periodic box edge must be at least `2 · (cutoff + skin)` so the
    /// minimum-image convention resolves each pair to a unique image.
    ///
    /// # Panics
    /// Panics on invalid config or if the box is too small for the reach.
    pub fn build(sim_box: &SimBox, positions: &[Vec3], config: VerletConfig) -> NeighborList {
        config.validate();
        sim_box
            .validate_cutoff(config.reach())
            .expect("box too small for cutoff + skin");
        let reach_sq = config.reach() * config.reach();
        let grid = CellGrid::build(sim_box, positions, config.reach());

        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(positions.len() * 16);
        for c in 0..grid.cell_count() {
            let atoms_c = grid.cell_atoms(c);
            if atoms_c.is_empty() {
                continue;
            }
            for nc in grid.stencil(c) {
                // Visit each unordered cell pair once (self-pairs allowed).
                if nc < c {
                    continue;
                }
                let atoms_n = grid.cell_atoms(nc);
                for &ia in atoms_c {
                    for &ja in atoms_n {
                        // Within the same cell, take each atom pair once.
                        if nc == c && ja <= ia {
                            continue;
                        }
                        let (i, j) = if ia < ja { (ia, ja) } else { (ja, ia) };
                        let d = sim_box.min_image(positions[i as usize], positions[j as usize]);
                        if d.norm_sq() < reach_sq {
                            pairs.push((i, j));
                        }
                    }
                }
            }
        }

        let csr = assemble(positions.len(), &pairs, config.kind);
        NeighborList {
            config,
            csr,
            ref_positions: positions.to_vec(),
        }
    }

    /// [`NeighborList::build`] with rayon-parallel binning and pair
    /// generation, **bitwise-identical** to the serial build (same `offsets`,
    /// same `indices`) for every thread count.
    ///
    /// Works per cell: each rayon task owns one cell and emits, for every
    /// atom `i` in it, atom `i`'s complete neighbor row — `{j > i}` for the
    /// half list, `{j ≠ i}` for the full list — sorted ascending. Row
    /// contents are *sets* selected by a symmetric predicate (minimum-image
    /// distance, evaluated in canonical `(min, max)` index order so both
    /// sides of a pair see the exact same floating-point value), so neither
    /// the cell schedule nor the thread count can change a row; the CSR
    /// offsets are prefix sums of row lengths and inherit that invariance.
    /// The serial build stores the same sets sorted ascending, hence
    /// byte-for-byte equality.
    ///
    /// Runs on the current rayon pool — call inside `ThreadPool::install`.
    /// On a one-worker pool or a small system it delegates to the serial
    /// builder outright.
    ///
    /// # Panics
    /// As [`NeighborList::build`].
    pub fn build_parallel(
        sim_box: &SimBox,
        positions: &[Vec3],
        config: VerletConfig,
    ) -> NeighborList {
        config.validate();
        sim_box
            .validate_cutoff(config.reach())
            .expect("box too small for cutoff + skin");
        if rayon::current_num_threads() <= 1 || positions.len() < PAR_MIN_CHUNK {
            return NeighborList::build(sim_box, positions, config);
        }
        let reach_sq = config.reach() * config.reach();
        let grid = CellGrid::build_parallel(sim_box, positions, config.reach());
        let n = positions.len();
        let n_cells = grid.cell_count();
        let half = config.kind == NeighborListKind::Half;

        // One task per cell: gather the rows of the cell's own atoms. The
        // stencil is computed once per cell and its atom slices stay hot in
        // cache across the cell's atoms (same locality the serial cell-pair
        // walk enjoys).
        let per_cell: Vec<Vec<(u32, Vec<u32>)>> = (0..n_cells)
            .into_par_iter()
            .map(|c| {
                let atoms_c = grid.cell_atoms(c);
                if atoms_c.is_empty() {
                    return Vec::new();
                }
                let stencil = grid.stencil(c);
                let mut out = Vec::with_capacity(atoms_c.len());
                for &ia in atoms_c {
                    let mut row: Vec<u32> = Vec::with_capacity(32);
                    for &nc in &stencil {
                        for &ja in grid.cell_atoms(nc) {
                            let skip = if half { ja <= ia } else { ja == ia };
                            if skip {
                                continue;
                            }
                            // Canonical order: the serial build evaluates
                            // every pair as (min, max); do the same so the
                            // accept/reject decision is the identical FP
                            // comparison.
                            let (a, b) = if ia < ja { (ia, ja) } else { (ja, ia) };
                            let d = sim_box
                                .min_image(positions[a as usize], positions[b as usize]);
                            if d.norm_sq() < reach_sq {
                                row.push(ja);
                            }
                        }
                    }
                    row.sort_unstable();
                    out.push((ia, row));
                }
                out
            })
            .collect();

        // Re-index rows by atom id (cells partition the atoms, so this
        // moves each row exactly once), then assemble the CSR with one
        // prefix sum and a parallel per-row copy into disjoint slices.
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for cell_rows in per_cell {
            for (ia, row) in cell_rows {
                rows[ia as usize] = row;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0u32);
        for r in &rows {
            total = total
                .checked_add(r.len() as u32)
                .expect("CSR entry count overflows u32");
            offsets.push(total);
        }
        let mut indices = vec![0u32; total as usize];
        let mut slices: Vec<&mut [u32]> = Vec::with_capacity(n);
        let mut rest = indices.as_mut_slice();
        for r in &rows {
            let (head, tail) = rest.split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        slices
            .into_par_iter()
            .zip(rows.par_iter())
            .for_each(|(dst, src)| dst.copy_from_slice(src));
        NeighborList {
            config,
            csr: Csr::from_raw(offsets, indices),
            ref_positions: positions.to_vec(),
        }
    }

    /// Reference O(N²) builder; used by tests to validate [`NeighborList::build`].
    pub fn build_brute_force(
        sim_box: &SimBox,
        positions: &[Vec3],
        config: VerletConfig,
    ) -> NeighborList {
        config.validate();
        let reach_sq = config.reach() * config.reach();
        let mut pairs = Vec::new();
        for i in 0..positions.len() {
            for j in (i + 1)..positions.len() {
                if sim_box.distance_sq(positions[i], positions[j]) < reach_sq {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        let csr = assemble(positions.len(), &pairs, config.kind);
        NeighborList {
            config,
            csr,
            ref_positions: positions.to_vec(),
        }
    }

    /// The build configuration.
    #[inline]
    pub fn config(&self) -> VerletConfig {
        self.config
    }

    /// Half or full.
    #[inline]
    pub fn kind(&self) -> NeighborListKind {
        self.config.kind
    }

    /// Interaction cutoff `r_c`.
    #[inline]
    pub fn cutoff(&self) -> f64 {
        self.config.cutoff
    }

    /// Number of atoms the list covers.
    #[inline]
    pub fn atoms(&self) -> usize {
        self.csr.rows()
    }

    /// Neighbors of atom `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        self.csr.row(i)
    }

    /// The underlying CSR adjacency.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Number of stored pair entries (half list: one per pair; full: two).
    #[inline]
    pub fn entries(&self) -> usize {
        self.csr.entries()
    }

    /// `true` once some atom has drifted more than `skin / 2` from its
    /// position at build time, i.e. the list may now miss a pair within
    /// `cutoff` and must be rebuilt before the next force evaluation.
    pub fn needs_rebuild(&self, sim_box: &SimBox, positions: &[Vec3]) -> bool {
        assert_eq!(
            positions.len(),
            self.ref_positions.len(),
            "atom count changed since list build"
        );
        let limit_sq = (self.config.skin * 0.5) * (self.config.skin * 0.5);
        positions
            .iter()
            .zip(&self.ref_positions)
            .any(|(&p, &q)| sim_box.distance_sq(p, q) > limit_sq)
    }

    /// Converts this list to the full (symmetric) form. No-op on full lists.
    pub fn to_full(&self) -> NeighborList {
        match self.config.kind {
            NeighborListKind::Full => self.clone(),
            NeighborListKind::Half => NeighborList {
                config: VerletConfig {
                    kind: NeighborListKind::Full,
                    ..self.config
                },
                csr: self.csr.symmetrized(),
                ref_positions: self.ref_positions.clone(),
            },
        }
    }

    /// Positions the list was built from (rebuild reference).
    pub fn ref_positions_raw(&self) -> &[Vec3] {
        &self.ref_positions
    }

    /// Reassembles a list from validated parts (crate-internal; used by the
    /// reordering transform, which preserves the pair set by construction).
    pub(crate) fn assemble_from_parts(
        config: VerletConfig,
        csr: Csr,
        ref_positions: Vec<Vec3>,
    ) -> NeighborList {
        assert_eq!(csr.rows(), ref_positions.len());
        NeighborList {
            config,
            csr,
            ref_positions,
        }
    }

    /// Per-atom neighbor count statistics.
    pub fn stats(&self) -> NeighborStats {
        NeighborStats::of_csr(&self.csr)
    }

    /// Heap bytes consumed by the list (paper §I: EAM neighbor-list memory
    /// pressure; the RC baseline's full list doubles this).
    pub fn heap_bytes(&self) -> usize {
        self.csr.heap_bytes() + self.ref_positions.capacity() * std::mem::size_of::<Vec3>()
    }
}

fn assemble(n: usize, half_pairs: &[(u32, u32)], kind: NeighborListKind) -> Csr {
    match kind {
        NeighborListKind::Half => {
            let mut csr = Csr::from_pairs(n, half_pairs);
            csr.sort_rows();
            csr
        }
        NeighborListKind::Full => {
            let mut both = Vec::with_capacity(half_pairs.len() * 2);
            for &(i, j) in half_pairs {
                both.push((i, j));
                both.push((j, i));
            }
            let mut csr = Csr::from_pairs(n, &both);
            csr.sort_rows();
            csr
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;

    const FE_CUTOFF: f64 = 5.67;

    fn pair_set(nl: &NeighborList) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = nl
            .csr()
            .iter_rows()
            .flat_map(|(i, r)| r.iter().map(move |&j| (i as u32, j)))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn cell_build_matches_brute_force_half() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let cfg = VerletConfig::half(FE_CUTOFF, 0.3);
        let fast = NeighborList::build(&bx, &pos, cfg);
        let slow = NeighborList::build_brute_force(&bx, &pos, cfg);
        assert_eq!(pair_set(&fast), pair_set(&slow));
    }

    #[test]
    fn cell_build_matches_brute_force_full() {
        let (bx, pos) = LatticeSpec::bcc_fe(4).build();
        let cfg = VerletConfig::full(FE_CUTOFF, 0.0);
        let fast = NeighborList::build(&bx, &pos, cfg);
        let slow = NeighborList::build_brute_force(&bx, &pos, cfg);
        assert_eq!(pair_set(&fast), pair_set(&slow));
    }

    #[test]
    fn parallel_build_is_bitwise_identical_to_serial() {
        // bcc_fe(9) = 1458 atoms > PAR_MIN_CHUNK, so the parallel path
        // actually runs instead of delegating to the serial builder.
        let (bx, pos) = LatticeSpec::bcc_fe(9).build();
        for threads in [2usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            for cfg in [
                VerletConfig::half(FE_CUTOFF, 0.3),
                VerletConfig::full(FE_CUTOFF, 0.3),
            ] {
                let serial = NeighborList::build(&bx, &pos, cfg);
                let parallel = pool.install(|| NeighborList::build_parallel(&bx, &pos, cfg));
                assert_eq!(serial.csr().offsets(), parallel.csr().offsets());
                assert_eq!(serial.csr().indices(), parallel.csr().indices());
            }
        }
    }

    #[test]
    fn parallel_build_small_system_delegates_to_serial() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let cfg = VerletConfig::half(FE_CUTOFF, 0.3);
        let serial = NeighborList::build(&bx, &pos, cfg);
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let parallel = pool.install(|| NeighborList::build_parallel(&bx, &pos, cfg));
        assert_eq!(serial.csr().offsets(), parallel.csr().offsets());
        assert_eq!(serial.csr().indices(), parallel.csr().indices());
    }

    #[test]
    fn half_list_stores_each_pair_once_with_lower_owner() {
        let (bx, pos) = LatticeSpec::bcc_fe(4).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.0));
        for (i, row) in nl.csr().iter_rows() {
            for &j in row {
                assert!(j as usize > i, "half list row {i} contains {j} ≤ {i}");
            }
        }
    }

    #[test]
    fn full_list_is_symmetric_and_double_sized() {
        let (bx, pos) = LatticeSpec::bcc_fe(4).build();
        let half = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.0));
        let full = NeighborList::build(&bx, &pos, VerletConfig::full(FE_CUTOFF, 0.0));
        assert_eq!(full.entries(), 2 * half.entries());
        for (i, row) in full.csr().iter_rows() {
            for &j in row {
                assert!(
                    full.neighbors(j as usize).contains(&(i as u32)),
                    "pair ({i},{j}) not mirrored"
                );
            }
        }
    }

    #[test]
    fn to_full_equals_direct_full_build() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let half = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.1));
        let full = NeighborList::build(&bx, &pos, VerletConfig::full(FE_CUTOFF, 0.1));
        assert_eq!(pair_set(&half.to_full()), pair_set(&full));
    }

    #[test]
    fn bcc_fe_coordination_within_cutoff() {
        // Within 5.67 Å ≈ 1.98a, BCC has 8 (√3/2·a) + 6 (a) + 12 (√2·a)
        // + 24 (√11/2·a ≈ 1.66a) + 8 (√3·a ≈ 1.73a) = 58 neighbors.
        let (bx, pos) = LatticeSpec::bcc_fe(4).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::full(FE_CUTOFF, 0.0));
        let s = nl.stats();
        assert_eq!(s.min, 58, "every Fe atom sees 58 neighbors in a perfect crystal");
        assert_eq!(s.max, 58);
    }

    #[test]
    fn needs_rebuild_triggers_on_half_skin_drift() {
        let (bx, mut pos) = LatticeSpec::bcc_fe(5).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 1.0));
        assert!(!nl.needs_rebuild(&bx, &pos));
        // Move one atom by 0.49 — still inside skin/2 = 0.5.
        pos[0].x += 0.49;
        let wrapped: Vec<_> = pos.iter().map(|&p| bx.wrap(p)).collect();
        assert!(!nl.needs_rebuild(&bx, &wrapped));
        // 0.51 crosses the threshold.
        pos[0].x += 0.02;
        let wrapped: Vec<_> = pos.iter().map(|&p| bx.wrap(p)).collect();
        assert!(nl.needs_rebuild(&bx, &wrapped));
    }

    #[test]
    fn rebuild_check_sees_through_periodic_wrap() {
        let (bx, mut pos) = LatticeSpec::bcc_fe(5).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 1.0));
        // Drift across the boundary: small physical move, large coordinate
        // jump after wrapping. The min-image displacement check must not
        // flag this as a big move... but must flag genuine skin/2 drift.
        pos[0].x -= 0.2; // may wrap below 0
        let wrapped: Vec<_> = pos.iter().map(|&p| bx.wrap(p)).collect();
        assert!(!nl.needs_rebuild(&bx, &wrapped));
    }

    #[test]
    fn skin_enlarges_the_list() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let tight = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.0));
        let padded = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.6));
        assert!(padded.entries() > tight.entries());
    }

    #[test]
    fn neighbor_rows_are_sorted_ascending() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.3));
        for (_, row) in nl.csr().iter_rows() {
            assert!(row.windows(2).all(|w| w[0] < w[1]), "row not sorted: {row:?}");
        }
    }

    #[test]
    #[should_panic(expected = "box too small")]
    fn box_smaller_than_two_reach_rejected() {
        let bx = SimBox::cubic(10.0);
        let _ = NeighborList::build(&bx, &[Vec3::splat(1.0)], VerletConfig::half(4.0, 1.1));
    }

    #[test]
    fn empty_system_builds_empty_list() {
        let bx = SimBox::cubic(20.0);
        let nl = NeighborList::build(&bx, &[], VerletConfig::half(5.0, 0.0));
        assert_eq!(nl.atoms(), 0);
        assert_eq!(nl.entries(), 0);
    }

    #[test]
    fn isolated_atoms_have_no_neighbors() {
        let bx = SimBox::cubic(100.0);
        let pos = [Vec3::splat(10.0), Vec3::splat(60.0)];
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(5.0, 0.5));
        assert_eq!(nl.entries(), 0);
    }

    #[test]
    fn pair_across_periodic_boundary_is_found() {
        let bx = SimBox::cubic(20.0);
        let pos = [Vec3::new(0.5, 10.0, 10.0), Vec3::new(19.5, 10.0, 10.0)];
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(5.0, 0.0));
        assert_eq!(nl.entries(), 1, "boundary pair at distance 1.0 missed");
        assert_eq!(nl.neighbors(0), &[1]);
    }

    #[test]
    fn full_memory_is_about_double_half_memory() {
        let (bx, pos) = LatticeSpec::bcc_fe(5).build();
        let half = NeighborList::build(&bx, &pos, VerletConfig::half(FE_CUTOFF, 0.3));
        let full = NeighborList::build(&bx, &pos, VerletConfig::full(FE_CUTOFF, 0.3));
        let ratio = full.heap_bytes() as f64 / half.heap_bytes() as f64;
        assert!(ratio > 1.5, "full/half memory ratio = {ratio}");
    }
}
