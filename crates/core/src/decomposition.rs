//! Spatial decomposition with red/black-style coloring (paper §II.B).
//!
//! The simulation box is split along 1, 2 or 3 axes into a grid of
//! subdomains subject to the paper's two constraints:
//!
//! 1. along every decomposed axis the subdomain edge is **≥ 2 × the
//!    interaction range** (we use `cutoff + skin`, the reach of the Verlet
//!    list, which is what actually bounds write footprints);
//! 2. the subdomain count along every decomposed axis is **even**, so the
//!    parity coloring wraps consistently across the periodic boundary.
//!
//! Subdomains are colored by the parity of their grid coordinates along the
//! decomposed axes: 2 colors for 1-D, 4 for 2-D, 8 for 3-D. Every subdomain
//! is then surrounded only by subdomains of other colors, and — the property
//! the whole method rests on — **two subdomains of the same color are
//! separated by at least one full subdomain edge ≥ 2·range along some axis**,
//! so their interaction halos cannot overlap.

use md_geometry::{Aabb, SimBox, Vec3};
use md_neighbor::Csr;

/// Configuration for building a [`ColoredDecomposition`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompositionConfig {
    /// Number of decomposed axes (1, 2 or 3); axes are taken in x, y, z
    /// order, matching the paper's horizontal-first description.
    pub dims: usize,
    /// Interaction range bounding write footprints (`cutoff + skin`).
    pub range: f64,
    /// Optional cap on subdomain count per axis (rounded down to even).
    /// `None` takes the maximum the constraints allow — the paper's choice,
    /// maximizing parallelism.
    pub max_per_axis: Option<usize>,
}

impl DecompositionConfig {
    /// Maximal decomposition along `dims` axes for interaction range `range`.
    pub fn new(dims: usize, range: f64) -> DecompositionConfig {
        DecompositionConfig {
            dims,
            range,
            max_per_axis: None,
        }
    }
}

/// Failure to satisfy the paper's decomposition constraints.
#[derive(Debug, Clone, PartialEq)]
pub enum DecompositionError {
    /// `dims` outside `1..=3`.
    BadDims(usize),
    /// Non-positive or non-finite interaction range.
    BadRange(f64),
    /// An axis cannot host ≥ 2 subdomains of edge ≥ 2·range.
    AxisTooSmall {
        /// Offending axis index (0 = x).
        axis: usize,
        /// Box length along the axis.
        length: f64,
        /// Interaction range requested.
        range: f64,
    },
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompositionError::BadDims(d) => {
                write!(f, "decomposition dims must be 1..=3, got {d}")
            }
            DecompositionError::BadRange(r) => {
                write!(f, "interaction range must be positive, got {r}")
            }
            DecompositionError::AxisTooSmall { axis, length, range } => write!(
                f,
                "axis {axis} (length {length}) cannot fit 2 subdomains of edge ≥ 2·range = {}",
                2.0 * range
            ),
        }
    }
}

impl std::error::Error for DecompositionError {}

/// A colored spatial decomposition of a periodic box.
///
/// ```
/// use md_geometry::SimBox;
/// use sdc_core::{ColoredDecomposition, DecompositionConfig};
///
/// let sim_box = SimBox::cubic(100.0);
/// let d = ColoredDecomposition::new(&sim_box, DecompositionConfig::new(2, 5.97)).unwrap();
/// assert_eq!(d.color_count(), 4);            // 2-D SDC: four colors
/// assert_eq!(d.counts(), [8, 8, 1]);          // even counts, edge ≥ 2·range
/// assert_eq!(d.subdomains_per_color(), 16);   // equal classes
/// d.validate(&sim_box).unwrap();              // halos of same-color subdomains disjoint
/// ```
#[derive(Debug, Clone)]
pub struct ColoredDecomposition {
    dims: usize,
    range: f64,
    box_lengths: Vec3,
    /// Subdomain counts per axis (1 along non-decomposed axes).
    counts: [usize; 3],
    sub_len: Vec3,
    colors: usize,
    color_of: Vec<u8>,
    by_color: Vec<Vec<u32>>,
}

impl ColoredDecomposition {
    /// Builds the decomposition for `sim_box` under `config`.
    pub fn new(
        sim_box: &SimBox,
        config: DecompositionConfig,
    ) -> Result<ColoredDecomposition, DecompositionError> {
        if !(1..=3).contains(&config.dims) {
            return Err(DecompositionError::BadDims(config.dims));
        }
        if !(config.range > 0.0 && config.range.is_finite()) {
            return Err(DecompositionError::BadRange(config.range));
        }
        let l = sim_box.lengths();
        let mut counts = [1usize; 3];
        for d in 0..config.dims {
            let mut n = (l[d] / (2.0 * config.range)).floor() as usize;
            if let Some(cap) = config.max_per_axis {
                n = n.min(cap);
            }
            n -= n % 2; // paper constraint: even count per decomposed axis
            if n < 2 {
                return Err(DecompositionError::AxisTooSmall {
                    axis: d,
                    length: l[d],
                    range: config.range,
                });
            }
            counts[d] = n;
        }
        let sub_len = Vec3::new(
            l.x / counts[0] as f64,
            l.y / counts[1] as f64,
            l.z / counts[2] as f64,
        );
        let total = counts[0] * counts[1] * counts[2];
        let colors = 1usize << config.dims;
        let mut color_of = vec![0u8; total];
        let mut by_color = vec![Vec::new(); colors];
        #[allow(clippy::needless_range_loop)]
        for s in 0..total {
            let idx = coords(s, counts);
            let mut c = 0usize;
            for (bit, &i) in idx.iter().enumerate().take(config.dims) {
                c |= (i & 1) << bit;
            }
            color_of[s] = c as u8;
            by_color[c].push(s as u32);
        }
        Ok(ColoredDecomposition {
            dims: config.dims,
            range: config.range,
            box_lengths: l,
            counts,
            sub_len,
            colors,
            color_of,
            by_color,
        })
    }

    /// Number of decomposed axes.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The interaction range the decomposition was built for.
    #[inline]
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Subdomain counts per axis.
    #[inline]
    pub fn counts(&self) -> [usize; 3] {
        self.counts
    }

    /// Edge lengths of the decomposed box.
    #[inline]
    pub fn box_lengths(&self) -> Vec3 {
        self.box_lengths
    }

    /// Edge lengths of one subdomain.
    #[inline]
    pub fn subdomain_lengths(&self) -> Vec3 {
        self.sub_len
    }

    /// Total number of subdomains.
    #[inline]
    pub fn subdomain_count(&self) -> usize {
        self.counts[0] * self.counts[1] * self.counts[2]
    }

    /// Number of colors (`2^dims`).
    #[inline]
    pub fn color_count(&self) -> usize {
        self.colors
    }

    /// Subdomains per color — the paper's parallelism budget (`~340` for the
    /// medium case, `~5000` for the large case with 3-D SDC).
    #[inline]
    pub fn subdomains_per_color(&self) -> usize {
        self.subdomain_count() / self.colors
    }

    /// Color of subdomain `s`.
    #[inline]
    pub fn color_of(&self, s: usize) -> usize {
        self.color_of[s] as usize
    }

    /// The subdomains of one color class.
    #[inline]
    pub fn of_color(&self, color: usize) -> &[u32] {
        &self.by_color[color]
    }

    /// Axis-aligned bounds of subdomain `s`.
    pub fn aabb(&self, s: usize) -> Aabb {
        let idx = coords(s, self.counts);
        let lo = Vec3::new(
            idx[0] as f64 * self.sub_len.x,
            idx[1] as f64 * self.sub_len.y,
            idx[2] as f64 * self.sub_len.z,
        );
        Aabb::new(lo, lo + self.sub_len)
    }

    /// Subdomain containing point `p` (must be in the primary image).
    #[inline]
    pub fn subdomain_of(&self, p: Vec3) -> usize {
        let mut idx = [0usize; 3];
        for d in 0..3 {
            let i = (p[d] / self.sub_len[d]) as usize;
            idx[d] = i.min(self.counts[d] - 1);
        }
        (idx[0] * self.counts[1] + idx[1]) * self.counts[2] + idx[2]
    }

    /// Bins atoms into subdomains: the CSR is the paper's
    /// `pstart[]`/`partindex[]` pair (Fig. 7) — row `s` lists the atoms of
    /// subdomain `s`.
    pub fn assign_atoms(&self, positions: &[Vec3]) -> Csr {
        let keys: Vec<u32> = positions
            .iter()
            .map(|&p| self.subdomain_of(p) as u32)
            .collect();
        Csr::group_by_key(self.subdomain_count(), &keys)
    }

    /// Exhaustively checks the two coloring invariants (used by tests and
    /// debug assertions; O(S²) in the subdomain count):
    ///
    /// 1. every pair of *adjacent* subdomains (touching under PBC, diagonals
    ///    included) has different colors;
    /// 2. every pair of *same-color* subdomains keeps its `range`-expanded
    ///    halos disjoint under PBC — the data-race-freedom invariant.
    pub fn validate(&self, sim_box: &SimBox) -> Result<(), String> {
        let n = self.subdomain_count();
        // Equal population per color.
        let per = self.subdomains_per_color();
        for (c, list) in self.by_color.iter().enumerate() {
            if list.len() != per {
                return Err(format!(
                    "color {c} has {} subdomains, expected {per}",
                    list.len()
                ));
            }
        }
        for a in 0..n {
            let box_a = self.aabb(a);
            let halo_a = box_a.expanded(self.range);
            for b in (a + 1)..n {
                let box_b = self.aabb(b);
                let same_color = self.color_of(a) == self.color_of(b);
                if same_color {
                    if halo_a.intersects_periodic(&box_b.expanded(self.range), sim_box) {
                        return Err(format!(
                            "same-color subdomains {a} and {b} have overlapping halos"
                        ));
                    }
                } else {
                    // nothing to check: different colors never run together
                }
                if same_color && box_a.expanded(1e-9).intersects_periodic(&box_b, sim_box) {
                    return Err(format!("same-color subdomains {a} and {b} are adjacent"));
                }
            }
        }
        Ok(())
    }
}

#[inline]
fn coords(s: usize, counts: [usize; 3]) -> [usize; 3] {
    let iz = s % counts[2];
    let iy = (s / counts[2]) % counts[1];
    let ix = s / (counts[1] * counts[2]);
    [ix, iy, iz]
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;

    const RANGE: f64 = 5.97; // Fe cutoff 5.67 + 0.3 skin

    #[test]
    fn one_dimensional_decomposition_has_two_colors() {
        let bx = SimBox::cubic(100.0);
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(1, RANGE)).unwrap();
        // 100 / 11.94 = 8.37 → 8 subdomains along x only.
        assert_eq!(d.counts(), [8, 1, 1]);
        assert_eq!(d.color_count(), 2);
        assert_eq!(d.subdomains_per_color(), 4);
        // Alternating colors along x.
        for s in 0..8 {
            assert_eq!(d.color_of(s), s % 2);
        }
        d.validate(&bx).unwrap();
    }

    #[test]
    fn two_dimensional_decomposition_has_four_colors() {
        let bx = SimBox::cubic(100.0);
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(2, RANGE)).unwrap();
        assert_eq!(d.counts(), [8, 8, 1]);
        assert_eq!(d.color_count(), 4);
        assert_eq!(d.subdomain_count(), 64);
        assert_eq!(d.subdomains_per_color(), 16);
        d.validate(&bx).unwrap();
    }

    #[test]
    fn three_dimensional_decomposition_has_eight_colors() {
        let bx = SimBox::cubic(100.0);
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, RANGE)).unwrap();
        assert_eq!(d.counts(), [8, 8, 8]);
        assert_eq!(d.color_count(), 8);
        assert_eq!(d.subdomains_per_color(), 64);
        d.validate(&bx).unwrap();
    }

    #[test]
    fn subdomain_edges_respect_two_range_rule() {
        let bx = SimBox::periodic(Vec3::new(100.0, 80.0, 60.0));
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, RANGE)).unwrap();
        let c = d.counts();
        for (dim, &n) in c.iter().enumerate() {
            let edge = bx.lengths()[dim] / n as f64;
            assert!(edge >= 2.0 * RANGE, "axis {dim}: edge {edge}");
            assert_eq!(n % 2, 0, "axis {dim}: odd count {n}");
        }
    }

    #[test]
    fn too_small_axis_is_reported() {
        let bx = SimBox::periodic(Vec3::new(20.0, 100.0, 100.0));
        let err = ColoredDecomposition::new(&bx, DecompositionConfig::new(1, RANGE)).unwrap_err();
        match err {
            DecompositionError::AxisTooSmall { axis, .. } => assert_eq!(axis, 0),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("2·range"));
    }

    #[test]
    fn bad_dims_rejected() {
        let bx = SimBox::cubic(100.0);
        assert_eq!(
            ColoredDecomposition::new(&bx, DecompositionConfig::new(0, RANGE)).unwrap_err(),
            DecompositionError::BadDims(0)
        );
        assert_eq!(
            ColoredDecomposition::new(&bx, DecompositionConfig::new(4, RANGE)).unwrap_err(),
            DecompositionError::BadDims(4)
        );
    }

    #[test]
    fn bad_range_rejected() {
        let bx = SimBox::cubic(100.0);
        assert!(matches!(
            ColoredDecomposition::new(&bx, DecompositionConfig::new(2, -1.0)),
            Err(DecompositionError::BadRange(_))
        ));
    }

    #[test]
    fn max_per_axis_caps_and_stays_even() {
        let bx = SimBox::cubic(200.0);
        let cfg = DecompositionConfig {
            dims: 2,
            range: RANGE,
            max_per_axis: Some(5),
        };
        let d = ColoredDecomposition::new(&bx, cfg).unwrap();
        assert_eq!(d.counts(), [4, 4, 1]);
    }

    #[test]
    fn subdomain_of_point_is_consistent_with_aabb() {
        let bx = SimBox::cubic(100.0);
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, RANGE)).unwrap();
        for s in 0..d.subdomain_count() {
            let c = d.aabb(s).center();
            assert_eq!(d.subdomain_of(c), s);
        }
        // Boundary points at the very top edge clamp into the last subdomain.
        let p = Vec3::splat(100.0 - 1e-12);
        assert!(d.subdomain_of(p) < d.subdomain_count());
    }

    #[test]
    fn assign_atoms_partitions_all_atoms() {
        // 9 · 2.8665 = 25.8 Å ≥ 2 · (2 · 5.97) = 23.88: two subdomains per axis.
        let (bx, pos) = LatticeSpec::bcc_fe(9).build();
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, RANGE)).unwrap();
        let atoms = d.assign_atoms(&pos);
        assert_eq!(atoms.rows(), d.subdomain_count());
        let total: usize = (0..atoms.rows()).map(|s| atoms.row_len(s)).sum();
        assert_eq!(total, pos.len());
        // Every atom lies inside its subdomain's box.
        for (s, row) in atoms.iter_rows() {
            let bb = d.aabb(s);
            for &a in row {
                assert!(bb.contains(pos[a as usize]), "atom {a} outside subdomain {s}");
            }
        }
    }

    #[test]
    fn paper_medium_case_has_hundreds_of_subdomains_per_color_in_3d() {
        // Paper §II.B: "there are 340 subdomains with each color in medium
        // test case" (3-D SDC). Our grid: 51·2.8665 = 146.2 Å per axis,
        // 146.2 / 11.34 = 12.89 → 12 per axis → 1728 subdomains, 216 per
        // color with rc = 5.67 (same order of magnitude; the paper's exact
        // split depends on its skin).
        let bx = LatticeSpec::paper_case(2).sim_box();
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, 5.67)).unwrap();
        assert_eq!(d.color_count(), 8);
        assert!(
            (100..=700).contains(&d.subdomains_per_color()),
            "medium case: {} subdomains per color",
            d.subdomains_per_color()
        );
    }

    #[test]
    fn paper_large_case_has_thousands_of_subdomains_per_color_in_3d() {
        // Paper §II.B: "nearly 5000 subdomains with each color in large test
        // case".
        let bx = LatticeSpec::paper_case(4).sim_box();
        let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(3, 5.67)).unwrap();
        assert!(
            d.subdomains_per_color() >= 3000,
            "large case: {} subdomains per color",
            d.subdomains_per_color()
        );
    }

    #[test]
    fn coloring_is_valid_on_asymmetric_boxes() {
        let bx = SimBox::periodic(Vec3::new(150.0, 90.0, 50.0));
        for dims in 1..=3 {
            let d = ColoredDecomposition::new(&bx, DecompositionConfig::new(dims, RANGE)).unwrap();
            d.validate(&bx).unwrap();
        }
    }
}
