//! The executable SDC plan: decomposition + atom assignment.
//!
//! The paper rebuilds the decomposition and atom binning "when the neighbor
//! list is created or updated" (§II.B) — both derive from the same snapshot
//! of positions, which is exactly what makes the write-footprint argument
//! static: an atom's subdomain and its list neighbors are both functions of
//! the build-time positions, so footprint disjointness holds for the entire
//! lifetime of the list no matter how atoms drift between rebuilds.

use crate::decomposition::{ColoredDecomposition, DecompositionConfig, DecompositionError};
use crate::schedule::{self, ColorSchedule};
use md_geometry::{SimBox, Vec3};
use md_neighbor::Csr;

/// A colored decomposition bound to a concrete set of atoms.
#[derive(Debug, Clone)]
pub struct SdcPlan {
    decomp: ColoredDecomposition,
    /// Row `s` = atoms of subdomain `s` (the paper's `pstart`/`partindex`).
    atoms: Csr,
    /// Optional cost-guided execution schedule (LPT within each color).
    /// `None` means CSR order — the paper's default.
    schedule: Option<ColorSchedule>,
}

impl SdcPlan {
    /// Builds decomposition and atom binning from one position snapshot.
    /// The plan starts unscheduled; see [`SdcPlan::set_schedule`].
    pub fn build(
        sim_box: &SimBox,
        positions: &[Vec3],
        config: DecompositionConfig,
    ) -> Result<SdcPlan, DecompositionError> {
        let decomp = ColoredDecomposition::new(sim_box, config)?;
        let atoms = decomp.assign_atoms(positions);
        Ok(SdcPlan { decomp, atoms, schedule: None })
    }

    /// The underlying decomposition.
    #[inline]
    pub fn decomposition(&self) -> &ColoredDecomposition {
        &self.decomp
    }

    /// Atoms of subdomain `s`.
    #[inline]
    pub fn atoms_of(&self, s: usize) -> &[u32] {
        self.atoms.row(s)
    }

    /// The subdomain → atoms CSR.
    #[inline]
    pub fn atom_bins(&self) -> &Csr {
        &self.atoms
    }

    /// Number of atoms covered by the plan.
    #[inline]
    pub fn atom_count(&self) -> usize {
        self.atoms.entries()
    }

    /// Attaches a cost-guided execution schedule. Reordering subdomains
    /// within a color is result-neutral (footprints stay disjoint), so the
    /// schedule only changes *when* tasks start, never what they compute.
    ///
    /// # Panics
    /// Panics if the schedule's color count does not match the
    /// decomposition's; debug builds additionally verify each color's order
    /// is a permutation of that color's subdomains.
    pub fn set_schedule(&mut self, schedule: ColorSchedule) {
        assert_eq!(
            schedule.color_count(),
            self.decomp.color_count(),
            "schedule colors must match the decomposition"
        );
        #[cfg(debug_assertions)]
        for color in 0..self.decomp.color_count() {
            let mut expect: Vec<u32> = self.decomp.of_color(color).to_vec();
            let mut got: Vec<u32> = schedule.order_of(color).to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            debug_assert_eq!(expect, got, "schedule color {color} is not a permutation");
        }
        self.schedule = Some(schedule);
    }

    /// The attached schedule, if any.
    #[inline]
    pub fn schedule(&self) -> Option<&ColorSchedule> {
        self.schedule.as_ref()
    }

    /// The subdomains of `color` in execution order: the schedule's LPT
    /// order when one is attached, CSR order otherwise. The scatter engine
    /// iterates this.
    #[inline]
    pub fn ordered_of_color(&self, color: usize) -> &[u32] {
        match &self.schedule {
            Some(s) => s.order_of(color),
            None => self.decomp.of_color(color),
        }
    }

    /// Per-subdomain stored-pair counts for a half list: the work estimate
    /// used for load statistics and by the performance model.
    pub fn pair_counts(&self, half: &Csr) -> Vec<u64> {
        (0..self.decomp.subdomain_count())
            .map(|s| {
                self.atoms_of(s)
                    .iter()
                    .map(|&i| half.row_len(i as usize) as u64)
                    .sum()
            })
            .collect()
    }

    /// Load-imbalance factor of the busiest color: `max_task / mean_task`
    /// over subdomains within each color, maximized over colors. 1.0 is
    /// perfectly balanced; the paper relies on density uniformity for this
    /// to stay near 1.
    ///
    /// This is a *per-task* statistic: with many more subdomains than
    /// threads it overstates the barrier wait, because several small tasks
    /// share one thread while the max is a single task. Use
    /// [`SdcPlan::imbalance_threaded`] when comparing against observed
    /// per-thread busy times.
    pub fn imbalance(&self, half: &Csr) -> f64 {
        let pairs = self.pair_counts(half);
        let mut worst: f64 = 1.0;
        for c in 0..self.decomp.color_count() {
            let subs = self.decomp.of_color(c);
            let total: u64 = subs.iter().map(|&s| pairs[s as usize]).sum();
            if total == 0 {
                continue;
            }
            let mean = total as f64 / subs.len() as f64;
            let max = subs.iter().map(|&s| pairs[s as usize]).max().unwrap_or(0) as f64;
            worst = worst.max(max / mean);
        }
        worst
    }

    /// Thread-aware imbalance: per color, pack the subdomain pair counts
    /// onto `threads` bins with LPT and take `max bin / mean bin`; report
    /// the worst color. This is the quantity an observed `max busy / mean
    /// busy` over *threads* (md-perfmodel's `ObservedImbalance`) should be
    /// compared against — unlike [`SdcPlan::imbalance`] it is exactly 1.0
    /// at one thread and does not grow just because the decomposition is
    /// fine-grained.
    pub fn imbalance_threaded(&self, half: &Csr, threads: usize) -> f64 {
        let costs: Vec<f64> = self.pair_counts(half).iter().map(|&c| c as f64).collect();
        let mut worst: f64 = 1.0;
        for color in 0..self.decomp.color_count() {
            let order = schedule::lpt_order(self.decomp.of_color(color), &costs);
            let loads = schedule::packed_loads(&order, &costs, threads);
            worst = worst.max(schedule::imbalance_of(&loads));
        }
        worst
    }

    /// Exhaustive dynamic check of the data-race-freedom invariant: within
    /// each color, the write footprints (own atoms ∪ their half-list
    /// neighbors) of distinct subdomains are disjoint.
    ///
    /// This validates the *actual* footprints the scatter engine will touch,
    /// complementing the geometric halo check of
    /// [`ColoredDecomposition::validate`]. O(neighbor entries) per color.
    pub fn validate_footprints(&self, half: &Csr) -> Result<(), String> {
        let n = half.rows();
        let mut owner = vec![u32::MAX; n];
        for color in 0..self.decomp.color_count() {
            owner.fill(u32::MAX);
            for &s in self.decomp.of_color(color) {
                for &i in self.atoms_of(s as usize) {
                    claim(&mut owner, i, s, color)?;
                    for &j in half.row(i as usize) {
                        claim(&mut owner, j, s, color)?;
                    }
                }
            }
        }
        Ok(())
    }
}

fn claim(owner: &mut [u32], atom: u32, s: u32, color: usize) -> Result<(), String> {
    let slot = &mut owner[atom as usize];
    if *slot == u32::MAX || *slot == s {
        *slot = s;
        Ok(())
    } else {
        Err(format!(
            "atom {atom} in the footprint of both subdomains {} and {s} of color {color}",
            *slot
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;
    use md_neighbor::{NeighborList, VerletConfig};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;

    fn fe_case(n: usize, dims: usize) -> (SimBox, Vec<Vec3>, NeighborList, SdcPlan) {
        let (bx, pos) = LatticeSpec::bcc_fe(n).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(dims, CUTOFF + SKIN)).unwrap();
        (bx, pos, nl, plan)
    }

    #[test]
    fn footprints_disjoint_for_all_dims() {
        // 17 cells → 48.7 Å box → 4 subdomains per decomposed axis, so each
        // color class holds ≥ 2 subdomains and the check is non-trivial.
        for dims in 1..=3 {
            let (_, _, nl, plan) = fe_case(17, dims);
            plan.validate_footprints(nl.csr())
                .unwrap_or_else(|e| panic!("dims {dims}: {e}"));
        }
    }

    #[test]
    fn footprint_validation_catches_a_bad_coloring() {
        // Sabotage: pretend the range is far smaller than the real cutoff,
        // producing subdomains thinner than the interaction halo. The
        // geometric constraint is built with the *wrong* range, so actual
        // footprints must collide and validation must say so.
        let (bx, pos) = LatticeSpec::bcc_fe(9).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let bad = SdcPlan::build(&bx, &pos, DecompositionConfig::new(1, 1.5)).unwrap();
        assert!(bad.validate_footprints(nl.csr()).is_err());
    }

    #[test]
    fn every_atom_binned_once() {
        let (_, pos, _, plan) = fe_case(9, 3);
        assert_eq!(plan.atom_count(), pos.len());
        let d = plan.decomposition();
        let mut seen = vec![false; pos.len()];
        for s in 0..d.subdomain_count() {
            for &a in plan.atoms_of(s) {
                assert!(!seen[a as usize], "atom {a} in two subdomains");
                seen[a as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn pair_counts_sum_to_total_entries() {
        let (_, _, nl, plan) = fe_case(9, 2);
        let counts = plan.pair_counts(nl.csr());
        let total: u64 = counts.iter().sum();
        assert_eq!(total, nl.entries() as u64);
    }

    #[test]
    fn uniform_crystal_is_well_balanced() {
        let (_, _, nl, plan) = fe_case(17, 3);
        let imb = plan.imbalance(nl.csr());
        assert!(imb < 1.35, "imbalance {imb} too high for a uniform crystal");
    }

    #[test]
    fn imbalance_is_at_least_one() {
        let (_, _, nl, plan) = fe_case(9, 1);
        assert!(plan.imbalance(nl.csr()) >= 1.0);
    }

    #[test]
    fn threaded_imbalance_is_one_on_a_single_thread() {
        // The per-task statistic can exceed 1 even on one thread — the very
        // overstatement this variant exists to fix.
        let (_, _, nl, plan) = fe_case(17, 3);
        assert_eq!(plan.imbalance_threaded(nl.csr(), 1), 1.0);
        let t4 = plan.imbalance_threaded(nl.csr(), 4);
        assert!(t4 >= 1.0);
        // LPT packing onto fewer bins can only smooth, never worsen, the
        // per-task spread.
        assert!(t4 <= plan.imbalance(nl.csr()) + 1e-12);
    }

    #[test]
    fn unscheduled_plan_iterates_csr_order() {
        let (_, _, _, plan) = fe_case(17, 2);
        let d = plan.decomposition();
        for color in 0..d.color_count() {
            assert_eq!(plan.ordered_of_color(color), d.of_color(color));
        }
        assert!(plan.schedule().is_none());
    }

    #[test]
    fn scheduled_plan_iterates_lpt_order() {
        use crate::schedule::ColorSchedule;
        let (_, _, nl, mut plan) = fe_case(17, 2);
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        let sched = ColorSchedule::lpt(plan.decomposition(), &costs, 2);
        plan.set_schedule(sched.clone());
        assert_eq!(plan.schedule(), Some(&sched));
        for color in 0..plan.decomposition().color_count() {
            assert_eq!(plan.ordered_of_color(color), sched.order_of(color));
            let o = plan.ordered_of_color(color);
            for w in o.windows(2) {
                assert!(costs[w[0] as usize] >= costs[w[1] as usize]);
            }
        }
    }
}
