//! The shared mutable output array for color-parallel scatters.
//!
//! The SDC strategy hands every same-color subdomain task a view of *the
//! same* output array; Rust's `&mut` aliasing rules cannot express "these
//! tasks write to statically unknown but provably disjoint index sets", so
//! the view is a raw-pointer wrapper with an explicit safety contract.
//!
//! The disjointness proof is geometric (paper §II.B): a task processing
//! subdomain `S` writes only to atoms of `S` and their neighbors, all within
//! `S` expanded by the interaction range; same-color subdomains are
//! separated by at least one subdomain of edge ≥ 2·range, so their expanded
//! footprints cannot meet. [`crate::plan::SdcPlan::validate_footprints`] checks both
//! the geometric property and, in tests, the *actual* footprints from the
//! neighbor list.

use std::marker::PhantomData;

/// An unsynchronized shared view of a `&mut [T]` for provably-disjoint
/// concurrent writes.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper itself only carries a pointer and length; all access
// is through `unsafe` methods whose contracts push the disjointness
// obligation to the caller.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps an exclusive slice.
    pub fn new(slice: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a mutable reference to element `i`.
    ///
    /// # Safety
    /// For the lifetime of the returned reference no other thread may access
    /// element `i` (reads included). The SDC engine guarantees this by the
    /// color-footprint disjointness invariant.
    ///
    /// # Panics
    /// Panics on out-of-bounds `i` (always checked: the branch is trivially
    /// predicted and the force kernels are memory-bound anyway).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        assert!(i < self.len, "SharedSlice index {i} out of bounds ({})", self.len);
        // SAFETY: bounds checked above; aliasing discipline is the caller's
        // contract.
        unsafe { &mut *self.ptr.add(i) }
    }

    /// Raw base pointer (for the atomic strategy, which performs its own
    /// lane-level synchronization).
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        self.ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u64; 64];
        let shared = SharedSlice::new(&mut data);
        std::thread::scope(|s| {
            let sh = &shared;
            for t in 0..4 {
                s.spawn(move || {
                    // Thread t owns indices with i % 4 == t — disjoint.
                    for i in (t..64).step_by(4) {
                        // SAFETY: index sets are disjoint across threads.
                        unsafe { *sh.get_mut(i) = i as u64 + 1 };
                    }
                });
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn len_reports_slice_length() {
        let mut data = [0.0f64; 5];
        let s = SharedSlice::new(&mut data);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut data = [0i32; 3];
        let s = SharedSlice::new(&mut data);
        // SAFETY: single-threaded; the call panics before any aliasing.
        let _ = unsafe { s.get_mut(3) };
    }
}
