//! Reference single-thread sweep.
//!
//! This is the paper's optimized serial baseline (its Figs. 1–2 loops with
//! the §II.D optimizations): one pass over the half list, both endpoints
//! updated per pair via Newton's third law / symmetric density flow. All
//! speedups in the reproduction are measured against this path.

use crate::scatter::{PairTerm, ScatterValue};
use md_neighbor::Csr;

/// Serial scatter over a half list: for each stored pair `(i, j)`,
/// `out[i] += to_i` and `out[j] += to_j`.
pub fn scatter_serial<V: ScatterValue>(
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    for (i, row) in half.iter_rows() {
        for &j in row {
            if let Some(t) = kernel(i, j as usize) {
                out[i].add(t.to_i);
                out[j as usize].add(t.to_j);
            }
        }
    }
}

/// [`scatter_serial`] variant whose kernel also receives each pair's **slot**
/// — its storage index in the half list (`offsets[i] + k` for the `k`-th
/// neighbor of `i`). Every stored pair is visited exactly once per sweep, so
/// a kernel may address disjoint per-pair scratch entries by slot (the fused
/// EAM path's phase-1 record store).
pub fn scatter_serial_indexed<V: ScatterValue>(
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    let offsets = half.offsets();
    for (i, row) in half.iter_rows() {
        let base = offsets[i] as usize;
        for (k, &j) in row.iter().enumerate() {
            if let Some(t) = kernel(base + k, i, j as usize) {
                out[i].add(t.to_i);
                out[j as usize].add(t.to_j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_both_endpoints() {
        // 0-1, 0-2, 1-2 triangle with unit symmetric contributions:
        // every vertex has degree 2.
        let half = Csr::from_rows(&[vec![1, 2], vec![2], vec![]]);
        let mut out = vec![0.0f64; 3];
        scatter_serial(&half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn none_contributions_are_skipped() {
        let half = Csr::from_rows(&[vec![1, 2], vec![2], vec![]]);
        let mut out = vec![0.0f64; 3];
        scatter_serial(&half, &mut out, &|i, j| {
            // skip the 0-2 pair
            if i == 0 && j == 2 {
                None
            } else {
                Some(PairTerm::symmetric(1.0))
            }
        });
        assert_eq!(out, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn accumulates_into_existing_values() {
        let half = Csr::from_rows(&[vec![1], vec![]]);
        let mut out = vec![10.0f64, 20.0];
        scatter_serial(&half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![11.0, 21.0]);
    }
}
