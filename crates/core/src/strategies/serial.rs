//! Reference single-thread sweep.
//!
//! This is the paper's optimized serial baseline (its Figs. 1–2 loops with
//! the §II.D optimizations): one pass over the half list, both endpoints
//! updated per pair via Newton's third law / symmetric density flow. All
//! speedups in the reproduction are measured against this path.

use crate::scatter::{PairTerm, ScatterValue};
use md_neighbor::Csr;

/// Serial scatter over a half list: for each stored pair `(i, j)`,
/// `out[i] += to_i` and `out[j] += to_j`.
pub fn scatter_serial<V: ScatterValue>(
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    for (i, row) in half.iter_rows() {
        for &j in row {
            if let Some(t) = kernel(i, j as usize) {
                out[i].add(t.to_i);
                out[j as usize].add(t.to_j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_both_endpoints() {
        // 0-1, 0-2, 1-2 triangle with unit symmetric contributions:
        // every vertex has degree 2.
        let half = Csr::from_rows(&[vec![1, 2], vec![2], vec![]]);
        let mut out = vec![0.0f64; 3];
        scatter_serial(&half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn none_contributions_are_skipped() {
        let half = Csr::from_rows(&[vec![1, 2], vec![2], vec![]]);
        let mut out = vec![0.0f64; 3];
        scatter_serial(&half, &mut out, &|i, j| {
            // skip the 0-2 pair
            if i == 0 && j == 2 {
                None
            } else {
                Some(PairTerm::symmetric(1.0))
            }
        });
        assert_eq!(out, vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn accumulates_into_existing_values() {
        let half = Csr::from_rows(&[vec![1], vec![]]);
        let mut out = vec![10.0f64, 20.0];
        scatter_serial(&half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![11.0, 21.0]);
    }
}
