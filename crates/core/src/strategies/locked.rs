//! Striped-lock baseline — the third class-1 variant the paper names
//! ("critical region, atomic **or lock**", §I).
//!
//! Instead of one global critical section, the output array is guarded by a
//! fixed pool of stripe locks (`atom index mod STRIPES`). A pair update
//! acquires the stripes of both endpoints in ascending order (lock-ordering
//! discipline — no deadlock), so unrelated pairs proceed in parallel and
//! only true collisions serialize. Faster than the global critical section,
//! still paying two lock round-trips per pair — the paper's class-1 verdict
//! ("high synchronization cost when using … lock in loop") stands.

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_neighbor::Csr;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Number of stripe locks. A power of two well above any realistic core
/// count keeps the collision probability (two random atoms sharing a
/// stripe) low while bounding lock memory.
pub const STRIPES: usize = 1024;

/// Parallel scatter guarded by a pool of [`STRIPES`] stripe locks.
pub fn scatter_locked<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_locked_metered(ctx, half, out, kernel, None);
}

/// [`scatter_locked`] with optional instrumentation: stripe-lock
/// acquisitions (one or two per contributing pair) and *crossings* — pairs
/// whose endpoints hit two distinct stripes and therefore pay both lock
/// round-trips, the class-1 overhead the paper's verdict is about. Tallies
/// accumulate in per-row locals and flush with one atomic add per row.
pub fn scatter_locked_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    let locks: Vec<Mutex<()>> = (0..STRIPES).map(|_| Mutex::new(())).collect();
    let shared = SharedSlice::new(out);
    ctx.install(|| {
        (0..half.rows()).into_par_iter().for_each(|i| {
            let mut acquisitions = 0u64;
            let mut crossings = 0u64;
            for &j in half.row(i) {
                if let Some(t) = kernel(i, j as usize) {
                    let j = j as usize;
                    let (lo, hi) = {
                        let (a, b) = (i % STRIPES, j % STRIPES);
                        if a <= b {
                            (a, b)
                        } else {
                            (b, a)
                        }
                    };
                    // Ascending acquisition order prevents deadlock; when
                    // both endpoints share a stripe, one lock suffices.
                    let _g1 = locks[lo].lock();
                    let _g2 = (hi != lo).then(|| locks[hi].lock());
                    acquisitions += 1 + (hi != lo) as u64;
                    crossings += (hi != lo) as u64;
                    // SAFETY: every write to index k happens under the lock
                    // of stripe k % STRIPES, so no two threads touch the
                    // same element concurrently; the mutexes order the
                    // memory accesses.
                    unsafe {
                        shared.get_mut(i).add(t.to_i);
                        shared.get_mut(j).add(t.to_j);
                    }
                }
            }
            if let Some(m) = metrics {
                m.lock_acquisitions.add(acquisitions);
                m.lock_crossings.add(crossings);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_on_a_dense_graph() {
        // Dense graph with vertices far beyond the stripe count is the
        // worst case for collisions — correctness must not depend on it.
        let n = 60usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| ((i + 1) as u32..n as u32).collect())
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i * 3 + j) as f64));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        let ctx = ParallelContext::new(4);
        let mut got = vec![0.0f64; n];
        scatter_locked(&ctx, &half, &mut got, &kernel);
        assert_eq!(expect, got);
    }

    #[test]
    fn same_stripe_pairs_do_not_deadlock() {
        // Pairs whose endpoints map to the same stripe (i ≡ j mod STRIPES).
        let n = STRIPES * 2 + 1;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                if i + STRIPES < n {
                    vec![(i + STRIPES) as u32]
                } else {
                    vec![]
                }
            })
            .collect();
        let half = Csr::from_rows(&rows);
        let ctx = ParallelContext::new(4);
        let mut got = vec![0.0f64; n];
        scatter_locked(&ctx, &half, &mut got, &|_, _| Some(PairTerm::symmetric(1.0)));
        // Pairs exist for i in 0..(n - STRIPES); each adds 1.0 to both ends.
        let total: f64 = got.iter().sum();
        assert_eq!(total, 2.0 * (n - STRIPES) as f64);
    }
}
