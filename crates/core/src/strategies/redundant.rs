//! Redundant Computation baseline (paper class 5, "RC" in Fig. 9).
//!
//! With a **full** neighbor list each atom can compute everything it needs
//! by itself: `out[i] += kernel(i, j).to_i` over all neighbors `j`, no
//! writes to other atoms, hence no synchronization at all. The price is the
//! paper's stated one — every pair interaction is computed twice and the
//! neighbor list doubles in memory.
//!
//! Correctness requires the kernel to be *endpoint-symmetric*
//! (`kernel(j, i).to_i == kernel(i, j).to_j`): true for densities
//! (symmetric) and forces (antisymmetric), see
//! [`crate::scatter::PairKernel`].

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::scatter::{PairTerm, ScatterValue};
use md_neighbor::Csr;
use rayon::prelude::*;

/// Gather-only parallel reduction over a full neighbor list.
pub fn scatter_redundant<V: ScatterValue>(
    ctx: &ParallelContext,
    full: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_redundant_metered(ctx, full, out, kernel, None);
}

/// [`scatter_redundant`] with optional instrumentation: counts the
/// *duplicate* kernel evaluations — the second visit of each stored pair,
/// identified as the `j < i` traversal of the full list — i.e. exactly the
/// extra compute the paper charges RC with. Tallies accumulate in a per-row
/// local and flush with one atomic add per row.
pub fn scatter_redundant_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    full: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    ctx.install(|| {
        out.par_iter_mut().enumerate().for_each(|(i, o)| {
            let mut duplicates = 0u64;
            for &j in full.row(i) {
                if let Some(t) = kernel(i, j as usize) {
                    duplicates += ((j as usize) < i) as u64;
                    o.add(t.to_i);
                }
            }
            if let Some(m) = metrics {
                m.duplicate_pairs.add(duplicates);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_half_list_scatter() {
        let half = Csr::from_rows(&[vec![1, 2], vec![2, 3], vec![3], vec![]]);
        let full = half.symmetrized();
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i + j) as f64));
        let mut expect = vec![0.0f64; 4];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        let ctx = ParallelContext::new(3);
        let mut got = vec![0.0f64; 4];
        scatter_redundant(&ctx, &full, &mut got, &kernel);
        assert_eq!(expect, got);
    }

    #[test]
    fn antisymmetric_kernel_gathers_correct_signs() {
        // force-like: contribution to i from j is sign(j - i).
        let half = Csr::from_rows(&[vec![1], vec![2], vec![]]);
        let full = half.symmetrized();
        let kernel = |i: usize, j: usize| {
            let f = if j > i { 1.0 } else { -1.0 };
            Some(PairTerm { to_i: f, to_j: -f })
        };
        let ctx = ParallelContext::new(2);
        let mut got = vec![0.0f64; 3];
        scatter_redundant(&ctx, &full, &mut got, &kernel);
        // atom 0: +1 (from 1). atom 1: -1 (from 0) + 1 (from 2) = 0.
        // atom 2: -1 (from 1).
        assert_eq!(got, vec![1.0, 0.0, -1.0]);
        let net: f64 = got.iter().sum();
        assert_eq!(net, 0.0);
    }
}
