//! Spatial Decomposition Coloring — the paper's contribution (§II.B–C).
//!
//! Execution mirrors the paper's Fig. 7/8 loop nest:
//!
//! ```text
//! for color in colors {               // serial over colors
//!     par for subdomain in of_color(color) {   // rayon, no sync inside
//!         for i in atoms_of(subdomain) {
//!             for j in half_list(i) {
//!                 out[i] += to_i;  out[j] += to_j;   // unsynchronized!
//!             }
//!         }
//!     }                               // implicit barrier (par_iter joins)
//! }
//! ```
//!
//! The unsynchronized writes are sound because within one color the write
//! footprints — each subdomain's atoms plus their list neighbors — are
//! pairwise disjoint: same-color subdomains are separated by a full
//! subdomain of edge ≥ 2·(cutoff + skin) along some axis, and every list
//! neighbor lies within `cutoff + skin` of its owner. The invariant is
//! established once per neighbor-list rebuild and can be checked exhaustively
//! with [`SdcPlan::validate_footprints`]; debug builds re-verify it here on
//! every plan's first use.
//!
//! The only synchronization the strategy ever performs is the barrier at the
//! end of each color's parallel loop — `colors` barriers per sweep (2, 4 or
//! 8), amortized over the entire force computation. That is the whole reason
//! for the paper's near-linear speedup.

use crate::context::ParallelContext;
use crate::metrics::{ScatterMetrics, MAX_COLORS};
use crate::plan::SdcPlan;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_neighbor::Csr;
use rayon::prelude::*;
use std::time::Instant;

/// Color-parallel scatter over a half list (see module docs).
pub fn scatter_sdc<V: ScatterValue>(
    ctx: &ParallelContext,
    plan: &SdcPlan,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_sdc_metered(ctx, plan, half, out, kernel, None);
}

/// [`scatter_sdc`] with optional instrumentation: per-color wall time (the
/// span of each color's parallel region, whose join is the barrier) and
/// per-worker busy time (attributed via `rayon::current_thread_index`, so a
/// worker's barrier wait is `Σ color walls − busy`). Timing is taken once
/// per color / per subdomain task — never inside the pair loop — keeping the
/// enabled-path overhead within the ≤ 1% budget (DESIGN.md §10).
pub fn scatter_sdc_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    plan: &SdcPlan,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    scatter_sdc_indexed_metered(ctx, plan, half, out, &|_, i, j| kernel(i, j), metrics);
}

/// [`scatter_sdc_metered`] whose kernel also receives each pair's **slot** —
/// its storage index in the half list (`offsets[i] + k`). Within one sweep
/// every stored pair is visited exactly once and by exactly one task, so an
/// indexed kernel may write disjoint per-pair scratch entries through a
/// [`SharedSlice`] (the fused EAM path's phase-1 record store) under the same
/// footprint-disjointness argument that covers `out`.
pub fn scatter_sdc_indexed_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    plan: &SdcPlan,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    debug_assert!(
        plan.validate_footprints(half).is_ok(),
        "SDC plan footprints overlap; decomposition range too small for this list"
    );
    let decomp = plan.decomposition();
    let offsets = half.offsets();
    let shared = SharedSlice::new(out);
    ctx.install(|| {
        for color in 0..decomp.color_count() {
            let color_start = metrics.map(|_| Instant::now());
            // Parallel over same-color subdomains; the par_iter join is the
            // paper's implicit barrier before the next color starts. The
            // iteration order is the plan's schedule (LPT when balancing is
            // on, CSR otherwise) — within a color any order is
            // result-identical, because each output element has exactly one
            // writer per color.
            plan.ordered_of_color(color).par_iter().for_each(|&s| {
                let task_start = metrics.map(|_| Instant::now());
                let sh = &shared;
                for &i in plan.atoms_of(s as usize) {
                    let i = i as usize;
                    let base = offsets[i] as usize;
                    for (k, &j) in half.row(i).iter().enumerate() {
                        if let Some(t) = kernel(base + k, i, j as usize) {
                            // SAFETY: i is owned by subdomain s; j is a list
                            // neighbor of i, hence inside s's halo. Same-color
                            // footprints are disjoint (checked above), so no
                            // other task touches these elements this color.
                            unsafe {
                                sh.get_mut(i).add(t.to_i);
                                sh.get_mut(j as usize).add(t.to_j);
                            }
                        }
                    }
                }
                if let (Some(m), Some(start)) = (metrics, task_start) {
                    let worker = rayon::current_thread_index().unwrap_or(0);
                    m.add_busy_ns(worker, start.elapsed().as_nanos() as u64);
                }
            });
            if let (Some(m), Some(start)) = (metrics, color_start) {
                m.color_wall[color.min(MAX_COLORS - 1)].record(start.elapsed());
                m.color_barriers.inc();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::DecompositionConfig;
    use md_geometry::{LatticeSpec, Vec3};
    use md_neighbor::{NeighborList, VerletConfig};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;

    #[test]
    fn matches_serial_for_each_dimensionality() {
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let kernel = |i: usize, j: usize| {
            let r2 = bx.distance_sq(pos[i], pos[j]);
            (r2 < CUTOFF * CUTOFF).then(|| PairTerm::symmetric(1.0 / (1.0 + r2)))
        };
        let mut expect = vec![0.0f64; pos.len()];
        crate::strategies::serial::scatter_serial(nl.csr(), &mut expect, &kernel);
        for dims in 1..=3 {
            let plan =
                SdcPlan::build(&bx, &pos, DecompositionConfig::new(dims, CUTOFF + SKIN)).unwrap();
            for threads in [1, 2, 5] {
                let ctx = ParallelContext::new(threads);
                let mut got = vec![0.0f64; pos.len()];
                scatter_sdc(&ctx, &plan, nl.csr(), &mut got, &kernel);
                for (k, (a, b)) in expect.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "dims {dims} threads {threads}: atom {k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn vec3_scatter_matches_serial() {
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let kernel = |i: usize, j: usize| {
            let d = bx.min_image(pos[i], pos[j]);
            let r2 = d.norm_sq();
            (r2 < CUTOFF * CUTOFF).then(|| PairTerm::newton(d / (1.0 + r2)))
        };
        let mut expect = vec![Vec3::ZERO; pos.len()];
        crate::strategies::serial::scatter_serial(nl.csr(), &mut expect, &kernel);
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(3, CUTOFF + SKIN)).unwrap();
        let ctx = ParallelContext::new(4);
        let mut got = vec![Vec3::ZERO; pos.len()];
        scatter_sdc(&ctx, &plan, nl.csr(), &mut got, &kernel);
        for (a, b) in expect.iter().zip(&got) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn lpt_schedule_is_bitwise_identical_to_csr_order() {
        // Reordering tasks within a color must not change a single bit:
        // every output element has exactly one writer per color, so the
        // floating-point accumulation order per element is unchanged.
        use crate::schedule::ColorSchedule;
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let kernel = |i: usize, j: usize| {
            let r2 = bx.distance_sq(pos[i], pos[j]);
            (r2 < CUTOFF * CUTOFF).then(|| PairTerm::symmetric(1.0 / (1.0 + r2)))
        };
        for dims in 1..=3 {
            let plan =
                SdcPlan::build(&bx, &pos, DecompositionConfig::new(dims, CUTOFF + SKIN)).unwrap();
            let costs: Vec<f64> =
                plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
            let mut scheduled = plan.clone();
            scheduled.set_schedule(ColorSchedule::lpt(plan.decomposition(), &costs, 4));
            for threads in [1, 4] {
                let ctx = ParallelContext::new(threads);
                let mut plain = vec![0.0f64; pos.len()];
                let mut lpt = vec![0.0f64; pos.len()];
                scatter_sdc(&ctx, &plan, nl.csr(), &mut plain, &kernel);
                scatter_sdc(&ctx, &scheduled, nl.csr(), &mut lpt, &kernel);
                assert_eq!(plain, lpt, "dims {dims} threads {threads}: LPT changed a bit");
            }
        }
    }

    #[test]
    fn every_pair_processed_exactly_once() {
        // Unit contributions: out[i] must equal the degree of i in the
        // full adjacency — each stored pair touched once, no duplicates.
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, 0.0));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(2, CUTOFF)).unwrap();
        let ctx = ParallelContext::new(4);
        let mut got = vec![0.0f64; pos.len()];
        scatter_sdc(&ctx, &plan, nl.csr(), &mut got, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        });
        let full = nl.to_full();
        #[allow(clippy::needless_range_loop)]
        for i in 0..pos.len() {
            assert_eq!(got[i], full.neighbors(i).len() as f64, "atom {i}");
        }
    }
}
