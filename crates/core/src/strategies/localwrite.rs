//! LOCALWRITE — the paper's class-3 strategy (Han & Tseng, its refs.
//! [19, 20]), which it describes but does not evaluate: "partitions
//! computations and distributes it among threads in order to avoid write
//! conflicts … it needs an inspector at runtime".
//!
//! Implemented here to complete the taxonomy:
//!
//! * An **inspector** pass classifies every stored pair against an atom →
//!   partition map: *interior* pairs (both endpoints in one partition) are
//!   assigned to that partition and processed with the usual two-sided
//!   scatter; *boundary* pairs are assigned to **both** endpoint partitions,
//!   each side computing the kernel but writing only to its own atom.
//! * The **executor** runs partitions in parallel with no synchronization at
//!   all: every write targets the executing partition's own atoms.
//!
//! The costs are exactly the ones the paper attributes to this class: the
//! inspector ("the cost of reorder reduction array and computations") plus
//! redundant kernel evaluations for boundary pairs — a fraction that shrinks
//! as partitions grow, interpolating between RC (every pair boundary) and
//! SDC (no redundancy, but colors + barriers).

use crate::context::ParallelContext;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_neighbor::Csr;
use rayon::prelude::*;

/// Which endpoint(s) a partition writes for one of its pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteMode {
    /// Interior pair: write both endpoints.
    Both,
    /// Boundary pair owned via `i`: write `i` only.
    IOnly,
    /// Boundary pair owned via `j`: write `j` only.
    JOnly,
}

/// The inspector's output: per-partition work lists.
#[derive(Debug, Clone)]
pub struct LocalWritePlan {
    partition_of: Vec<u32>,
    /// Per partition: `(i, j, mode)` triples.
    lists: Vec<Vec<(u32, u32, u8)>>,
    interior_pairs: usize,
    boundary_pairs: usize,
}

impl LocalWritePlan {
    /// Runs the inspector: contiguous index-range partitioning of `n` atoms
    /// into `partitions` chunks, then pair classification over the half
    /// list. (With spatially sorted atoms — the §II.D reorder — index
    /// ranges are spatial blocks, which keeps the boundary fraction low.)
    pub fn build(half: &Csr, partitions: usize) -> LocalWritePlan {
        assert!(partitions > 0, "need at least one partition");
        let n = half.rows();
        let chunk = n.div_ceil(partitions).max(1);
        let partition_of: Vec<u32> = (0..n).map(|a| (a / chunk) as u32).collect();
        let n_parts = if n == 0 { 1 } else { (n - 1) / chunk + 1 };
        let mut lists: Vec<Vec<(u32, u32, u8)>> = vec![Vec::new(); n_parts];
        let mut interior = 0usize;
        let mut boundary = 0usize;
        for (i, row) in half.iter_rows() {
            let pi = partition_of[i];
            for &j in row {
                let pj = partition_of[j as usize];
                if pi == pj {
                    lists[pi as usize].push((i as u32, j, WriteMode::Both as u8));
                    interior += 1;
                } else {
                    lists[pi as usize].push((i as u32, j, WriteMode::IOnly as u8));
                    lists[pj as usize].push((i as u32, j, WriteMode::JOnly as u8));
                    boundary += 1;
                }
            }
        }
        LocalWritePlan {
            partition_of,
            lists,
            interior_pairs: interior,
            boundary_pairs: boundary,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.lists.len()
    }

    /// Partition owning atom `a`.
    pub fn partition_of(&self, a: usize) -> usize {
        self.partition_of[a] as usize
    }

    /// Pairs with both endpoints in one partition (computed once).
    pub fn interior_pairs(&self) -> usize {
        self.interior_pairs
    }

    /// Cross-partition pairs (kernel computed twice — the class's redundant
    /// work).
    pub fn boundary_pairs(&self) -> usize {
        self.boundary_pairs
    }

    /// The redundant-computation fraction: extra kernel evaluations over
    /// the half-list count.
    pub fn redundancy(&self) -> f64 {
        let total = self.interior_pairs + self.boundary_pairs;
        if total == 0 {
            0.0
        } else {
            self.boundary_pairs as f64 / total as f64
        }
    }
}

/// LOCALWRITE executor: partitions in parallel, each writing only its own
/// atoms.
pub fn scatter_localwrite<V: ScatterValue>(
    ctx: &ParallelContext,
    plan: &LocalWritePlan,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    let shared = SharedSlice::new(out);
    ctx.install(|| {
        plan.lists.par_iter().enumerate().for_each(|(p, list)| {
            let sh = &shared;
            for &(i, j, mode) in list {
                let (i, j) = (i as usize, j as usize);
                if let Some(t) = kernel(i, j) {
                    // SAFETY: a partition writes only to atoms it owns —
                    // `Both` pairs have both endpoints in partition p;
                    // `IOnly`/`JOnly` write the single endpoint owned by p.
                    // Partitions are disjoint, so no element is written by
                    // two tasks.
                    unsafe {
                        match mode {
                            m if m == WriteMode::Both as u8 => {
                                debug_assert_eq!(plan.partition_of(i), p);
                                debug_assert_eq!(plan.partition_of(j), p);
                                sh.get_mut(i).add(t.to_i);
                                sh.get_mut(j).add(t.to_j);
                            }
                            m if m == WriteMode::IOnly as u8 => {
                                debug_assert_eq!(plan.partition_of(i), p);
                                sh.get_mut(i).add(t.to_i);
                            }
                            _ => {
                                debug_assert_eq!(plan.partition_of(j), p);
                                sh.get_mut(j).add(t.to_j);
                            }
                        }
                    }
                }
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| if i + 1 < n { vec![i as u32 + 1] } else { vec![] })
            .collect();
        Csr::from_rows(&rows)
    }

    #[test]
    fn inspector_classifies_interior_and_boundary() {
        // 10 atoms in 2 partitions of 5; path graph → 9 pairs, exactly one
        // (4–5) crosses the boundary.
        let half = path_graph(10);
        let plan = LocalWritePlan::build(&half, 2);
        assert_eq!(plan.partitions(), 2);
        assert_eq!(plan.interior_pairs(), 8);
        assert_eq!(plan.boundary_pairs(), 1);
        assert!((plan.redundancy() - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(plan.partition_of(4), 0);
        assert_eq!(plan.partition_of(5), 1);
    }

    #[test]
    fn matches_serial_including_boundary_pairs() {
        let n = 100usize;
        // Dense-ish graph: each atom connects to the next 5.
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| ((i + 1)..(i + 6).min(n)).map(|j| j as u32).collect())
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i * 3 + j * 5) as f64));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        for partitions in [1, 2, 3, 7, 16] {
            let plan = LocalWritePlan::build(&half, partitions);
            let ctx = ParallelContext::new(4);
            let mut got = vec![0.0f64; n];
            scatter_localwrite(&ctx, &plan, &mut got, &kernel);
            assert_eq!(expect, got, "partitions = {partitions}");
        }
    }

    #[test]
    fn antisymmetric_kernels_work_across_boundaries() {
        let half = path_graph(20);
        let plan = LocalWritePlan::build(&half, 4);
        let kernel = |i: usize, j: usize| {
            let f = (j as f64) - (i as f64);
            Some(PairTerm { to_i: f, to_j: -f })
        };
        let ctx = ParallelContext::new(3);
        let mut got = vec![0.0f64; 20];
        scatter_localwrite(&ctx, &plan, &mut got, &kernel);
        let mut expect = vec![0.0f64; 20];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        assert_eq!(expect, got);
        // Newton still holds globally.
        assert_eq!(got.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn redundancy_shrinks_with_fewer_partitions() {
        let n = 200usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| ((i + 1)..(i + 8).min(n)).map(|j| j as u32).collect())
            .collect();
        let half = Csr::from_rows(&rows);
        let few = LocalWritePlan::build(&half, 2).redundancy();
        let many = LocalWritePlan::build(&half, 50).redundancy();
        assert!(few < many, "few = {few}, many = {many}");
        // One partition: everything interior, zero redundancy.
        assert_eq!(LocalWritePlan::build(&half, 1).redundancy(), 0.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let plan = LocalWritePlan::build(&Csr::empty(5), 3);
        let ctx = ParallelContext::new(2);
        let mut out = vec![0.0f64; 5];
        scatter_localwrite(&ctx, &plan, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![0.0; 5]);
    }
}
