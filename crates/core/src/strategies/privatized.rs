//! Share-Array Privatization baseline (paper class 2, "SAP" in Fig. 9).
//!
//! Every thread accumulates into its **own full-length private copy** of the
//! reduction array; afterwards the copies are merged into the shared array.
//! The paper's two criticisms are faithfully present:
//!
//! * memory overhead grows linearly with the thread count (`threads × N`
//!   values — [`privatized_bytes`] reports it), competing for cache;
//! * the merge is serialized ("updating shared array must be done in a
//!   critical section"), an `O(threads × N)` sequential tail that caps
//!   scalability beyond ~8 cores in the paper's measurements.

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::scatter::{PairTerm, ScatterValue};
use md_neighbor::Csr;
use rayon::prelude::*;
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Reusable private-copy storage for the SAP strategy, keyed by the scatter
/// value type (`ScatterValue: 'static` makes the `TypeId` key sound).
///
/// Without a pool, every sweep reallocates and zero-fills its private
/// arrays; an EAM step does two sweeps (density `f64`, force `Vec3`), so a
/// long run churns `2 × copies × N` values of heap per step. A pool owned by
/// the force engine hands the same buffers back sweep after sweep — they are
/// re-zeroed (that cost is inherent to SAP) but never reallocated. The
/// internal mutex is taken twice per sweep, outside the pair loop.
#[derive(Debug, Default)]
pub struct SapBuffers {
    pool: Mutex<HashMap<TypeId, Box<dyn Any + Send>>>,
}

impl SapBuffers {
    /// An empty pool.
    pub fn new() -> SapBuffers {
        SapBuffers::default()
    }

    fn take<V: ScatterValue>(&self) -> Vec<Vec<V>> {
        self.pool
            .lock()
            .unwrap()
            .remove(&TypeId::of::<V>())
            .and_then(|b| b.downcast::<Vec<Vec<V>>>().ok())
            .map_or_else(Vec::new, |b| *b)
    }

    fn put<V: ScatterValue>(&self, buffers: Vec<Vec<V>>) {
        self.pool
            .lock()
            .unwrap()
            .insert(TypeId::of::<V>(), Box::new(buffers));
    }
}

/// Parallel scatter via thread-private copies and a serialized merge.
///
/// Rows are split into `threads` contiguous chunks (mirroring OpenMP's
/// static schedule); chunk `k` scatters into private array `k`; the merge
/// adds the private arrays into `out` in chunk order, so the result is
/// deterministic for a fixed thread count.
pub fn scatter_privatized<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_privatized_pooled(ctx, half, out, kernel, None, None);
}

/// [`scatter_privatized`] with optional instrumentation; see
/// [`scatter_privatized_pooled`] for the full-featured entry point.
pub fn scatter_privatized_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    scatter_privatized_pooled(ctx, half, out, kernel, metrics, None);
}

/// [`scatter_privatized`] with optional instrumentation and buffer reuse.
///
/// Only **active** chunks — those covering at least one row — get a private
/// array: with `threads > rows` the old behavior allocated, zero-filled and
/// merged `threads` full-length arrays even though all but `rows` of them
/// stayed identically zero. `active = ceil(rows / chunk) ≤ threads` bounds
/// both the allocation and the serialized merge, and is what
/// [`privatized_bytes`] (and the `private_bytes` metric) report.
///
/// The serialized merge — the paper's `O(copies × N)` sequential tail — is
/// timed per sweep when `metrics` is given. When `pool` is given the private
/// arrays are borrowed from it and returned after the merge instead of being
/// reallocated each sweep.
pub fn scatter_privatized_pooled<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
    pool: Option<&SapBuffers>,
) {
    let n = half.rows();
    let threads = ctx.threads();
    let chunk = n.div_ceil(threads).max(1);
    // Chunks beyond the last row are empty: never allocate or merge them.
    let active = if n == 0 { 0 } else { n.div_ceil(chunk).min(threads) };
    let mut privates: Vec<Vec<V>> = pool.map(|p| p.take::<V>()).unwrap_or_default();
    privates.truncate(active);
    for buf in &mut privates {
        buf.clear();
        buf.resize(n, V::zero());
    }
    while privates.len() < active {
        privates.push(vec![V::zero(); n]);
    }
    ctx.install(|| {
        privates.par_iter_mut().enumerate().for_each(|(k, local)| {
            let start = (k * chunk).min(n);
            let end = ((k + 1) * chunk).min(n);
            for i in start..end {
                for &j in half.row(i) {
                    if let Some(t) = kernel(i, j as usize) {
                        local[i].add(t.to_i);
                        local[j as usize].add(t.to_j);
                    }
                }
            }
        })
    });
    let merge_start = metrics.map(|_| Instant::now());
    // The paper's serialized merge: private copies folded into the shared
    // array one after another, in chunk order (deterministic).
    for local in &privates {
        for (o, l) in out.iter_mut().zip(local) {
            o.add(*l);
        }
    }
    if let (Some(m), Some(start)) = (metrics, merge_start) {
        m.merge_ns.add(start.elapsed().as_nanos() as u64);
        m.merges.inc();
        m.private_bytes
            .set_max(privatized_bytes::<V>(n, active) as f64);
    }
    if let Some(p) = pool {
        p.put(privates);
    }
}

/// The extra heap the strategy holds for `n` atoms of `V` across `copies`
/// private arrays — the paper's linear-in-threads memory overhead. `copies`
/// is the *active* chunk count: `min(threads, ceil(rows / chunk))`, which
/// equals the thread count whenever `rows ≥ threads` (every realistic MD
/// case) but stops overstating the footprint when threads outnumber rows.
pub fn privatized_bytes<V: ScatterValue>(n: usize, copies: usize) -> usize {
    n * copies * std::mem::size_of::<V>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_including_cross_chunk_pairs() {
        // A path graph: every pair crosses a chunk boundary for some thread
        // count, exercising the private-copy scatter to "remote" rows.
        let n = 100usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| if i + 1 < n { vec![i as u32 + 1] } else { vec![] })
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i * 31 + j) as f64));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        for threads in [1, 2, 3, 4, 7] {
            let ctx = ParallelContext::new(threads);
            let mut got = vec![0.0f64; n];
            scatter_privatized(&ctx, &half, &mut got, &kernel);
            assert_eq!(expect, got, "threads = {threads}");
        }
    }

    #[test]
    fn handles_more_threads_than_rows() {
        let half = Csr::from_rows(&[vec![1], vec![]]);
        let ctx = ParallelContext::new(8);
        let mut out = vec![0.0f64; 2];
        scatter_privatized(&ctx, &half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn empty_chunks_get_no_private_copies() {
        // 2 rows on 8 threads: chunk = 1, so only 2 chunks are non-empty.
        // The reported footprint must be 2 copies, not 8 — the regression
        // this guards against allocated and merged 8 full-length arrays.
        let m = ScatterMetrics::new(8);
        let half = Csr::from_rows(&[vec![1], vec![]]);
        let ctx = ParallelContext::new(8);
        let mut out = vec![0.0f64; 2];
        scatter_privatized_metered(&ctx, &half, &mut out, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        }, Some(&m));
        assert_eq!(out, vec![1.0, 1.0]);
        assert_eq!(m.private_bytes.get(), privatized_bytes::<f64>(2, 2) as f64);
        assert_eq!(m.merges.get(), 1);
    }

    #[test]
    fn zero_rows_allocates_nothing() {
        let m = ScatterMetrics::new(4);
        let half = Csr::from_rows(&[]);
        let ctx = ParallelContext::new(4);
        let mut out: Vec<f64> = vec![];
        scatter_privatized_metered(&ctx, &half, &mut out, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        }, Some(&m));
        assert_eq!(m.private_bytes.get(), 0.0);
    }

    #[test]
    fn pooled_buffers_are_reused_across_sweeps_with_identical_results() {
        let n = 64usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| if i + 2 < n { vec![i as u32 + 2] } else { vec![] })
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i + 7 * j) as f64));
        let ctx = ParallelContext::new(3);
        let pool = SapBuffers::new();
        let mut expect = vec![0.0f64; n];
        scatter_privatized(&ctx, &half, &mut expect, &kernel);
        let mut first = vec![0.0f64; n];
        scatter_privatized_pooled(&ctx, &half, &mut first, &kernel, None, Some(&pool));
        assert_eq!(expect, first);
        // The pool now holds the private arrays; a second sweep must hand
        // back the same storage, fully re-zeroed (no stale contributions).
        let held: Vec<Vec<f64>> = pool.take::<f64>();
        assert_eq!(held.len(), 3, "active copies parked in the pool");
        let fingerprints: Vec<*const f64> = held.iter().map(|b| b.as_ptr()).collect();
        pool.put(held);
        let mut second = vec![0.0f64; n];
        scatter_privatized_pooled(&ctx, &half, &mut second, &kernel, None, Some(&pool));
        assert_eq!(expect, second, "stale buffer contents leaked into sweep 2");
        let held = pool.take::<f64>();
        let again: Vec<*const f64> = held.iter().map(|b| b.as_ptr()).collect();
        assert_eq!(fingerprints, again, "buffers were reallocated, not reused");
        // Distinct value types coexist in one pool.
        pool.put(held);
        let mut v3 = vec![md_geometry::Vec3::ZERO; n];
        scatter_privatized_pooled(
            &ctx,
            &half,
            &mut v3,
            &|_, _| Some(PairTerm::symmetric(md_geometry::Vec3::new(1.0, 0.0, 0.0))),
            None,
            Some(&pool),
        );
        assert_eq!(pool.take::<f64>().len(), 3);
        assert_eq!(pool.take::<md_geometry::Vec3>().len(), 3);
    }

    #[test]
    fn memory_overhead_is_linear_in_active_copies() {
        assert_eq!(
            privatized_bytes::<f64>(1000, 4),
            4 * 1000 * std::mem::size_of::<f64>()
        );
        assert_eq!(
            privatized_bytes::<md_geometry::Vec3>(10, 2),
            2 * 10 * 24
        );
    }
}
