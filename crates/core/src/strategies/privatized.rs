//! Share-Array Privatization baseline (paper class 2, "SAP" in Fig. 9).
//!
//! Every thread accumulates into its **own full-length private copy** of the
//! reduction array; afterwards the copies are merged into the shared array.
//! The paper's two criticisms are faithfully present:
//!
//! * memory overhead grows linearly with the thread count (`threads × N`
//!   values — [`privatized_bytes`] reports it), competing for cache;
//! * the merge is serialized ("updating shared array must be done in a
//!   critical section"), an `O(threads × N)` sequential tail that caps
//!   scalability beyond ~8 cores in the paper's measurements.

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::scatter::{PairTerm, ScatterValue};
use md_neighbor::Csr;
use rayon::prelude::*;
use std::time::Instant;

/// Parallel scatter via thread-private copies and a serialized merge.
///
/// Rows are split into `threads` contiguous chunks (mirroring OpenMP's
/// static schedule); chunk `k` scatters into private array `k`; the merge
/// adds the private arrays into `out` in chunk order, so the result is
/// deterministic for a fixed thread count.
pub fn scatter_privatized<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_privatized_metered(ctx, half, out, kernel, None);
}

/// [`scatter_privatized`] with optional instrumentation: the serialized
/// merge — the paper's `O(threads × N)` sequential tail — is timed per
/// sweep, and the private-copy heap high-water mark is recorded, making
/// SAP's two scaling limits directly observable in run reports.
pub fn scatter_privatized_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    let n = half.rows();
    let threads = ctx.threads();
    let chunk = n.div_ceil(threads).max(1);
    let privates: Vec<Vec<V>> = ctx.install(|| {
        (0..threads)
            .into_par_iter()
            .map(|k| {
                let mut local = vec![V::zero(); n];
                let start = (k * chunk).min(n);
                let end = ((k + 1) * chunk).min(n);
                for i in start..end {
                    for &j in half.row(i) {
                        if let Some(t) = kernel(i, j as usize) {
                            local[i].add(t.to_i);
                            local[j as usize].add(t.to_j);
                        }
                    }
                }
                local
            })
            .collect()
    });
    let merge_start = metrics.map(|_| Instant::now());
    // The paper's serialized merge: private copies folded into the shared
    // array one after another.
    for local in &privates {
        for (o, l) in out.iter_mut().zip(local) {
            o.add(*l);
        }
    }
    if let (Some(m), Some(start)) = (metrics, merge_start) {
        m.merge_ns.add(start.elapsed().as_nanos() as u64);
        m.merges.inc();
        m.private_bytes
            .set_max(privatized_bytes::<V>(n, threads) as f64);
    }
}

/// The extra heap the strategy allocates for `n` atoms of `V` on `threads`
/// threads — the paper's linear-in-threads memory overhead.
pub fn privatized_bytes<V: ScatterValue>(n: usize, threads: usize) -> usize {
    n * threads * std::mem::size_of::<V>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_including_cross_chunk_pairs() {
        // A path graph: every pair crosses a chunk boundary for some thread
        // count, exercising the private-copy scatter to "remote" rows.
        let n = 100usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| if i + 1 < n { vec![i as u32 + 1] } else { vec![] })
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i * 31 + j) as f64));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        for threads in [1, 2, 3, 4, 7] {
            let ctx = ParallelContext::new(threads);
            let mut got = vec![0.0f64; n];
            scatter_privatized(&ctx, &half, &mut got, &kernel);
            assert_eq!(expect, got, "threads = {threads}");
        }
    }

    #[test]
    fn handles_more_threads_than_rows() {
        let half = Csr::from_rows(&[vec![1], vec![]]);
        let ctx = ParallelContext::new(8);
        let mut out = vec![0.0f64; 2];
        scatter_privatized(&ctx, &half, &mut out, &|_, _| Some(PairTerm::symmetric(1.0)));
        assert_eq!(out, vec![1.0, 1.0]);
    }

    #[test]
    fn memory_overhead_is_linear_in_threads() {
        assert_eq!(
            privatized_bytes::<f64>(1000, 4),
            4 * 1000 * std::mem::size_of::<f64>()
        );
        assert_eq!(
            privatized_bytes::<md_geometry::Vec3>(10, 2),
            2 * 10 * 24
        );
    }
}
