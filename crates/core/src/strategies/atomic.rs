//! Atomic-update baseline (the other paper class-1 variant).
//!
//! Identical iteration structure to the critical-section strategy, but each
//! lane of each update is a lock-free compare-exchange add
//! ([`ScatterValue::atomic_add`]). Cheaper than a global lock, still paying
//! a synchronized memory operation per scatter — and it surrenders
//! bit-reproducibility, since commit order varies run to run.

use crate::context::ParallelContext;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_neighbor::Csr;
use rayon::prelude::*;

/// Parallel scatter with per-update CAS-loop atomic adds.
pub fn scatter_atomic<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    let shared = SharedSlice::new(out);
    let n = shared.len();
    ctx.install(|| {
        (0..half.rows()).into_par_iter().for_each(|i| {
            for &j in half.row(i) {
                if let Some(t) = kernel(i, j as usize) {
                    let j = j as usize;
                    assert!(i < n && j < n, "pair index out of bounds");
                    // SAFETY: every concurrent access to the output during
                    // this scatter goes through atomic_add; pointers are in
                    // bounds by the assertion above.
                    unsafe {
                        V::atomic_add(shared.as_ptr().add(i), t.to_i);
                        V::atomic_add(shared.as_ptr().add(j), t.to_j);
                    }
                }
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_on_a_dense_graph() {
        let n = 32usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| ((i + 1) as u32..n as u32).collect())
            .collect();
        let half = Csr::from_rows(&rows);
        // Power-of-two contributions: exact under any summation order.
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric(((i + j) % 8) as f64 * 0.25));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        let ctx = ParallelContext::new(4);
        let mut got = vec![0.0f64; n];
        scatter_atomic(&ctx, &half, &mut got, &kernel);
        assert_eq!(expect, got);
    }
}
