//! Critical-section baseline (paper class 1, "CS" in Fig. 9).
//!
//! The iteration space is parallelized over atoms, but every update of the
//! shared array is wrapped in **one global lock** — the direct translation
//! of wrapping the reduction in `#pragma omp critical`. The pair kernel runs
//! *outside* the lock (as the paper's formulation implies: only "the
//! reference to the reduction array" is enclosed), so the serialization cost
//! is the lock traffic itself. The paper finds this the slowest strategy at
//! every core count; so do we.

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_neighbor::Csr;
use parking_lot::Mutex;
use rayon::prelude::*;

/// Parallel scatter with one global mutex around each pair's two updates.
pub fn scatter_critical<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
) {
    scatter_critical_metered(ctx, half, out, kernel, None);
}

/// [`scatter_critical`] with optional instrumentation: every acquisition of
/// the global lock is counted (one per contributing pair — exactly the
/// serialized traffic the paper blames for CS's flat speedup). Counts
/// accumulate in a per-row local and flush with one atomic add per row, so
/// the pair loop itself gains no atomic traffic.
pub fn scatter_critical_metered<V: ScatterValue>(
    ctx: &ParallelContext,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    let lock = Mutex::new(());
    let shared = SharedSlice::new(out);
    ctx.install(|| {
        (0..half.rows()).into_par_iter().for_each(|i| {
            let mut acquisitions = 0u64;
            for &j in half.row(i) {
                if let Some(t) = kernel(i, j as usize) {
                    let _guard = lock.lock();
                    acquisitions += 1;
                    // SAFETY: the global mutex serializes every access to the
                    // shared array; the mutex's acquire/release ordering
                    // makes the updates visible across threads.
                    unsafe {
                        shared.get_mut(i).add(t.to_i);
                        shared.get_mut(j as usize).add(t.to_j);
                    }
                }
            }
            if let Some(m) = metrics {
                m.lock_acquisitions.add(acquisitions);
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_on_a_dense_graph() {
        // Complete graph on 40 vertices; heavy contention on purpose.
        let n = 40usize;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| ((i + 1) as u32..n as u32).collect())
            .collect();
        let half = Csr::from_rows(&rows);
        let kernel = |i: usize, j: usize| Some(PairTerm::symmetric((i + j) as f64));
        let mut expect = vec![0.0f64; n];
        crate::strategies::serial::scatter_serial(&half, &mut expect, &kernel);
        let ctx = ParallelContext::new(4);
        let mut got = vec![0.0f64; n];
        scatter_critical(&ctx, &half, &mut got, &kernel);
        // Summation order varies; integers summed exactly here.
        assert_eq!(expect, got);
    }
}
