//! The irregular-reduction strategies and their shared entry point.
//!
//! Each submodule implements one of the paper's strategies as a free
//! function; [`ScatterExec`] bundles the resources (thread pool, neighbor
//! CSRs, SDC plan) and dispatches on [`StrategyKind`]. The benchmark harness
//! and the MD engine both go through this single entry point, so every
//! strategy sees exactly the same kernels and data.

pub mod atomic;
pub mod critical;
pub mod localwrite;
pub mod locked;
pub mod privatized;
pub mod redundant;
pub mod sdc;
pub mod serial;

use crate::context::ParallelContext;
use crate::metrics::ScatterMetrics;
use crate::plan::SdcPlan;
use crate::scatter::{PairTerm, ScatterValue, NO_SLOT};
use crate::taskgraph::{self, TaskGraphRunner};
use md_neighbor::Csr;

/// Selects an irregular-reduction parallelization strategy (paper §I
/// taxonomy; see the crate docs for the mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Single-threaded reference sweep over the half list.
    Serial,
    /// Spatial Decomposition Coloring with `dims` decomposed axes
    /// (the paper's contribution; `dims ∈ 1..=3`).
    Sdc {
        /// Number of decomposed axes (1, 2 or 3).
        dims: usize,
    },
    /// One global lock around every scatter update (paper's CS baseline).
    Critical,
    /// Lock-free CAS adds per update (a class-1 variant the paper names:
    /// "critical region, atomic or lock").
    Atomic,
    /// Striped per-atom locks (the paper's remaining class-1 variant:
    /// "… or lock") — parallel except on true stripe collisions.
    Locks,
    /// LOCALWRITE (paper class 3, Han & Tseng): inspector-partitioned
    /// iteration space, boundary pairs computed redundantly by both sides,
    /// all writes local — no synchronization.
    LocalWrite,
    /// Share-Array Privatization: thread-private copies merged serially
    /// (paper's SAP baseline).
    Privatized,
    /// Redundant Computation over a full neighbor list (paper's RC
    /// baseline): gather-only, 2× pair computations.
    Redundant,
    /// Dependency-graph scheduling of the SDC subdomain tasks: the per-color
    /// barrier replaced by conflict edges and a work-stealing pool
    /// ([`crate::taskgraph`]); `dims` selects the decomposition like
    /// [`StrategyKind::Sdc`].
    TaskGraph {
        /// Number of decomposed axes (1, 2 or 3).
        dims: usize,
    },
}

impl StrategyKind {
    /// Short machine-readable name (used by the bench harness CLI).
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Serial => "serial",
            StrategyKind::Sdc { dims: 1 } => "sdc1d",
            StrategyKind::Sdc { dims: 2 } => "sdc2d",
            StrategyKind::Sdc { dims: 3 } => "sdc3d",
            StrategyKind::Sdc { .. } => "sdc",
            StrategyKind::Critical => "cs",
            StrategyKind::Atomic => "atomic",
            StrategyKind::Locks => "locks",
            StrategyKind::LocalWrite => "localwrite",
            StrategyKind::Privatized => "sap",
            StrategyKind::Redundant => "rc",
            StrategyKind::TaskGraph { dims: 1 } => "taskgraph1d",
            StrategyKind::TaskGraph { dims: 2 } => "taskgraph2d",
            StrategyKind::TaskGraph { dims: 3 } => "taskgraph3d",
            StrategyKind::TaskGraph { .. } => "taskgraph",
        }
    }

    /// Parses the names produced by [`StrategyKind::name`].
    pub fn parse(s: &str) -> Option<StrategyKind> {
        Some(match s {
            "serial" => StrategyKind::Serial,
            "sdc1d" => StrategyKind::Sdc { dims: 1 },
            "sdc2d" | "sdc" => StrategyKind::Sdc { dims: 2 },
            "sdc3d" => StrategyKind::Sdc { dims: 3 },
            "cs" | "critical" => StrategyKind::Critical,
            "atomic" => StrategyKind::Atomic,
            "locks" | "locked" => StrategyKind::Locks,
            "localwrite" | "lw" => StrategyKind::LocalWrite,
            "sap" | "privatized" => StrategyKind::Privatized,
            "rc" | "redundant" => StrategyKind::Redundant,
            "taskgraph1d" => StrategyKind::TaskGraph { dims: 1 },
            "taskgraph2d" | "taskgraph" => StrategyKind::TaskGraph { dims: 2 },
            "taskgraph3d" => StrategyKind::TaskGraph { dims: 3 },
            _ => return None,
        })
    }

    /// Every concrete strategy (the paper's Fig. 9 set plus the remaining
    /// class-1 variants and the taskgraph scheduler).
    pub fn all() -> [StrategyKind; 13] {
        [
            StrategyKind::Serial,
            StrategyKind::Sdc { dims: 1 },
            StrategyKind::Sdc { dims: 2 },
            StrategyKind::Sdc { dims: 3 },
            StrategyKind::Critical,
            StrategyKind::Atomic,
            StrategyKind::Locks,
            StrategyKind::LocalWrite,
            StrategyKind::Privatized,
            StrategyKind::Redundant,
            StrategyKind::TaskGraph { dims: 1 },
            StrategyKind::TaskGraph { dims: 2 },
            StrategyKind::TaskGraph { dims: 3 },
        ]
    }

    /// `true` for strategies whose floating-point summation order is fixed,
    /// making results bit-reproducible run to run.
    pub fn is_deterministic(&self) -> bool {
        !matches!(
            self,
            StrategyKind::Critical | StrategyKind::Atomic | StrategyKind::Locks
        )
    }

    /// `true` if the strategy consumes the full (symmetric) neighbor list.
    pub fn needs_full_list(&self) -> bool {
        matches!(self, StrategyKind::Redundant)
    }

    /// `true` if the strategy needs an [`SdcPlan`].
    pub fn needs_plan(&self) -> bool {
        matches!(
            self,
            StrategyKind::Sdc { .. } | StrategyKind::TaskGraph { .. }
        )
    }

    /// The decomposition dimensionality for plan-backed strategies
    /// (`Sdc`/`TaskGraph`), `None` otherwise.
    pub fn plan_dims(&self) -> Option<usize> {
        match self {
            StrategyKind::Sdc { dims } | StrategyKind::TaskGraph { dims } => Some(*dims),
            _ => None,
        }
    }

    /// `true` if the strategy needs a LOCALWRITE inspector plan.
    pub fn needs_localwrite_plan(&self) -> bool {
        matches!(self, StrategyKind::LocalWrite)
    }

    /// `true` for strategies whose [`ScatterExec::run_indexed`] sweep hands
    /// the kernel real half-list slot indices (Serial, barriered SDC, and
    /// the task-graph scheduler); every other strategy receives
    /// [`NO_SLOT`](crate::scatter::NO_SLOT) and must recompute per pair.
    /// Slot-addressed side channels — the fused EAM scratch replay and the
    /// SIMD precompute pass built on top of it — are only sound on these.
    pub fn provides_slots(&self) -> bool {
        matches!(
            self,
            StrategyKind::Serial | StrategyKind::Sdc { .. } | StrategyKind::TaskGraph { .. }
        )
    }

    /// The next-best strategy when this one is infeasible for the current
    /// box geometry: SDC sheds decomposed axes one at a time (3 → 2 → 1) —
    /// each step weakens the geometric precondition — and finally falls back
    /// to striped [`StrategyKind::Locks`], which is parallel, race-free and
    /// has no geometric precondition at all. Strategies without
    /// preconditions have nothing to degrade to.
    pub fn downgrade(&self) -> Option<StrategyKind> {
        match self {
            StrategyKind::Sdc { dims } if *dims > 1 => Some(StrategyKind::Sdc { dims: dims - 1 }),
            StrategyKind::Sdc { .. } => Some(StrategyKind::Locks),
            // The taskgraph scheduler's safe harbor is the barriered SDC
            // reference at the same decomposition (same plan, coarser
            // ordering) — used when the worker pool cannot be built.
            StrategyKind::TaskGraph { dims } => Some(StrategyKind::Sdc { dims: *dims }),
            _ => None,
        }
    }
}

/// A recorded strategy downgrade: the engine replaced an infeasible
/// strategy with the next one in the degradation chain (see
/// [`StrategyKind::downgrade`]) instead of failing the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DowngradeEvent {
    /// The strategy that could not be used.
    pub from: StrategyKind,
    /// The replacement that was tried next.
    pub to: StrategyKind,
    /// Why `from` was infeasible (human-readable).
    pub reason: String,
}

impl std::fmt::Display for DowngradeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "strategy downgraded {} -> {}: {}", self.from, self.to, self.reason)
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The resources a scatter execution may need. Build once per neighbor-list
/// rebuild, run many times (typically twice per time-step: densities and
/// forces).
pub struct ScatterExec<'a> {
    /// Thread pool to run on.
    pub ctx: &'a ParallelContext,
    /// Half neighbor list (every strategy except `Redundant`).
    pub half: &'a Csr,
    /// Full neighbor list (`Redundant` only).
    pub full: Option<&'a Csr>,
    /// SDC plan (`Sdc` only).
    pub plan: Option<&'a SdcPlan>,
    /// LOCALWRITE inspector plan (`LocalWrite` only).
    pub localwrite: Option<&'a localwrite::LocalWritePlan>,
    /// Instrumentation sink ([`crate::metrics`]); `None` disables all
    /// recording at zero cost in the pair loops.
    pub metrics: Option<&'a ScatterMetrics>,
    /// Reusable SAP private-copy buffers (`Privatized` only); `None` falls
    /// back to per-sweep allocation.
    pub sap: Option<&'a privatized::SapBuffers>,
    /// Task-graph runner — worker pool plus the current plan's conflict DAG
    /// (`TaskGraph` only).
    pub taskgraph: Option<&'a TaskGraphRunner>,
}

impl ScatterExec<'_> {
    /// Runs the scatter: `out[i] += Σ to_i`, `out[j] += Σ to_j` over all
    /// stored pairs, using `kind`'s synchronization scheme.
    ///
    /// `out` is **accumulated into**, not cleared — callers zero it first
    /// when appropriate (matching the paper's loop structure, where `rho[]`
    /// and `force[]` are reset at the start of each step).
    ///
    /// # Panics
    /// Panics if `kind` needs a resource (`full`, `plan`) this exec lacks,
    /// or if `plan`'s dimensionality does not match `Sdc { dims }`.
    pub fn run<V: ScatterValue>(
        &self,
        kind: StrategyKind,
        out: &mut [V],
        kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    ) {
        assert_eq!(
            out.len(),
            self.half.rows(),
            "output length must match atom count"
        );
        match kind {
            StrategyKind::Serial => serial::scatter_serial(self.half, out, kernel),
            StrategyKind::Sdc { dims } => {
                let plan = self.plan.expect("SDC strategy requires a plan");
                assert_eq!(
                    plan.decomposition().dims(),
                    dims,
                    "plan dimensionality does not match StrategyKind::Sdc"
                );
                sdc::scatter_sdc_metered(self.ctx, plan, self.half, out, kernel, self.metrics);
            }
            StrategyKind::Critical => {
                critical::scatter_critical_metered(self.ctx, self.half, out, kernel, self.metrics)
            }
            StrategyKind::Atomic => atomic::scatter_atomic(self.ctx, self.half, out, kernel),
            StrategyKind::Locks => {
                locked::scatter_locked_metered(self.ctx, self.half, out, kernel, self.metrics)
            }
            StrategyKind::LocalWrite => {
                let plan = self
                    .localwrite
                    .expect("LocalWrite strategy requires an inspector plan");
                localwrite::scatter_localwrite(self.ctx, plan, out, kernel);
            }
            StrategyKind::Privatized => privatized::scatter_privatized_pooled(
                self.ctx,
                self.half,
                out,
                kernel,
                self.metrics,
                self.sap,
            ),
            StrategyKind::Redundant => {
                let full = self.full.expect("Redundant strategy requires a full list");
                redundant::scatter_redundant_metered(self.ctx, full, out, kernel, self.metrics);
            }
            StrategyKind::TaskGraph { dims } => {
                let plan = self.plan.expect("TaskGraph strategy requires a plan");
                assert_eq!(
                    plan.decomposition().dims(),
                    dims,
                    "plan dimensionality does not match StrategyKind::TaskGraph"
                );
                let runner = self
                    .taskgraph
                    .expect("TaskGraph strategy requires a runner");
                taskgraph::scatter_taskgraph_metered(
                    runner,
                    plan,
                    self.half,
                    out,
                    kernel,
                    self.metrics,
                );
            }
        }
    }

    /// [`ScatterExec::run`] for **indexed** kernels: the kernel additionally
    /// receives each stored pair's slot — its storage index in the half list
    /// (`offsets[i] + k` for the `k`-th neighbor of `i`).
    ///
    /// `Serial` and `Sdc` hand out real slots, each visited exactly once per
    /// sweep by exactly one task, so kernels may keep disjoint per-pair
    /// scratch addressed by slot. Every other strategy routes through its
    /// plain sweep and passes [`NO_SLOT`](crate::scatter::NO_SLOT); the
    /// kernel must then recompute the pair instead of touching scratch.
    pub fn run_indexed<V: ScatterValue>(
        &self,
        kind: StrategyKind,
        out: &mut [V],
        kernel: &(impl Fn(usize, usize, usize) -> Option<PairTerm<V>> + Sync),
    ) {
        match kind {
            StrategyKind::Serial => {
                assert_eq!(
                    out.len(),
                    self.half.rows(),
                    "output length must match atom count"
                );
                serial::scatter_serial_indexed(self.half, out, kernel);
            }
            StrategyKind::Sdc { dims } => {
                assert_eq!(
                    out.len(),
                    self.half.rows(),
                    "output length must match atom count"
                );
                let plan = self.plan.expect("SDC strategy requires a plan");
                assert_eq!(
                    plan.decomposition().dims(),
                    dims,
                    "plan dimensionality does not match StrategyKind::Sdc"
                );
                sdc::scatter_sdc_indexed_metered(
                    self.ctx,
                    plan,
                    self.half,
                    out,
                    kernel,
                    self.metrics,
                );
            }
            StrategyKind::TaskGraph { dims } => {
                assert_eq!(
                    out.len(),
                    self.half.rows(),
                    "output length must match atom count"
                );
                let plan = self.plan.expect("TaskGraph strategy requires a plan");
                assert_eq!(
                    plan.decomposition().dims(),
                    dims,
                    "plan dimensionality does not match StrategyKind::TaskGraph"
                );
                let runner = self
                    .taskgraph
                    .expect("TaskGraph strategy requires a runner");
                taskgraph::scatter_taskgraph_indexed_metered(
                    runner,
                    plan,
                    self.half,
                    out,
                    kernel,
                    self.metrics,
                );
            }
            _ => self.run(kind, out, &|i, j| kernel(NO_SLOT, i, j)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::DecompositionConfig;
    use md_geometry::{LatticeSpec, SimBox, Vec3};
    use md_neighbor::{NeighborList, VerletConfig};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;

    struct Fixture {
        pos: Vec<Vec3>,
        sim_box: SimBox,
        half: md_neighbor::Csr,
        full: md_neighbor::Csr,
        plans: Vec<SdcPlan>,
        lw: localwrite::LocalWritePlan,
    }

    fn fixture() -> Fixture {
        let (sim_box, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&sim_box, &pos, VerletConfig::half(CUTOFF, SKIN));
        let full = nl.to_full();
        let plans = (1..=3)
            .map(|dims| {
                SdcPlan::build(&sim_box, &pos, DecompositionConfig::new(dims, CUTOFF + SKIN))
                    .unwrap()
            })
            .collect();
        let lw = localwrite::LocalWritePlan::build(nl.csr(), 16);
        Fixture {
            pos,
            sim_box,
            half: nl.csr().clone(),
            full: full.csr().clone(),
            plans,
            lw,
        }
    }

    /// Runner for taskgraph kinds, `None` otherwise (built per call so the
    /// pool width tracks `threads`).
    fn runner_for(f: &Fixture, kind: StrategyKind, threads: usize) -> Option<TaskGraphRunner> {
        match kind {
            StrategyKind::TaskGraph { dims } => Some(
                TaskGraphRunner::new(threads, &f.plans[dims - 1], &f.sim_box).unwrap(),
            ),
            _ => None,
        }
    }

    fn run_density(f: &Fixture, kind: StrategyKind, threads: usize) -> Vec<f64> {
        let ctx = ParallelContext::new(threads);
        let plan = kind.plan_dims().map(|dims| &f.plans[dims - 1]);
        let runner = runner_for(f, kind, threads);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &f.half,
            full: Some(&f.full),
            plan,
            localwrite: Some(&f.lw),
            metrics: None,
            sap: None,
            taskgraph: runner.as_ref(),
        };
        let pos = &f.pos;
        let sim_box = &f.sim_box;
        let mut rho = vec![0.0f64; pos.len()];
        // A density-like symmetric kernel with a sharp cutoff, so the skin
        // pairs exercise the `None` path.
        exec.run(kind, &mut rho, &|i, j| {
            let r2 = sim_box.distance_sq(pos[i], pos[j]);
            if r2 < CUTOFF * CUTOFF {
                Some(PairTerm::symmetric((-r2).exp() + 0.01))
            } else {
                None
            }
        });
        rho
    }

    fn run_force(f: &Fixture, kind: StrategyKind, threads: usize) -> Vec<Vec3> {
        let ctx = ParallelContext::new(threads);
        let plan = kind.plan_dims().map(|dims| &f.plans[dims - 1]);
        let runner = runner_for(f, kind, threads);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &f.half,
            full: Some(&f.full),
            plan,
            localwrite: Some(&f.lw),
            metrics: None,
            sap: None,
            taskgraph: runner.as_ref(),
        };
        let pos = &f.pos;
        let sim_box = &f.sim_box;
        let mut force = vec![Vec3::ZERO; pos.len()];
        // An antisymmetric force-like kernel: f(i,j) = -f(j,i) by
        // construction, as Redundant requires.
        exec.run(kind, &mut force, &|i, j| {
            let d = sim_box.min_image(pos[i], pos[j]);
            let r2 = d.norm_sq();
            if r2 < CUTOFF * CUTOFF {
                Some(PairTerm::newton(d * (1.0 / (1.0 + r2))))
            } else {
                None
            }
        });
        force
    }

    fn assert_close_f64(a: &[f64], b: &[f64], tol: f64, what: &str) {
        for (k, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * x.abs().max(1.0),
                "{what}: element {k} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn all_strategies_agree_on_densities() {
        let f = fixture();
        let reference = run_density(&f, StrategyKind::Serial, 1);
        for kind in StrategyKind::all() {
            for threads in [1, 2, 4] {
                let got = run_density(&f, kind, threads);
                assert_close_f64(&reference, &got, 1e-12, &format!("{kind} t={threads}"));
            }
        }
    }

    #[test]
    fn all_strategies_agree_on_forces() {
        let f = fixture();
        let reference = run_force(&f, StrategyKind::Serial, 1);
        for kind in StrategyKind::all() {
            let got = run_force(&f, kind, 4);
            for (k, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert!(
                    (*a - *b).norm() <= 1e-11 * a.norm().max(1.0),
                    "{kind}: force {k} differs: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn newton_kernel_forces_sum_to_zero() {
        let f = fixture();
        for kind in [
            StrategyKind::Serial,
            StrategyKind::Sdc { dims: 2 },
            StrategyKind::Privatized,
            StrategyKind::Redundant,
        ] {
            let force = run_force(&f, kind, 2);
            let total: Vec3 = force.iter().sum();
            assert!(
                total.norm() < 1e-9,
                "{kind}: net force {total} violates Newton's third law"
            );
        }
    }

    #[test]
    fn deterministic_strategies_are_bit_reproducible() {
        let f = fixture();
        for kind in StrategyKind::all() {
            if !kind.is_deterministic() {
                continue;
            }
            let a = run_density(&f, kind, 4);
            let b = run_density(&f, kind, 4);
            assert_eq!(a, b, "{kind} not reproducible");
        }
    }

    #[test]
    fn run_indexed_matches_plain_and_slots_address_the_half_list() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let f = fixture();
        let reference = run_density(&f, StrategyKind::Serial, 1);
        for kind in StrategyKind::all() {
            let ctx = ParallelContext::new(4);
            let plan = kind.plan_dims().map(|dims| &f.plans[dims - 1]);
            let runner = runner_for(&f, kind, 4);
            let exec = ScatterExec {
                ctx: &ctx,
                half: &f.half,
                full: Some(&f.full),
                plan,
                localwrite: Some(&f.lw),
                metrics: None,
                sap: None,
                taskgraph: runner.as_ref(),
            };
            // The public predicate must agree with the dispatch below — the
            // fused/SIMD engines gate their slot-addressed scratch on it.
            let expects_slots = kind.provides_slots();
            let hits: Vec<AtomicU32> = (0..f.half.entries()).map(|_| AtomicU32::new(0)).collect();
            let (pos, sim_box, half) = (&f.pos, &f.sim_box, &f.half);
            let mut rho = vec![0.0f64; pos.len()];
            exec.run_indexed(kind, &mut rho, &|slot, i, j| {
                if expects_slots {
                    // A real slot must name exactly this pair's storage cell.
                    assert_eq!(half.indices()[slot], j as u32, "{kind}: slot names wrong pair");
                    let base = half.offsets()[i] as usize;
                    assert!(slot >= base && slot < base + half.row_len(i), "{kind}: slot off-row");
                    hits[slot].fetch_add(1, Ordering::Relaxed);
                } else {
                    assert_eq!(slot, crate::scatter::NO_SLOT, "{kind}: expected NO_SLOT");
                }
                let r2 = sim_box.distance_sq(pos[i], pos[j]);
                (r2 < CUTOFF * CUTOFF).then(|| PairTerm::symmetric((-r2).exp() + 0.01))
            });
            assert_close_f64(&reference, &rho, 1e-12, &format!("indexed {kind}"));
            if expects_slots {
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "{kind}: every slot must be visited exactly once per sweep"
                );
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in StrategyKind::all() {
            assert_eq!(StrategyKind::parse(kind.name()), Some(kind), "{kind}");
        }
        assert_eq!(StrategyKind::parse("nope"), None);
    }

    #[test]
    fn resource_predicates() {
        assert!(StrategyKind::Redundant.needs_full_list());
        assert!(!StrategyKind::Serial.needs_full_list());
        assert!(StrategyKind::Sdc { dims: 2 }.needs_plan());
        assert!(!StrategyKind::Critical.needs_plan());
        assert!(!StrategyKind::Atomic.is_deterministic());
        assert!(!StrategyKind::Critical.is_deterministic());
        assert!(!StrategyKind::Locks.is_deterministic());
        assert!(StrategyKind::Sdc { dims: 3 }.is_deterministic());
        assert!(StrategyKind::TaskGraph { dims: 2 }.needs_plan());
        assert!(StrategyKind::TaskGraph { dims: 2 }.is_deterministic());
        assert_eq!(StrategyKind::TaskGraph { dims: 3 }.plan_dims(), Some(3));
        assert_eq!(StrategyKind::Sdc { dims: 1 }.plan_dims(), Some(1));
        assert_eq!(StrategyKind::Locks.plan_dims(), None);
    }

    #[test]
    fn downgrade_chain_ends_at_locks() {
        // Sdc sheds one axis per step, then falls back to striped locks.
        assert_eq!(
            StrategyKind::Sdc { dims: 3 }.downgrade(),
            Some(StrategyKind::Sdc { dims: 2 })
        );
        assert_eq!(
            StrategyKind::Sdc { dims: 2 }.downgrade(),
            Some(StrategyKind::Sdc { dims: 1 })
        );
        assert_eq!(
            StrategyKind::Sdc { dims: 1 }.downgrade(),
            Some(StrategyKind::Locks)
        );
        // TaskGraph falls back to barriered SDC at the same decomposition,
        // which then continues down the SDC chain.
        for dims in 1..=3 {
            assert_eq!(
                StrategyKind::TaskGraph { dims }.downgrade(),
                Some(StrategyKind::Sdc { dims })
            );
        }
        // Non-SDC strategies have no geometric precondition to relax.
        for kind in StrategyKind::all() {
            if !kind.needs_plan() {
                assert_eq!(kind.downgrade(), None, "{kind}");
            }
        }
    }

    #[test]
    fn downgrade_event_display_names_both_strategies() {
        let ev = DowngradeEvent {
            from: StrategyKind::Sdc { dims: 3 },
            to: StrategyKind::Sdc { dims: 2 },
            reason: "axis 0 too small".into(),
        };
        let msg = ev.to_string();
        assert!(msg.contains("sdc3d") && msg.contains("sdc2d") && msg.contains("axis 0"));
    }

    #[test]
    #[should_panic(expected = "requires a plan")]
    fn sdc_without_plan_panics() {
        let f = fixture();
        let ctx = ParallelContext::new(2);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &f.half,
            full: None,
            plan: None,
            localwrite: None,
            metrics: None,
            sap: None,
            taskgraph: None,
        };
        let mut out = vec![0.0f64; f.pos.len()];
        exec.run(StrategyKind::Sdc { dims: 2 }, &mut out, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        });
    }

    #[test]
    #[should_panic(expected = "requires a full list")]
    fn redundant_without_full_list_panics() {
        let f = fixture();
        let ctx = ParallelContext::new(2);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &f.half,
            full: None,
            plan: None,
            localwrite: None,
            metrics: None,
            sap: None,
            taskgraph: None,
        };
        let mut out = vec![0.0f64; f.pos.len()];
        exec.run(StrategyKind::Redundant, &mut out, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        });
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn wrong_output_length_panics() {
        let f = fixture();
        let ctx = ParallelContext::new(1);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &f.half,
            full: None,
            plan: None,
            localwrite: None,
            metrics: None,
            sap: None,
            taskgraph: None,
        };
        let mut out = vec![0.0f64; 3];
        exec.run(StrategyKind::Serial, &mut out, &|_, _| {
            Some(PairTerm::symmetric(1.0))
        });
    }
}
