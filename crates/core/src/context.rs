//! Thread-pool context.
//!
//! The paper pins its OpenMP threads to cores with `sched_setaffinity` and
//! sweeps thread counts 2–16 on a fixed machine. The Rust equivalent is an
//! explicit rayon [`ThreadPool`] per configuration: every parallel strategy
//! runs inside [`ParallelContext::install`], so the executing thread count
//! is always exactly the configured one regardless of the global pool.

use rayon::ThreadPool;

/// An owned rayon thread pool with a fixed thread count.
pub struct ParallelContext {
    pool: ThreadPool,
    threads: usize,
}

impl ParallelContext {
    /// Builds a pool with exactly `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0` or the pool cannot be spawned.
    pub fn new(threads: usize) -> ParallelContext {
        assert!(threads > 0, "thread count must be at least 1");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .thread_name(|i| format!("sdc-worker-{i}"))
            .build()
            .expect("failed to build rayon thread pool");
        ParallelContext { pool, threads }
    }

    /// Configured worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` inside the pool; rayon parallel iterators invoked within use
    /// this pool's workers.
    #[inline]
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.pool.install(f)
    }
}

impl std::fmt::Debug for ParallelContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelContext")
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_uses_requested_thread_count() {
        let ctx = ParallelContext::new(3);
        assert_eq!(ctx.threads(), 3);
        let inside = ctx.install(rayon::current_num_threads);
        assert_eq!(inside, 3);
    }

    #[test]
    fn install_runs_work_and_returns_value() {
        let ctx = ParallelContext::new(2);
        let sum: u64 = ctx.install(|| (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        let _ = ParallelContext::new(0);
    }
}
