//! Scatter values and pair contributions.
//!
//! The two irregular reductions in the paper are structurally identical:
//!
//! * electron densities — `rho[i] += f(r); rho[j] += f(r)` (its Fig. 1/7);
//! * forces — `force[i] += f⃗; force[j] -= f⃗` (its Fig. 2/8);
//!
//! i.e. a per-pair kernel produces one contribution for each endpoint, and
//! the strategy decides *how* those contributions reach the shared array.
//! [`ScatterValue`] abstracts over the accumulated type (`f64` for
//! densities, [`Vec3`] for forces) so every strategy is written once.

use md_geometry::Vec3;
use std::sync::atomic::{AtomicU64, Ordering};

/// A value that pair kernels accumulate into a shared per-atom array.
pub trait ScatterValue: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// The additive identity.
    fn zero() -> Self;

    /// In-place addition.
    fn add(&mut self, rhs: Self);

    /// Lock-free atomic addition at `target`, implemented with per-lane
    /// compare-exchange loops on the `f64` bit patterns. Used by the
    /// `Atomic` baseline strategy.
    ///
    /// # Safety
    /// `target` must be valid for reads and writes, and every concurrent
    /// access to it for the duration of the scatter must go through this
    /// method (no plain loads/stores).
    unsafe fn atomic_add(target: *mut Self, rhs: Self);
}

/// CAS-loop add of one `f64` lane through an `AtomicU64` view.
///
/// # Safety
/// Same contract as [`ScatterValue::atomic_add`], for one lane.
#[inline]
unsafe fn atomic_add_f64(target: *mut f64, rhs: f64) {
    // SAFETY: caller guarantees validity and atomic-only concurrent access;
    // f64 and AtomicU64 have the same size and alignment.
    let atom = unsafe { &*(target as *const AtomicU64) };
    let mut cur = atom.load(Ordering::Relaxed);
    loop {
        let new = f64::to_bits(f64::from_bits(cur) + rhs);
        match atom.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl ScatterValue for f64 {
    #[inline]
    fn zero() -> f64 {
        0.0
    }

    #[inline]
    fn add(&mut self, rhs: f64) {
        *self += rhs;
    }

    #[inline]
    unsafe fn atomic_add(target: *mut f64, rhs: f64) {
        // SAFETY: forwarded contract.
        unsafe { atomic_add_f64(target, rhs) }
    }
}

impl ScatterValue for Vec3 {
    #[inline]
    fn zero() -> Vec3 {
        Vec3::ZERO
    }

    #[inline]
    fn add(&mut self, rhs: Vec3) {
        *self += rhs;
    }

    #[inline]
    unsafe fn atomic_add(target: *mut Vec3, rhs: Vec3) {
        // SAFETY: Vec3 is repr(C) of three f64 lanes; forwarded contract
        // holds per lane.
        unsafe {
            let base = target as *mut f64;
            atomic_add_f64(base, rhs.x);
            atomic_add_f64(base.add(1), rhs.y);
            atomic_add_f64(base.add(2), rhs.z);
        }
    }
}

/// The two endpoint contributions a pair kernel produces for a stored pair
/// `(i, j)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairTerm<V> {
    /// Added to `out[i]`.
    pub to_i: V,
    /// Added to `out[j]`.
    pub to_j: V,
}

impl<V: ScatterValue> PairTerm<V> {
    /// A symmetric contribution (densities of a single species:
    /// `f(r)` flows both ways).
    #[inline]
    pub fn symmetric(v: V) -> PairTerm<V> {
        PairTerm { to_i: v, to_j: v }
    }
}

impl PairTerm<Vec3> {
    /// A Newton's-third-law contribution: `+f⃗` to `i`, `−f⃗` to `j`.
    #[inline]
    pub fn newton(f: Vec3) -> PairTerm<Vec3> {
        PairTerm { to_i: f, to_j: -f }
    }
}

/// A pair kernel: given a stored pair `(i, j)`, produce the endpoint
/// contributions, or `None` when the pair is currently outside the true
/// cutoff (Verlet skin pairs).
///
/// **Contract for gather-based strategies** (`Redundant`): the kernel must
/// be *endpoint-symmetric*, i.e. `kernel(j, i).to_i == kernel(i, j).to_j`.
/// Both MD kernels satisfy this (densities symmetric, forces antisymmetric).
pub trait PairKernel<V: ScatterValue>: Fn(usize, usize) -> Option<PairTerm<V>> + Sync {}
impl<V: ScatterValue, K: Fn(usize, usize) -> Option<PairTerm<V>> + Sync> PairKernel<V> for K {}

/// Slot sentinel handed to indexed kernels by strategies whose sweep carries
/// no usable per-pair storage index (the gather, lock and privatized
/// baselines, which may visit a pair from both endpoints or without a stable
/// half-list position). On seeing `NO_SLOT` a kernel must fall back to
/// recomputing the pair instead of touching per-pair scratch.
pub const NO_SLOT: usize = usize::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_and_add() {
        let mut x = f64::zero();
        x.add(2.5);
        x.add(-1.0);
        assert_eq!(x, 1.5);
        let mut v = Vec3::zero();
        v.add(Vec3::new(1.0, 2.0, 3.0));
        v.add(Vec3::new(0.5, 0.0, -3.0));
        assert_eq!(v, Vec3::new(1.5, 2.0, 0.0));
    }

    #[test]
    fn pair_term_constructors() {
        let s = PairTerm::symmetric(2.0);
        assert_eq!(s.to_i, 2.0);
        assert_eq!(s.to_j, 2.0);
        let n = PairTerm::newton(Vec3::new(1.0, -2.0, 0.5));
        assert_eq!(n.to_i, Vec3::new(1.0, -2.0, 0.5));
        assert_eq!(n.to_j, Vec3::new(-1.0, 2.0, -0.5));
    }

    #[test]
    fn atomic_add_f64_accumulates_under_contention() {
        let data = Arc::new(vec![0.0f64; 1]);
        let ptr = data.as_ptr() as usize;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        // SAFETY: all concurrent access goes through atomic_add.
                        unsafe { f64::atomic_add(ptr as *mut f64, 1.0) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(data[0], 4000.0);
    }

    #[test]
    fn atomic_add_vec3_accumulates_under_contention() {
        let data = Arc::new(vec![Vec3::ZERO; 1]);
        let ptr = data.as_ptr() as usize;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        // SAFETY: all concurrent access goes through atomic_add.
                        unsafe {
                            Vec3::atomic_add(
                                ptr as *mut Vec3,
                                Vec3::new(1.0, 2.0, t as f64),
                            )
                        };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(data[0].x, 2000.0);
        assert_eq!(data[0].y, 4000.0);
        assert_eq!(data[0].z, (0.0 + 1.0 + 2.0 + 3.0) * 500.0);
    }
}
