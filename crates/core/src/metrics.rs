//! Lightweight, lock-free metrics primitives for the hot paths.
//!
//! The paper's whole argument (Table 1, Fig. 9) is about *where time goes*:
//! barrier waits between SDC colors, lock traffic in the class-1 baselines,
//! the serialized merge in SAP, doubled pair work in RC. This module provides
//! the measurement substrate — monotonic [`Counter`]s, [`Gauge`]s and
//! streaming [`DurationHistogram`]s — plus [`ScatterMetrics`], the bundle the
//! strategy implementations record into.
//!
//! Design constraints (std-only, no external deps):
//!
//! * **Lock-free recording.** Every primitive is a handful of relaxed
//!   atomics; recording from inside a rayon worker never blocks another
//!   worker. Cross-counter reads are therefore *not* a consistent snapshot —
//!   read after the parallel region joins (every caller in this workspace
//!   does).
//! * **Coarse-grained charging.** Strategies accumulate per-task or per-row
//!   tallies in locals and flush once per task/row, so the per-pair inner
//!   loop gains no atomic traffic. The measured overhead budget is ≤ 1% of
//!   step time (DESIGN.md §10).
//! * **Bounded memory.** A histogram is a fixed array of log-spaced buckets
//!   (16 sub-buckets per octave → ≤ 6.25% relative quantile error), not a
//!   sample reservoir.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic event counter.
///
/// Increments use **wrapping** arithmetic: a counter that reaches
/// `u64::MAX` rolls over to 0 rather than saturating or panicking (at one
/// event per nanosecond that takes ~584 years, but the semantics are pinned
/// by tests so reports can rely on them). [`Counter::reset`] zeroes it.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow).
    #[inline]
    pub fn add(&self, n: u64) {
        // fetch_add on AtomicU64 wraps by definition.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh gauge reading 0.0.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Sets the gauge to `v` if it exceeds the current value (high-water
    /// mark). Relaxed read-compare-store; concurrent writers may race, which
    /// is acceptable for a watermark.
    #[inline]
    pub fn set_max(&self, v: f64) {
        if v > self.get() {
            self.set(v);
        }
    }
}

/// Sub-bucket resolution: 16 sub-buckets per power-of-two octave.
const SUB_BITS: u32 = 4;
const SUBS: u64 = 1 << SUB_BITS;
/// Highest representable octave: values ≥ 2^48 ns (~3.3 days) clamp into the
/// last bucket.
const MAX_OCTAVE: u64 = 48;
const BUCKETS: usize = (SUBS + (MAX_OCTAVE - SUB_BITS as u64) * SUBS) as usize;

fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let msb = msb.min(MAX_OCTAVE - 1);
    let octave = msb - SUB_BITS as u64;
    let sub = (v >> (msb - SUB_BITS as u64)) - SUBS;
    ((octave << SUB_BITS) + SUBS + sub).min(BUCKETS as u64 - 1) as usize
}

fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        return idx;
    }
    let octave = (idx - SUBS) >> SUB_BITS;
    let sub = (idx - SUBS) & (SUBS - 1);
    (SUBS + sub) << octave
}

/// A streaming duration histogram: count, sum, min, max and log-spaced
/// buckets good for p50/p99 estimates within 6.25% relative error.
///
/// All state is atomic; recording is wait-free and safe from any thread.
/// Quantiles are computed on read by walking the buckets; the returned value
/// is the lower bound of the bucket holding the requested rank, clamped to
/// the observed `[min, max]` — so a degenerate distribution (all values
/// equal) reports *exact* quantiles.
pub struct DurationHistogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for DurationHistogram {
    fn default() -> DurationHistogram {
        DurationHistogram::new()
    }
}

impl std::fmt::Debug for DurationHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurationHistogram")
            .field("count", &self.count())
            .field("mean_ns", &self.mean_ns())
            .field("p50_ns", &self.quantile_ns(0.5))
            .field("p99_ns", &self.quantile_ns(0.99))
            .finish()
    }
}

impl DurationHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> DurationHistogram {
        DurationHistogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, ns (0 when empty).
    pub fn min_ns(&self) -> u64 {
        let v = self.min_ns.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Largest recorded value, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Arithmetic mean, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0 < q ≤ 1`), ns. Returns 0 when empty.
    ///
    /// The estimate is the lower bound of the bucket containing the rank
    /// `ceil(q·count)`, clamped to `[min, max]`; relative error is bounded
    /// by the sub-bucket width (6.25%).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_lower(i).clamp(self.min_ns(), self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Resets to the empty state.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Maximum SDC color count (3-D decomposition → 2³ = 8 colors).
pub const MAX_COLORS: usize = 8;

/// The per-strategy instrumentation bundle threaded through the scatter
/// implementations via [`crate::strategies::ScatterExec`].
///
/// One instance lives for the whole run (owned by the force engine);
/// recording is lock-free, so a single instance is shared by every sweep.
/// Everything is recorded **per scatter sweep** (density or force), i.e. a
/// time-step of EAM contributes two sweeps.
#[derive(Debug)]
pub struct ScatterMetrics {
    /// Lock acquisitions performed by the `Critical` / `Locks` strategies
    /// (one per guarded update for CS; one per stripe lock taken for Locks).
    pub lock_acquisitions: Counter,
    /// Pairs whose two endpoints needed two *distinct* stripe locks
    /// (`Locks` strategy only) — the cross-stripe traffic the paper's
    /// class-1 verdict is about.
    pub lock_crossings: Counter,
    /// Nanoseconds spent in the serialized SAP merge (paper's `O(P·N)`
    /// sequential tail).
    pub merge_ns: Counter,
    /// Number of SAP merges performed (one per sweep).
    pub merges: Counter,
    /// High-water mark of SAP private-copy heap bytes (`threads × N × V`).
    pub private_bytes: Gauge,
    /// Pair kernel evaluations performed *redundantly* by the RC strategy —
    /// the second visit of each stored pair via the full list.
    pub duplicate_pairs: Counter,
    /// Color barriers executed by the SDC strategy (one per color per
    /// sweep).
    pub color_barriers: Counter,
    /// Wall time of each SDC color's parallel region, indexed by color
    /// (≤ [`MAX_COLORS`]). The barrier wait of a thread within a color is
    /// the color wall time minus the thread's busy time in that color.
    pub color_wall: Vec<DurationHistogram>,
    /// Per-worker-thread busy nanoseconds inside SDC subdomain tasks.
    /// Indexed by the rayon worker index of the strategy's dedicated pool.
    pub thread_busy_ns: Vec<Counter>,
    /// Mid-run plan changes made by the cost-guided balancer (plan search
    /// re-runs that adopted a different decomposition).
    pub rebalances: Counter,
    /// Predicted thread-aware imbalance (`max bin / mean bin` under LPT
    /// packing) of the currently active plan; 0.0 until a balancer sets it.
    pub planned_imbalance: Gauge,
    /// Subdomain task completions executed by the taskgraph scheduler (one
    /// per task per sweep — the taskgraph analogue of `color_barriers` for
    /// liveness accounting).
    pub tasks: Counter,
    /// Tasks a taskgraph worker stole from another worker's deque.
    pub steals: Counter,
    /// Per-task ready→start latency under the taskgraph scheduler: how long
    /// a runnable task sat in a deque before a worker picked it up — the
    /// dependency-driven replacement for the per-color barrier walls.
    pub ready_latency: DurationHistogram,
}

impl ScatterMetrics {
    /// Creates a bundle sized for a pool of `threads` workers.
    pub fn new(threads: usize) -> ScatterMetrics {
        ScatterMetrics {
            lock_acquisitions: Counter::new(),
            lock_crossings: Counter::new(),
            merge_ns: Counter::new(),
            merges: Counter::new(),
            private_bytes: Gauge::new(),
            duplicate_pairs: Counter::new(),
            color_barriers: Counter::new(),
            color_wall: (0..MAX_COLORS).map(|_| DurationHistogram::new()).collect(),
            thread_busy_ns: (0..threads.max(1)).map(|_| Counter::new()).collect(),
            rebalances: Counter::new(),
            planned_imbalance: Gauge::new(),
            tasks: Counter::new(),
            steals: Counter::new(),
            ready_latency: DurationHistogram::new(),
        }
    }

    /// Worker count this bundle was sized for.
    pub fn threads(&self) -> usize {
        self.thread_busy_ns.len()
    }

    /// Adds `ns` to the busy tally of worker `thread` (out-of-range indices
    /// are clamped into the last slot, so a mis-sized bundle degrades to
    /// coarser attribution instead of panicking).
    #[inline]
    pub fn add_busy_ns(&self, thread: usize, ns: u64) {
        let idx = thread.min(self.thread_busy_ns.len() - 1);
        self.thread_busy_ns[idx].add(ns);
    }

    /// Total wall nanoseconds across all color regions.
    pub fn total_color_wall_ns(&self) -> u64 {
        self.color_wall.iter().map(|h| h.sum_ns()).sum()
    }

    /// Per-thread *wait* nanoseconds: the part of the color regions a worker
    /// spent idle at barriers, `Σ color walls − busy(t)`, clamped at 0.
    pub fn thread_wait_ns(&self, thread: usize) -> u64 {
        let total = self.total_color_wall_ns();
        let busy = self
            .thread_busy_ns
            .get(thread)
            .map_or(0, |c| c.get());
        total.saturating_sub(busy)
    }

    /// Resets every counter, gauge and histogram.
    pub fn reset(&self) {
        self.lock_acquisitions.reset();
        self.lock_crossings.reset();
        self.merge_ns.reset();
        self.merges.reset();
        self.private_bytes.set(0.0);
        self.duplicate_pairs.reset();
        self.color_barriers.reset();
        for h in &self.color_wall {
            h.reset();
        }
        for c in &self.thread_busy_ns {
            c.reset();
        }
        self.rebalances.reset();
        self.planned_imbalance.set(0.0);
        self.tasks.reset();
        self.steals.reset();
        self.ready_latency.reset();
    }
}

/// Counters for a job-queue service layer (the `mdserve` server): every
/// queue transition, retry and checkpoint-backed resume is tallied here so
/// the `stats` endpoint and the storm harness can assert liveness without
/// scraping logs. Same recording rules as [`ScatterMetrics`]: relaxed
/// atomics, read after the region of interest has quiesced.
#[derive(Debug, Default)]
pub struct QueueMetrics {
    /// Jobs offered by clients (accepted + rejected).
    pub submitted: Counter,
    /// Jobs accepted into the queue (journaled before the accept reply).
    pub accepted: Counter,
    /// Jobs refused with an explicit backpressure response (bounded queue
    /// full, or the server was draining).
    pub rejected: Counter,
    /// Job executions started (first attempts and retries alike).
    pub started: Counter,
    /// Jobs that reached the `completed` terminal state.
    pub completed: Counter,
    /// Jobs that reached the `failed` terminal state.
    pub failed: Counter,
    /// Server-level retry attempts (re-runs after a faulted attempt, with
    /// exponential backoff applied).
    pub retries: Counter,
    /// Executions that resumed from a durable checkpoint instead of
    /// starting at step 0.
    pub resumes: Counter,
    /// Executions interrupted resumably (worker death, shutdown).
    pub interrupted: Counter,
    /// Current queue depth (queued, not yet running).
    pub depth: Gauge,
}

impl QueueMetrics {
    /// A fresh all-zero bundle.
    pub fn new() -> QueueMetrics {
        QueueMetrics::default()
    }

    /// Resets every counter and the depth gauge.
    pub fn reset(&self) {
        self.submitted.reset();
        self.accepted.reset();
        self.rejected.reset();
        self.started.reset();
        self.completed.reset();
        self.failed.reset();
        self.retries.reset();
        self.resumes.reset();
        self.interrupted.reset();
        self.depth.set(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_metrics_tally_and_reset() {
        let q = QueueMetrics::new();
        q.submitted.add(5);
        q.accepted.add(4);
        q.rejected.inc();
        q.completed.add(3);
        q.retries.add(2);
        q.resumes.inc();
        q.depth.set(4.0);
        assert_eq!(q.submitted.get(), 5);
        assert_eq!(q.accepted.get() + q.rejected.get(), q.submitted.get());
        assert_eq!(q.completed.get(), 3);
        assert_eq!(q.retries.get(), 2);
        assert_eq!(q.resumes.get(), 1);
        assert_eq!(q.depth.get(), 4.0);
        q.reset();
        assert_eq!(q.submitted.get(), 0);
        assert_eq!(q.depth.get(), 0.0);
    }

    #[test]
    fn counter_add_get_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_overflow_wraps() {
        let c = Counter::new();
        c.add(u64::MAX);
        c.add(3);
        // Wrapping semantics: MAX + 3 ≡ 2 (mod 2^64).
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn gauge_last_write_wins_and_watermarks() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
        g.set_max(7.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn bucket_round_trip_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in [0u64, 1, 5, 15, 16, 17, 100, 1_000, 123_456, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= prev || v == 0, "bucket index not monotone at {v}");
            prev = idx.max(prev);
            let lo = bucket_lower(idx);
            assert!(lo <= v, "lower bound {lo} exceeds value {v}");
            if (SUBS..1 << (MAX_OCTAVE - 1)).contains(&v) {
                // Within range, the bucket width is ≤ v / 16.
                let hi = bucket_lower(idx + 1);
                assert!(hi > v, "value {v} not inside [{lo}, {hi})");
                assert!((hi - lo) as f64 <= v as f64 / 16.0 + 1.0);
            }
        }
    }

    #[test]
    fn degenerate_distribution_has_exact_quantiles() {
        let h = DurationHistogram::new();
        for _ in 0..100 {
            h.record_ns(777);
        }
        // Clamping to [min, max] makes single-valued distributions exact.
        assert_eq!(h.quantile_ns(0.5), 777);
        assert_eq!(h.quantile_ns(0.99), 777);
        assert_eq!(h.min_ns(), 777);
        assert_eq!(h.max_ns(), 777);
        assert_eq!(h.mean_ns(), 777.0);
    }

    #[test]
    fn exactly_representable_two_point_distribution() {
        // 99 values at 64 ns, 1 at 4096 ns — both are bucket lower bounds,
        // so p50 and p99 are exact and p100 picks up the outlier.
        let h = DurationHistogram::new();
        for _ in 0..99 {
            h.record_ns(64);
        }
        h.record_ns(4096);
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_ns(0.5), 64);
        assert_eq!(h.quantile_ns(0.99), 64); // rank 99 of 100
        assert_eq!(h.quantile_ns(1.0), 4096);
        assert_eq!(h.max_ns(), 4096);
    }

    #[test]
    fn uniform_distribution_quantiles_within_relative_error() {
        // 1..=10_000 ns uniformly: p50 ≈ 5000, p99 ≈ 9900, each within the
        // documented 6.25% bucket resolution.
        let h = DurationHistogram::new();
        for v in 1..=10_000u64 {
            h.record_ns(v);
        }
        let p50 = h.quantile_ns(0.5) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.0625, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.0625, "p99 = {p99}");
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 10_000);
        assert!((h.mean_ns() - 5000.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = DurationHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn histogram_reset_clears_everything() {
        let h = DurationHistogram::new();
        h.record(Duration::from_micros(3));
        assert_eq!(h.count(), 1);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }

    #[test]
    fn scatter_metrics_wait_is_wall_minus_busy() {
        let m = ScatterMetrics::new(2);
        m.color_wall[0].record_ns(1_000);
        m.color_wall[1].record_ns(1_000);
        m.add_busy_ns(0, 1_500);
        m.add_busy_ns(1, 400);
        assert_eq!(m.total_color_wall_ns(), 2_000);
        assert_eq!(m.thread_wait_ns(0), 500);
        assert_eq!(m.thread_wait_ns(1), 1_600);
        // Out-of-range thread: full wall charged as wait.
        assert_eq!(m.thread_wait_ns(9), 2_000);
        m.rebalances.inc();
        m.planned_imbalance.set(1.4);
        m.reset();
        assert_eq!(m.total_color_wall_ns(), 0);
        assert_eq!(m.thread_busy_ns[0].get(), 0);
        assert_eq!(m.rebalances.get(), 0);
        assert_eq!(m.planned_imbalance.get(), 0.0);
    }

    #[test]
    fn busy_attribution_clamps_out_of_range_workers() {
        let m = ScatterMetrics::new(2);
        m.add_busy_ns(17, 10);
        assert_eq!(m.thread_busy_ns[1].get(), 10);
    }
}
