//! # sdc-core
//!
//! The paper's contribution: **Spatial Decomposition Coloring (SDC)** for
//! parallelizing reduction operations on irregular arrays, together with the
//! baseline strategies it is evaluated against.
//!
//! ## The problem
//!
//! Short-range MD force loops over *half* neighbor lists apply Newton's
//! third law: each stored pair `(i, j)` updates **both** `out[i]` and
//! `out[j]` (paper Figs. 1–2). Parallelizing the outer loop naively lets two
//! threads update the same element concurrently — the classic irregular
//! array reduction.
//!
//! ## The strategies (paper §I taxonomy and §III comparison)
//!
//! | [`StrategyKind`] | Paper class | Mechanism |
//! |---|---|---|
//! | `Serial` | — | reference single-thread sweep |
//! | `Sdc { dims }` | the contribution | color subdomains (2/4/8 colors); within a color, write footprints are geometrically disjoint — no synchronization; barrier between colors |
//! | `Critical` | class 1 | one global lock around every scatter update |
//! | `Atomic` | class 1 | CAS-loop atomic adds per lane |
//! | `Privatized` | class 2 (SAP) | per-thread private copies, serialized merge |
//! | `Redundant` | class 5 (RC) | full neighbor list, gather-only, 2× compute |
//!
//! All strategies produce identical results up to floating-point summation
//! order; the test suites assert tight agreement.
//!
//! ## Safety
//!
//! The only `unsafe` in the workspace is [`shared::SharedSlice`], the aliased
//! output array handed to same-color subdomain tasks. Its soundness rests on
//! the geometric disjointness invariant established by
//! [`plan::SdcPlan::validate_footprints`], which is checked by construction in debug
//! builds and exhaustively in the test suite.

#![warn(missing_docs)]

pub mod context;
pub mod decomposition;
pub mod metrics;
pub mod plan;
pub mod scatter;
pub mod schedule;
pub mod shared;
pub mod strategies;
pub mod taskgraph;

pub use context::ParallelContext;
pub use decomposition::{ColoredDecomposition, DecompositionConfig, DecompositionError};
pub use metrics::{Counter, DurationHistogram, Gauge, QueueMetrics, ScatterMetrics};
pub use plan::SdcPlan;
pub use scatter::{PairTerm, ScatterValue, NO_SLOT};
pub use schedule::{BalancedPlan, ColorSchedule, MakespanParams, PlanChoice};
pub use strategies::{DowngradeEvent, ScatterExec, StrategyKind};
pub use taskgraph::{PoolBuildError, TaskGraph, TaskGraphRunner, TaskPool};
