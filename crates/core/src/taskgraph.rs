//! Dependency-graph scatter — the per-color barrier replaced by a task DAG.
//!
//! The SDC strategy (see [`crate::strategies::sdc`]) orders conflicting
//! subdomain tasks with *colors*: all tasks of color `k` run, a global
//! barrier, then color `k+1`. The barrier waits for the slowest task of each
//! color even when most of the box has long gone idle — the residual cost on
//! non-uniform densities that the per-color wall metrics expose.
//!
//! This module derives a finer ordering from the same geometric invariant.
//! Two subdomain tasks **conflict** exactly when their write footprints can
//! share an atom: a task writes its own atoms plus their list neighbors, all
//! of which lie inside the subdomain's AABB expanded by the interaction range
//! (`cutoff + skin`, the list radius). So tasks `a` and `b` conflict iff
//!
//! ```text
//! aabb(a).expanded(range)  intersects  aabb(b).expanded(range)   (periodic)
//! ```
//!
//! — the identical predicate `ColoredDecomposition::validate` uses to prove
//! the color scheme sound. Every conflicting pair gets a dependency edge
//! directed from the lower to the higher subdomain id, which makes the graph
//! acyclic by construction. A task becomes runnable the moment its last
//! conflicting lower-id neighbor finishes; independent tasks never wait on
//! each other at all. The only full join left is one per sweep.
//!
//! **Determinism.** The edge direction is the whole argument: every pair of
//! tasks that write a common output element is ordered low-id → high-id, so
//! the additions into each element arrive in ascending task-id order under
//! *any* worker interleaving, at *any* thread count — the same fixed order a
//! serial loop over tasks by id would produce. Together with the fixed atom
//! and neighbor-row order inside each task, trajectories are bitwise
//! reproducible (DESIGN.md §14). Note this fixed order is the *id* order,
//! not the SDC *color* order, so taskgraph results agree with the barriered
//! reference to floating-point reassociation (≤ 1e-10 in practice), not
//! bitwise — the barriered path stays the deterministic reference.
//!
//! Execution is a small work-stealing pool on `std::thread` (the offline
//! rayon stub is sequential and exposes no dependency hooks): one deque per
//! worker, owners pop the front, thieves steal from the back, completions
//! decrement dependent counters and push newly-ready tasks onto the
//! completing worker's deque. Per-task ready-latency and steal counters
//! replace the per-color wall histograms in [`ScatterMetrics`].

use crate::metrics::ScatterMetrics;
use crate::plan::SdcPlan;
use crate::scatter::{PairTerm, ScatterValue};
use crate::shared::SharedSlice;
use md_geometry::SimBox;
use md_neighbor::Csr;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The conflict DAG over one plan's subdomain tasks (see module docs).
///
/// Edges run from lower to higher subdomain id between every pair of tasks
/// whose range-expanded AABBs intersect under periodic boundary conditions;
/// stored as a dependents CSR plus per-task indegrees.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// CSR offsets into `dependents`, one slot per task plus a tail.
    dep_offsets: Vec<u32>,
    /// For task `t`: the higher-id tasks whose pending count drops when `t`
    /// completes, ascending.
    dependents: Vec<u32>,
    /// Incoming-edge count per task (the initial pending count).
    indegree: Vec<u32>,
}

impl TaskGraph {
    /// Builds the conflict DAG for `decomp` inside `sim_box`.
    ///
    /// O(S²) in the subdomain count — S is small (the decomposition caps
    /// counts per axis) and the graph is rebuilt only when the plan is.
    pub fn build(decomp: &crate::decomposition::ColoredDecomposition, sim_box: &SimBox) -> TaskGraph {
        let n = decomp.subdomain_count();
        let range = decomp.range();
        let mut indegree = vec![0u32; n];
        let mut counts = vec![0u32; n];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let halos: Vec<_> = (0..n).map(|s| decomp.aabb(s).expanded(range)).collect();
        for (a, halo_a) in halos.iter().enumerate() {
            for (off, halo_b) in halos[a + 1..].iter().enumerate() {
                let b = a + 1 + off;
                if halo_a.intersects_periodic(halo_b, sim_box) {
                    edges.push((a as u32, b as u32));
                    counts[a] += 1;
                    indegree[b] += 1;
                }
            }
        }
        let mut dep_offsets = vec![0u32; n + 1];
        for t in 0..n {
            dep_offsets[t + 1] = dep_offsets[t] + counts[t];
        }
        let mut dependents = vec![0u32; edges.len()];
        let mut cursor = dep_offsets.clone();
        // `edges` is generated in ascending (a, b) order, so each task's
        // dependent list comes out ascending too.
        for (a, b) in edges {
            dependents[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
        }
        TaskGraph { dep_offsets, dependents, indegree }
    }

    /// Number of tasks (subdomains).
    #[inline]
    pub fn task_count(&self) -> usize {
        self.indegree.len()
    }

    /// Number of conflict edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.dependents.len()
    }

    /// The higher-id tasks depending on `t`, ascending.
    #[inline]
    pub fn dependents_of(&self, t: usize) -> &[u32] {
        let lo = self.dep_offsets[t] as usize;
        let hi = self.dep_offsets[t + 1] as usize;
        &self.dependents[lo..hi]
    }

    /// Incoming-edge counts per task.
    #[inline]
    pub fn indegree(&self) -> &[u32] {
        &self.indegree
    }

    /// True when the DAG orders `a` before `b` by a direct edge
    /// (`a < b` and `b` in `a`'s dependent list).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < b && self.dependents_of(a).binary_search(&(b as u32)).is_ok()
    }

    /// Longest path through the DAG in cost units — the makespan lower bound
    /// no amount of parallelism can beat. `costs[t]` is task `t`'s work
    /// (typically its stored-pair count).
    ///
    /// Edges run low id → high id, so ascending id order is topological and
    /// a single forward DP pass suffices.
    ///
    /// # Panics
    /// Panics if `costs` is shorter than the task count.
    pub fn critical_path_units(&self, costs: &[f64]) -> f64 {
        let n = self.task_count();
        assert!(costs.len() >= n, "need one cost per task: {} < {n}", costs.len());
        let mut longest_to = vec![0.0f64; n]; // longest path *into* t, excl. t
        let mut cp = 0.0f64;
        for t in 0..n {
            let finish = longest_to[t] + costs[t];
            cp = cp.max(finish);
            for &d in self.dependents_of(t) {
                let d = d as usize;
                if finish > longest_to[d] {
                    longest_to[d] = finish;
                }
            }
        }
        cp
    }

    /// Exhaustively verifies the safety contract against a real plan and
    /// half list: any two tasks *not* ordered by an edge must have disjoint
    /// write footprints (own atoms ∪ their list neighbors). Debug builds run
    /// this on every scatter; release builds skip it.
    pub fn validate_independence(&self, plan: &SdcPlan, half: &Csr) -> Result<(), String> {
        let n = self.task_count();
        if n != plan.decomposition().subdomain_count() {
            return Err(format!(
                "graph has {n} tasks but plan has {} subdomains",
                plan.decomposition().subdomain_count()
            ));
        }
        let atoms = half.rows();
        let words = atoms.div_ceil(64);
        let mut footprints: Vec<Vec<u64>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut bits = vec![0u64; words];
            for &i in plan.atoms_of(s) {
                let i = i as usize;
                bits[i / 64] |= 1 << (i % 64);
                for &j in half.row(i) {
                    let j = j as usize;
                    bits[j / 64] |= 1 << (j % 64);
                }
            }
            footprints.push(bits);
        }
        for a in 0..n {
            for b in (a + 1)..n {
                if self.has_edge(a, b) {
                    continue;
                }
                let overlap = footprints[a]
                    .iter()
                    .zip(&footprints[b])
                    .any(|(&x, &y)| x & y != 0);
                if overlap {
                    return Err(format!(
                        "tasks {a} and {b} are unordered but their write footprints overlap"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// A failed [`TaskPool`] construction — the platform refused a worker
/// thread, or a test injected a failure. The engine reacts by downgrading
/// to the barriered SDC reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolBuildError(String);

impl std::fmt::Display for PoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task pool construction failed: {}", self.0)
    }
}

impl std::error::Error for PoolBuildError {}

static FAIL_NEXT_POOL: AtomicBool = AtomicBool::new(false);

/// Test hook: make the next [`TaskPool::new`] fail, exercising the engine's
/// `DowngradeEvent` fallback to barriered SDC without needing a platform
/// that actually cannot spawn threads. Consumed by the next construction.
pub fn inject_pool_failure(fail: bool) {
    FAIL_NEXT_POOL.store(fail, Ordering::SeqCst);
}

/// A validated worker count for dependency-driven task execution.
///
/// Construction probes the platform by spawning and joining one thread, so a
/// host that cannot run workers fails *here* — where the engine can still
/// fall back to barriered SDC — rather than mid-sweep. The pool itself is
/// scoped: workers live only for the duration of each [`TaskPool::run_metered`]
/// call (`std::thread::scope`), so an idle pool holds no OS resources.
#[derive(Debug)]
pub struct TaskPool {
    threads: usize,
}

impl TaskPool {
    /// Validates a pool of `threads` workers.
    ///
    /// # Errors
    /// Fails on `threads == 0`, when the platform refuses a probe thread, or
    /// when a failure was injected via [`inject_pool_failure`].
    pub fn new(threads: usize) -> Result<TaskPool, PoolBuildError> {
        if threads == 0 {
            return Err(PoolBuildError("worker count must be positive".into()));
        }
        if FAIL_NEXT_POOL.swap(false, Ordering::SeqCst) {
            return Err(PoolBuildError("injected failure (test hook)".into()));
        }
        let probe = std::thread::Builder::new()
            .name("taskgraph-probe".into())
            .spawn(|| {});
        match probe {
            Ok(handle) => {
                let _ = handle.join();
                Ok(TaskPool { threads })
            }
            Err(e) => Err(PoolBuildError(format!("cannot spawn worker threads: {e}"))),
        }
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every task of `graph` exactly once, respecting all edges:
    /// `task(id, worker)` runs only after every task with an edge into `id`
    /// has returned. Work-stealing: initially-ready tasks are dealt
    /// round-robin across the per-worker deques in ascending id order, each
    /// worker pops its own front and steals from others' backs, and a
    /// completion pushes newly-ready dependents onto the completing worker's
    /// deque.
    ///
    /// With metrics on, records per-task busy time (pool worker indices),
    /// task and steal counts, and the ready→start latency histogram.
    pub fn run_metered<F>(&self, graph: &TaskGraph, metrics: Option<&ScatterMetrics>, task: F)
    where
        F: Fn(u32, usize) + Sync,
    {
        let n = graph.task_count();
        if n == 0 {
            return;
        }
        let threads = self.threads.min(n);
        let pending: Vec<AtomicU32> = graph
            .indegree()
            .iter()
            .map(|&d| AtomicU32::new(d))
            .collect();
        let deques: Vec<Mutex<VecDeque<u32>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        let completed = AtomicUsize::new(0);
        let epoch = Instant::now();
        // Nanoseconds after `epoch` at which each task became ready; only
        // allocated when metrics are on (zero cost otherwise).
        let ready_at: Option<Vec<AtomicU64>> =
            metrics.map(|_| (0..n).map(|_| AtomicU64::new(0)).collect());
        {
            let mut dealt = 0usize;
            for t in 0..n {
                if graph.indegree()[t] == 0 {
                    deques[dealt % threads].lock().unwrap().push_back(t as u32);
                    dealt += 1;
                }
            }
            debug_assert!(dealt > 0, "a non-empty DAG must have a source task");
        }
        let worker = |w: usize| {
            loop {
                if completed.load(Ordering::Acquire) >= n {
                    break;
                }
                let mut popped = deques[w].lock().unwrap().pop_front();
                if popped.is_none() {
                    for off in 1..threads {
                        let victim = (w + off) % threads;
                        if let Some(t) = deques[victim].lock().unwrap().pop_back() {
                            if let Some(m) = metrics {
                                m.steals.inc();
                            }
                            popped = Some(t);
                            break;
                        }
                    }
                }
                let Some(t) = popped else {
                    // Ready queues are dry but tasks are still pending on
                    // running predecessors; let them finish.
                    std::thread::yield_now();
                    continue;
                };
                let start = metrics.map(|_| Instant::now());
                if let (Some(m), Some(ready), Some(s)) = (metrics, ready_at.as_ref(), start) {
                    let waited = (s - epoch)
                        .as_nanos()
                        .saturating_sub(ready[t as usize].load(Ordering::Relaxed).into());
                    m.ready_latency.record_ns(waited as u64);
                }
                task(t, w);
                if let (Some(m), Some(s)) = (metrics, start) {
                    m.add_busy_ns(w, s.elapsed().as_nanos() as u64);
                    m.tasks.inc();
                }
                for &d in graph.dependents_of(t as usize) {
                    // AcqRel: the last decrement acquires every predecessor's
                    // release, so the dependent observes all their writes.
                    if pending[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        if let Some(ready) = ready_at.as_ref() {
                            ready[d as usize]
                                .store(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        deques[w].lock().unwrap().push_back(d);
                    }
                }
                completed.fetch_add(1, Ordering::Release);
            }
        };
        if threads == 1 {
            worker(0);
        } else {
            std::thread::scope(|scope| {
                for w in 1..threads {
                    scope.spawn(move || worker(w));
                }
                worker(0);
            });
        }
        debug_assert_eq!(completed.load(Ordering::Acquire), n, "lost task completions");
    }
}

/// A [`TaskPool`] bundled with the conflict DAG of the current plan — what
/// the force engine owns and rebuilds (the graph half) alongside the plan.
#[derive(Debug)]
pub struct TaskGraphRunner {
    /// The validated worker pool; survives plan rebuilds.
    pub pool: TaskPool,
    /// The conflict DAG of the current plan; rebuilt with it.
    pub graph: TaskGraph,
}

impl TaskGraphRunner {
    /// Builds a runner for `plan`: validates a pool of `threads` workers and
    /// derives the plan's conflict DAG.
    ///
    /// # Errors
    /// Propagates [`TaskPool::new`] failures (the engine downgrades to
    /// barriered SDC on them).
    pub fn new(threads: usize, plan: &SdcPlan, sim_box: &SimBox) -> Result<TaskGraphRunner, PoolBuildError> {
        let pool = TaskPool::new(threads)?;
        let graph = TaskGraph::build(plan.decomposition(), sim_box);
        Ok(TaskGraphRunner { pool, graph })
    }

    /// Re-derives the DAG for a rebuilt plan, keeping the pool.
    pub fn rebuild(&mut self, plan: &SdcPlan, sim_box: &SimBox) {
        self.graph = TaskGraph::build(plan.decomposition(), sim_box);
    }
}

/// Dependency-driven scatter over a half list: the taskgraph analogue of
/// `scatter_sdc_indexed_metered`, same kernel contract (each stored pair
/// visited exactly once, slot = its half-list storage index).
///
/// Safety of the unsynchronized [`SharedSlice`] writes: unordered task pairs
/// have disjoint write footprints (debug builds verify this exhaustively via
/// [`TaskGraph::validate_independence`]); ordered pairs never run
/// concurrently, and the completion protocol's release/acquire chain makes
/// the earlier task's writes visible to the later one.
pub fn scatter_taskgraph_indexed_metered<V: ScatterValue>(
    runner: &TaskGraphRunner,
    plan: &SdcPlan,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    debug_assert!(
        runner.graph.validate_independence(plan, half).is_ok(),
        "task graph out of sync with the plan: {:?}",
        runner.graph.validate_independence(plan, half)
    );
    let offsets = half.offsets();
    let shared = SharedSlice::new(out);
    runner.pool.run_metered(&runner.graph, metrics, |s, _worker| {
        let sh = &shared;
        for &i in plan.atoms_of(s as usize) {
            let i = i as usize;
            let base = offsets[i] as usize;
            for (k, &j) in half.row(i).iter().enumerate() {
                if let Some(t) = kernel(base + k, i, j as usize) {
                    // SAFETY: i is owned by task s; j is a list neighbor of
                    // i, hence inside s's write footprint. Tasks whose
                    // footprints can overlap are ordered by an edge (checked
                    // above), so no concurrent task touches these elements.
                    unsafe {
                        sh.get_mut(i).add(t.to_i);
                        sh.get_mut(j as usize).add(t.to_j);
                    }
                }
            }
        }
    });
}

/// [`scatter_taskgraph_indexed_metered`] with a plain (unindexed) kernel.
pub fn scatter_taskgraph_metered<V: ScatterValue>(
    runner: &TaskGraphRunner,
    plan: &SdcPlan,
    half: &Csr,
    out: &mut [V],
    kernel: &(impl Fn(usize, usize) -> Option<PairTerm<V>> + Sync),
    metrics: Option<&ScatterMetrics>,
) {
    scatter_taskgraph_indexed_metered(runner, plan, half, out, &|_, i, j| kernel(i, j), metrics);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::DecompositionConfig;
    use md_geometry::LatticeSpec;
    use md_neighbor::{NeighborList, VerletConfig};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;
    const RANGE: f64 = CUTOFF + SKIN;

    fn fixture(cells: usize, dims: usize) -> (md_geometry::SimBox, Vec<md_geometry::Vec3>, NeighborList, SdcPlan) {
        let (bx, pos) = LatticeSpec::bcc_fe(cells).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(dims, RANGE)).unwrap();
        (bx, pos, nl, plan)
    }

    #[test]
    fn edges_match_the_validate_predicate_and_point_upward() {
        for dims in 1..=3 {
            let (bx, _, _, plan) = fixture(17, dims);
            let decomp = plan.decomposition();
            let graph = TaskGraph::build(decomp, &bx);
            let n = decomp.subdomain_count();
            assert_eq!(graph.task_count(), n);
            let mut expect = 0usize;
            for a in 0..n {
                let ha = decomp.aabb(a).expanded(decomp.range());
                for b in (a + 1)..n {
                    let hb = decomp.aabb(b).expanded(decomp.range());
                    let conflict = ha.intersects_periodic(&hb, &bx);
                    assert_eq!(
                        graph.has_edge(a, b),
                        conflict,
                        "dims {dims}: edge ({a},{b})"
                    );
                    assert!(!graph.has_edge(b, a), "edge must point low → high");
                    if conflict {
                        expect += 1;
                    }
                }
            }
            assert_eq!(graph.edge_count(), expect, "dims {dims}");
            // Indegrees are consistent with the dependent lists.
            let mut indeg = vec![0u32; n];
            for a in 0..n {
                for &b in graph.dependents_of(a) {
                    indeg[b as usize] += 1;
                }
            }
            assert_eq!(indeg, graph.indegree(), "dims {dims}");
        }
    }

    #[test]
    fn independence_validates_against_real_footprints() {
        for dims in 1..=3 {
            let (bx, _, nl, plan) = fixture(17, dims);
            let graph = TaskGraph::build(plan.decomposition(), &bx);
            graph
                .validate_independence(&plan, nl.csr())
                .unwrap_or_else(|e| panic!("dims {dims}: {e}"));
        }
    }

    #[test]
    fn critical_path_bounds() {
        let (bx, _, nl, plan) = fixture(17, 2);
        let graph = TaskGraph::build(plan.decomposition(), &bx);
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        let cp = graph.critical_path_units(&costs);
        let max = costs.iter().cloned().fold(0.0, f64::max);
        let total: f64 = costs.iter().sum();
        assert!(cp >= max, "critical path {cp} below heaviest task {max}");
        assert!(cp <= total, "critical path {cp} above serial total {total}");
        // A chain graph degenerates to the serial total.
        let chain = TaskGraph {
            dep_offsets: vec![0, 1, 2, 2],
            dependents: vec![1, 2],
            indegree: vec![0, 1, 1],
        };
        assert_eq!(chain.critical_path_units(&[1.0, 2.0, 4.0]), 7.0);
        // Fully independent tasks: the heaviest one.
        let free = TaskGraph {
            dep_offsets: vec![0, 0, 0, 0],
            dependents: vec![],
            indegree: vec![0, 0, 0],
        };
        assert_eq!(free.critical_path_units(&[1.0, 2.0, 4.0]), 4.0);
    }

    #[test]
    fn pool_runs_every_task_once_in_dependency_order() {
        let (bx, _, _, plan) = fixture(17, 3);
        let graph = TaskGraph::build(plan.decomposition(), &bx);
        let n = graph.task_count();
        for threads in [1usize, 2, 4, 7] {
            let pool = TaskPool::new(threads).unwrap();
            let runs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            let finish_order = Mutex::new(Vec::new());
            pool.run_metered(&graph, None, |t, w| {
                assert!(w < threads);
                runs[t as usize].fetch_add(1, Ordering::SeqCst);
                finish_order.lock().unwrap().push(t);
            });
            for (t, r) in runs.iter().enumerate() {
                assert_eq!(r.load(Ordering::SeqCst), 1, "t{threads}: task {t}");
            }
            // Every edge respected: the source finished before the sink.
            let order = finish_order.into_inner().unwrap();
            let mut position = vec![0usize; n];
            for (k, &t) in order.iter().enumerate() {
                position[t as usize] = k;
            }
            for a in 0..n {
                for &b in graph.dependents_of(a) {
                    assert!(
                        position[a] < position[b as usize],
                        "t{threads}: edge {a}→{b} violated"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_construction_failures() {
        assert!(TaskPool::new(0).is_err());
        inject_pool_failure(true);
        let err = TaskPool::new(2).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The injection is consumed: the next build succeeds.
        assert!(TaskPool::new(2).is_ok());
    }

    #[test]
    fn scatter_matches_sdc_within_reassociation_and_is_bitwise_stable() {
        let (bx, pos, nl, plan) = fixture(17, 2);
        let kernel = |i: usize, j: usize| {
            let r2 = bx.distance_sq(pos[i], pos[j]);
            (r2 < CUTOFF * CUTOFF).then(|| PairTerm::symmetric(1.0 / (1.0 + r2)))
        };
        let mut reference = vec![0.0f64; pos.len()];
        crate::strategies::serial::scatter_serial(nl.csr(), &mut reference, &kernel);
        let mut baseline: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 4, 8] {
            let runner = TaskGraphRunner::new(threads, &plan, &bx).unwrap();
            for _ in 0..2 {
                let mut got = vec![0.0f64; pos.len()];
                scatter_taskgraph_metered(&runner, &plan, nl.csr(), &mut got, &kernel, None);
                for (k, (a, b)) in reference.iter().zip(&got).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-12,
                        "t{threads}: atom {k}: {a} vs {b}"
                    );
                }
                match &baseline {
                    None => baseline = Some(got),
                    Some(expect) => assert_eq!(
                        expect, &got,
                        "t{threads}: taskgraph scatter is not bitwise deterministic"
                    ),
                }
            }
        }
    }

    #[test]
    fn metered_scatter_counts_every_task() {
        let (bx, pos, nl, plan) = fixture(17, 3);
        let runner = TaskGraphRunner::new(4, &plan, &bx).unwrap();
        let metrics = ScatterMetrics::new(4);
        let mut out = vec![0.0f64; pos.len()];
        scatter_taskgraph_metered(
            &runner,
            &plan,
            nl.csr(),
            &mut out,
            &|_, _| Some(PairTerm::symmetric(1.0)),
            Some(&metrics),
        );
        let n = plan.decomposition().subdomain_count() as u64;
        assert_eq!(metrics.tasks.get(), n, "every task completion counted");
        assert_eq!(metrics.ready_latency.count(), n);
        assert_eq!(metrics.color_barriers.get(), 0, "no color barriers here");
        let busy: u64 = (0..metrics.threads()).map(|w| metrics.thread_busy_ns[w].get()).sum();
        assert!(busy > 0, "busy time attributed to pool workers");
    }
}
