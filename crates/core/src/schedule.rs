//! Cost-guided scheduling of SDC subdomain tasks — closing the paper's
//! measure → act loop.
//!
//! The paper's near-linear SDC speedup (§III) leans on *density uniformity*:
//! every same-color subdomain carries roughly the same number of stored
//! pairs, so the barrier at the end of each color waits on nobody in
//! particular. Non-uniform workloads (a carved void, an impact-heated
//! cluster) break that assumption — pair counts per subdomain skew, and each
//! color barrier waits for its slowest task. This module *acts* on the
//! per-subdomain cost estimates that [`SdcPlan::pair_counts`] already
//! measures:
//!
//! * [`lpt_order`] / [`ColorSchedule`] — **LPT** (longest processing time
//!   first) ordering of the subdomains inside each color, so the work-stealing
//!   scheduler starts heavy tasks first instead of following CSR order. The
//!   greedy LPT bound guarantees a per-color makespan within 4/3 of optimal.
//! * [`packed_loads`] / [`chunked_loads`] — per-thread bin loads under LPT
//!   packing and under the contiguous in-order split (the OpenMP-static
//!   proxy the unbalanced path behaves like), from which thread-aware
//!   imbalance factors are derived (`max bin / mean bin`).
//! * [`search_plans`] — a deterministic plan search over decomposition
//!   dimensionality × per-axis subdomain caps
//!   ([`DecompositionConfig::max_per_axis`]), scoring each candidate by the
//!   predicted makespan `Σ_colors max-thread-bin·task + barrier` per sweep
//!   ([`MakespanParams`], derived from `md-perfmodel::MachineParams` by the
//!   engine layer) and keeping the paper's even-count and ≥ 2·range
//!   constraints.
//!
//! **Why reordering is free:** within one color, every output element is
//! written by exactly one task (the footprint-disjointness invariant checked
//! by [`SdcPlan::validate_footprints`]), atom order *inside* a task is
//! untouched, and colors still run serially — so any permutation of the
//! same-color task list produces bitwise-identical results. The schedule is
//! purely a performance decision.

use crate::decomposition::{ColoredDecomposition, DecompositionConfig, DecompositionError};
use crate::plan::SdcPlan;
use md_geometry::{SimBox, Vec3};
use md_neighbor::Csr;
use std::cmp::Ordering;

/// Cost constants for predicting a schedule's wall time, in seconds.
///
/// These are distilled from `md-perfmodel::MachineParams` at a fixed thread
/// count (the perfmodel crate depends on this one, so the conversion lives
/// there); [`MakespanParams::units`] gives the dimensionless variant used
/// when only *relative* makespans matter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanParams {
    /// Cost of one unit of task work (one stored half-pair), including the
    /// thread-count-dependent bandwidth overhead.
    pub task_unit_seconds: f64,
    /// Cost of one color barrier at the configured thread count.
    pub barrier_seconds: f64,
    /// Timed sweeps per step (density + force = 2 for EAM).
    pub sweeps: f64,
}

impl MakespanParams {
    /// Dimensionless parameters: unit task cost, free barriers, one sweep.
    /// [`ColorSchedule::predicted_seconds`] then returns plain work units.
    pub fn units() -> MakespanParams {
        MakespanParams {
            task_unit_seconds: 1.0,
            barrier_seconds: 0.0,
            sweeps: 1.0,
        }
    }
}

/// The task ids sorted for LPT execution: descending cost, ties broken by
/// ascending id so the order is total and deterministic.
pub fn lpt_order(ids: &[u32], costs: &[f64]) -> Vec<u32> {
    let mut sorted = ids.to_vec();
    sorted.sort_by(|&a, &b| {
        costs[b as usize]
            .partial_cmp(&costs[a as usize])
            .unwrap_or(Ordering::Equal)
            .then(a.cmp(&b))
    });
    sorted
}

/// Greedy bin loads: tasks are taken in the given order and each is placed
/// on the currently least-loaded of `bins` bins (first bin wins ties). With
/// `ids` in LPT order this is the classic LPT packing whose `max` is the
/// predicted per-color makespan.
pub fn packed_loads(ids_in_order: &[u32], costs: &[f64], bins: usize) -> Vec<f64> {
    let bins = bins.max(1);
    let mut loads = vec![0.0f64; bins];
    for &id in ids_in_order {
        let mut best = 0usize;
        for (k, &load) in loads.iter().enumerate().skip(1) {
            if load < loads[best] {
                best = k;
            }
        }
        loads[best] += costs[id as usize];
    }
    loads
}

/// Bin loads of the contiguous in-order split (`ceil(len/bins)` tasks per
/// bin) — the static-schedule proxy for the unbalanced path, used as the
/// baseline LPT is compared against.
pub fn chunked_loads(ids: &[u32], costs: &[f64], bins: usize) -> Vec<f64> {
    let bins = bins.max(1);
    let chunk = ids.len().div_ceil(bins).max(1);
    let mut loads = vec![0.0f64; bins];
    for (k, &id) in ids.iter().enumerate() {
        loads[(k / chunk).min(bins - 1)] += costs[id as usize];
    }
    loads
}

/// Thread-aware imbalance of a set of bin loads: `max / mean` (≥ 1.0;
/// exactly 1.0 for an empty or zero-load set). The mean runs over *all*
/// bins — an idle thread is barrier wait, which is precisely what the factor
/// is meant to expose.
pub fn imbalance_of(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let total: f64 = loads.iter().sum();
    if total <= 0.0 {
        return 1.0;
    }
    let max = loads.iter().cloned().fold(0.0f64, f64::max);
    max / (total / loads.len() as f64)
}

/// An LPT execution schedule for one colored decomposition: per color, the
/// subdomains in descending-cost order plus the per-thread bin loads the
/// greedy packing predicts.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorSchedule {
    threads: usize,
    /// Per color: subdomain ids, heaviest first.
    order: Vec<Vec<u32>>,
    /// Per color: predicted load per thread bin under LPT packing.
    loads: Vec<Vec<f64>>,
}

impl ColorSchedule {
    /// Builds the LPT schedule for `decomp` from per-subdomain costs
    /// (indexed by global subdomain id; typically
    /// [`SdcPlan::pair_counts`] as `f64`).
    ///
    /// # Panics
    /// Panics if `costs` is shorter than the subdomain count.
    pub fn lpt(decomp: &ColoredDecomposition, costs: &[f64], threads: usize) -> ColorSchedule {
        assert!(
            costs.len() >= decomp.subdomain_count(),
            "need one cost per subdomain: {} < {}",
            costs.len(),
            decomp.subdomain_count()
        );
        let threads = threads.max(1);
        let mut order = Vec::with_capacity(decomp.color_count());
        let mut loads = Vec::with_capacity(decomp.color_count());
        for color in 0..decomp.color_count() {
            let ids = lpt_order(decomp.of_color(color), costs);
            loads.push(packed_loads(&ids, costs, threads));
            order.push(ids);
        }
        ColorSchedule { threads, order, loads }
    }

    /// Thread-bin count the schedule was packed for.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of colors.
    #[inline]
    pub fn color_count(&self) -> usize {
        self.order.len()
    }

    /// The subdomains of `color` in execution (LPT) order.
    #[inline]
    pub fn order_of(&self, color: usize) -> &[u32] {
        &self.order[color]
    }

    /// Predicted makespan of one color in cost units: the heaviest thread
    /// bin (the barrier waits for it).
    pub fn color_makespan_units(&self, color: usize) -> f64 {
        self.loads[color].iter().cloned().fold(0.0f64, f64::max)
    }

    /// Predicted per-sweep makespan in cost units: colors run serially, so
    /// the per-color maxima add.
    pub fn makespan_units(&self) -> f64 {
        (0..self.color_count())
            .map(|c| self.color_makespan_units(c))
            .sum()
    }

    /// Worst-color thread-aware imbalance factor (`max bin / mean bin`,
    /// ≥ 1.0).
    pub fn imbalance(&self) -> f64 {
        self.loads
            .iter()
            .map(|l| imbalance_of(l))
            .fold(1.0f64, f64::max)
    }

    /// Predicted wall seconds per step:
    /// `sweeps · Σ_colors (max-thread-bin · task + barrier)`.
    pub fn predicted_seconds(&self, p: &MakespanParams) -> f64 {
        let per_sweep: f64 = (0..self.color_count())
            .map(|c| self.color_makespan_units(c) * p.task_unit_seconds + p.barrier_seconds)
            .sum();
        p.sweeps * per_sweep
    }
}

/// The decomposition the plan search settled on, with its predicted score —
/// recorded in run reports so a plan choice is auditable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChoice {
    /// Decomposed axes of the winning plan.
    pub dims: usize,
    /// Per-axis cap that produced it (`None` = the paper's maximal split).
    pub max_per_axis: Option<usize>,
    /// Resulting subdomain counts per axis.
    pub counts: [usize; 3],
    /// Predicted wall seconds per step under the LPT schedule.
    pub predicted_seconds: f64,
    /// Predicted thread-aware imbalance (worst color, `max/mean` bin).
    pub predicted_imbalance: f64,
}

/// A plan search result: the winning [`SdcPlan`] with its LPT schedule
/// attached, plus the [`PlanChoice`] describing it.
#[derive(Debug, Clone)]
pub struct BalancedPlan {
    /// The winning plan; [`SdcPlan::ordered_of_color`] follows the schedule.
    pub plan: SdcPlan,
    /// What was chosen and what the model predicts for it.
    pub choice: PlanChoice,
}

/// Per-axis cap candidates for a maximal count of `m`: the uncapped plan
/// plus a geometric ladder of even caps below it (2, 4, 8, …). Coarser
/// splits trade parallelism for fewer barriers — exactly the trade the
/// makespan model arbitrates.
fn cap_candidates(m: usize) -> Vec<Option<usize>> {
    let mut caps = vec![None];
    let mut c = 2usize;
    while c < m {
        caps.push(Some(c));
        c *= 2;
    }
    caps
}

/// Searches decompositions over `dims_options` × per-axis caps, scoring each
/// feasible candidate by [`ColorSchedule::predicted_seconds`] and returning
/// the minimizer (first-seen wins ties, so the search is deterministic).
///
/// Candidates keep the paper's constraints by construction — they are built
/// through [`ColoredDecomposition::new`], which enforces even counts and the
/// ≥ 2·range subdomain edge. Costs are the half-list pair counts of the
/// candidate's own atom binning, so a denser region prices every plan that
/// fails to split it.
///
/// Errors with the last [`DecompositionError`] only when *no* candidate is
/// feasible.
pub fn search_plans(
    sim_box: &SimBox,
    positions: &[Vec3],
    half: &Csr,
    range: f64,
    dims_options: &[usize],
    threads: usize,
    params: &MakespanParams,
) -> Result<BalancedPlan, DecompositionError> {
    let mut best: Option<BalancedPlan> = None;
    let mut last_err = DecompositionError::BadDims(0);
    for &dims in dims_options {
        // The uncapped decomposition bounds the cap ladder for this dims.
        let max_counts = match ColoredDecomposition::new(sim_box, DecompositionConfig::new(dims, range)) {
            Ok(d) => d.counts(),
            Err(e) => {
                last_err = e;
                continue;
            }
        };
        let m = (0..dims).map(|d| max_counts[d]).max().unwrap_or(2);
        for cap in cap_candidates(m) {
            let config = DecompositionConfig { dims, range, max_per_axis: cap };
            let Ok(mut plan) = SdcPlan::build(sim_box, positions, config) else {
                continue; // a cap below feasibility on some axis
            };
            let costs: Vec<f64> = plan.pair_counts(half).iter().map(|&c| c as f64).collect();
            let schedule = ColorSchedule::lpt(plan.decomposition(), &costs, threads);
            let predicted = schedule.predicted_seconds(params);
            if best
                .as_ref()
                .is_none_or(|b| predicted < b.choice.predicted_seconds)
            {
                let choice = PlanChoice {
                    dims,
                    max_per_axis: cap,
                    counts: plan.decomposition().counts(),
                    predicted_seconds: predicted,
                    predicted_imbalance: schedule.imbalance(),
                };
                plan.set_schedule(schedule);
                best = Some(BalancedPlan { plan, choice });
            }
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_geometry::LatticeSpec;
    use md_neighbor::{NeighborList, VerletConfig};

    const CUTOFF: f64 = 5.67;
    const SKIN: f64 = 0.3;
    const RANGE: f64 = CUTOFF + SKIN;

    #[test]
    fn lpt_order_is_descending_with_stable_ties() {
        let costs = [5.0, 9.0, 1.0, 9.0];
        assert_eq!(lpt_order(&[0, 1, 2, 3], &costs), vec![1, 3, 0, 2]);
        // Subsets keep their own order.
        assert_eq!(lpt_order(&[2, 0], &costs), vec![0, 2]);
    }

    #[test]
    fn lpt_packing_beats_in_order_chunking_on_skewed_costs() {
        // One giant task first would pin a whole chunk; LPT spreads it.
        let costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let ids: Vec<u32> = (0..8).collect();
        let ordered = lpt_order(&ids, &costs);
        let lpt = packed_loads(&ordered, &costs, 2);
        let chunked = chunked_loads(&ids, &costs, 2);
        let max = |l: &[f64]| l.iter().cloned().fold(0.0f64, f64::max);
        // In-order: [10+1+1+1, 1+1+1+1] = [13, 4]; LPT: [10, 7].
        assert_eq!(max(&chunked), 13.0);
        assert_eq!(max(&lpt), 10.0);
        assert!(imbalance_of(&lpt) < imbalance_of(&chunked));
    }

    #[test]
    fn packing_degenerate_inputs() {
        assert_eq!(imbalance_of(&[]), 1.0);
        assert_eq!(imbalance_of(&[0.0, 0.0]), 1.0);
        assert_eq!(packed_loads(&[], &[], 4), vec![0.0; 4]);
        // One bin: everything lands in it, imbalance is exactly 1.
        let loads = packed_loads(&[0, 1], &[3.0, 4.0], 1);
        assert_eq!(loads, vec![7.0]);
        assert_eq!(imbalance_of(&loads), 1.0);
        // Bins never exceed the task list under chunking either.
        assert_eq!(chunked_loads(&[0], &[2.0], 4), vec![2.0, 0.0, 0.0, 0.0]);
    }

    fn fe_plan(cells: usize, dims: usize) -> (SimBox, Vec<Vec3>, NeighborList, SdcPlan) {
        let (bx, pos) = LatticeSpec::bcc_fe(cells).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let plan = SdcPlan::build(&bx, &pos, DecompositionConfig::new(dims, RANGE)).unwrap();
        (bx, pos, nl, plan)
    }

    #[test]
    fn color_schedule_is_a_permutation_of_each_color() {
        let (_, _, nl, plan) = fe_plan(17, 2);
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        let decomp = plan.decomposition();
        let s = ColorSchedule::lpt(decomp, &costs, 3);
        assert_eq!(s.color_count(), decomp.color_count());
        assert_eq!(s.threads(), 3);
        for color in 0..decomp.color_count() {
            let mut expect: Vec<u32> = decomp.of_color(color).to_vec();
            let mut got: Vec<u32> = s.order_of(color).to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "color {color} not a permutation");
            // Execution order is genuinely descending in cost.
            let o = s.order_of(color);
            for w in o.windows(2) {
                assert!(
                    costs[w[0] as usize] >= costs[w[1] as usize],
                    "color {color}: not LPT-ordered"
                );
            }
        }
        // Makespan bookkeeping: per-color maxima add up.
        let sum: f64 = (0..s.color_count()).map(|c| s.color_makespan_units(c)).sum();
        assert_eq!(sum, s.makespan_units());
        assert!(s.imbalance() >= 1.0);
        // Units params give back plain work units.
        assert!((s.predicted_seconds(&MakespanParams::units()) - s.makespan_units()).abs() < 1e-9);
    }

    #[test]
    fn single_thread_schedule_has_no_imbalance() {
        let (_, _, nl, plan) = fe_plan(17, 2);
        let costs: Vec<f64> = plan.pair_counts(nl.csr()).iter().map(|&c| c as f64).collect();
        let s = ColorSchedule::lpt(plan.decomposition(), &costs, 1);
        assert_eq!(s.imbalance(), 1.0, "one bin can never be imbalanced");
    }

    #[test]
    fn cap_ladder_is_even_and_bounded() {
        assert_eq!(cap_candidates(2), vec![None]);
        assert_eq!(cap_candidates(4), vec![None, Some(2)]);
        assert_eq!(cap_candidates(12), vec![None, Some(2), Some(4), Some(8)]);
    }

    #[test]
    fn search_prefers_fewer_barriers_when_parallelism_cannot_help() {
        // bcc_fe(9): 2 subdomains per axis at most — one task per color in
        // every dims, so extra colors only add barriers. The search must
        // pick 1-D.
        let (bx, pos) = LatticeSpec::bcc_fe(9).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let params = MakespanParams {
            task_unit_seconds: 60e-9,
            barrier_seconds: 4e-6,
            sweeps: 2.0,
        };
        let best = search_plans(&bx, &pos, nl.csr(), RANGE, &[1, 2, 3], 2, &params).unwrap();
        assert_eq!(best.choice.dims, 1);
        assert!(best.choice.predicted_seconds > 0.0);
        assert!(best.plan.schedule().is_some(), "winner carries its schedule");
    }

    #[test]
    fn search_scales_dims_up_when_threads_demand_parallelism() {
        // bcc_fe(17): 4 subdomains per axis. At 8 threads, 1-D SDC offers
        // only 2 tasks per color — the model must prefer a deeper split.
        let (bx, pos) = LatticeSpec::bcc_fe(17).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let params = MakespanParams {
            task_unit_seconds: 60e-9,
            barrier_seconds: 4e-6,
            sweeps: 2.0,
        };
        let best = search_plans(&bx, &pos, nl.csr(), RANGE, &[1, 2, 3], 8, &params).unwrap();
        assert!(best.choice.dims >= 2, "picked {:?}", best.choice);
        // The choice reports the real resulting geometry.
        assert_eq!(best.choice.counts, best.plan.decomposition().counts());
    }

    #[test]
    fn search_with_no_feasible_dims_reports_the_error() {
        let (bx, pos) = LatticeSpec::bcc_fe(6).build();
        let nl = NeighborList::build(&bx, &pos, VerletConfig::half(CUTOFF, SKIN));
        let err = search_plans(
            &bx,
            &pos,
            nl.csr(),
            RANGE,
            &[1, 2, 3],
            2,
            &MakespanParams::units(),
        )
        .unwrap_err();
        assert!(matches!(err, DecompositionError::AxisTooSmall { .. }));
    }
}
