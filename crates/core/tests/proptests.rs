//! Property-based tests: every strategy computes the same reduction on
//! arbitrary random graphs with exactly-representable contributions, so
//! equality is bitwise regardless of summation order.

use md_neighbor::Csr;
use proptest::prelude::*;
use sdc_core::{PairTerm, ParallelContext, ScatterExec, StrategyKind};

/// Builds a half adjacency (i < j) from arbitrary pairs.
fn half_graph(n: usize, raw: &[(u32, u32)]) -> Csr {
    let mut pairs: Vec<(u32, u32)> = raw
        .iter()
        .filter(|(a, b)| a != b)
        .map(|&(a, b)| {
            let (a, b) = (a % n as u32, b % n as u32);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .filter(|(a, b)| a != b)
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut csr = Csr::from_pairs(n, &pairs);
    csr.sort_rows();
    csr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn non_sdc_strategies_agree_bitwise_on_random_graphs(
        raw in proptest::collection::vec((0u32..48, 0u32..48), 0..200),
        threads in 1usize..5,
    ) {
        let n = 48;
        let half = half_graph(n, &raw);
        let full = half.symmetrized();
        // Contributions are small integers scaled by powers of two: exact
        // under any summation order, so equality must be bitwise. The
        // function is symmetric in (i, j), as the Redundant gather requires.
        let kernel = |i: usize, j: usize| {
            Some(PairTerm::symmetric(
                ((i + j) * 7 % 32) as f64 * 0.125 + (i * j % 8) as f64 * 0.25,
            ))
        };
        let mut reference = vec![0.0f64; n];
        sdc_core::strategies::serial::scatter_serial(&half, &mut reference, &kernel);
        let ctx = ParallelContext::new(threads);
        for kind in [
            StrategyKind::Critical,
            StrategyKind::Atomic,
            StrategyKind::Locks,
            StrategyKind::Privatized,
            StrategyKind::Redundant,
        ] {
            let exec = ScatterExec {
                ctx: &ctx,
                half: &half,
                full: Some(&full),
                plan: None,
                localwrite: None,
                metrics: None,
                sap: None,
                taskgraph: None,
            };
            let mut out = vec![0.0f64; n];
            exec.run(kind, &mut out, &kernel);
            prop_assert_eq!(&out, &reference, "{} with {} threads", kind, threads);
        }
    }

    #[test]
    fn redundant_gather_equals_scatter_for_antisymmetric_kernels(
        raw in proptest::collection::vec((0u32..32, 0u32..32), 0..120),
    ) {
        let n = 32;
        let half = half_graph(n, &raw);
        let full = half.symmetrized();
        // Antisymmetric (force-like) kernel with exact values.
        let kernel = |i: usize, j: usize| {
            let v = ((i % 8) as f64 - (j % 8) as f64) * 0.25;
            Some(PairTerm { to_i: v, to_j: -v })
        };
        let mut scatter = vec![0.0f64; n];
        sdc_core::strategies::serial::scatter_serial(&half, &mut scatter, &kernel);
        let ctx = ParallelContext::new(3);
        let exec = ScatterExec {
            ctx: &ctx,
            half: &half,
            full: Some(&full),
            plan: None,
            localwrite: None,
            metrics: None,
            sap: None,
            taskgraph: None,
        };
        let mut gather = vec![0.0f64; n];
        exec.run(StrategyKind::Redundant, &mut gather, &kernel);
        prop_assert_eq!(&gather, &scatter);
        // Newton: total momentum transfer sums to zero exactly.
        let net: f64 = scatter.iter().sum();
        prop_assert_eq!(net, 0.0);
    }
}
