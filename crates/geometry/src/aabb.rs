//! Axis-aligned boxes (AABBs).
//!
//! Subdomains produced by the spatial decomposition (paper §II.B step 1) are
//! axis-aligned boxes inside the simulation box. The coloring safety argument
//! — that same-color subdomains expanded by the cutoff halo `r_c` remain
//! disjoint — is a statement about AABB intersection under periodic wrap, so
//! this module also provides halo expansion and periodic-overlap tests used by
//! `sdc-core`'s validation layer.

use crate::{SimBox, Vec3};

/// A half-open axis-aligned box `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Inclusive lower corner.
    pub lo: Vec3,
    /// Exclusive upper corner.
    pub hi: Vec3,
}

impl Aabb {
    /// Creates an AABB from corners.
    ///
    /// # Panics
    /// Panics if `lo[d] > hi[d]` for any axis.
    pub fn new(lo: Vec3, hi: Vec3) -> Aabb {
        assert!(
            lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z,
            "invalid AABB corners lo={lo} hi={hi}"
        );
        Aabb { lo, hi }
    }

    /// The AABB covering an entire simulation box.
    pub fn of_box(b: &SimBox) -> Aabb {
        Aabb::new(Vec3::ZERO, b.lengths())
    }

    /// Edge lengths.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.hi - self.lo
    }

    /// Volume of the box.
    #[inline]
    pub fn volume(&self) -> f64 {
        let e = self.extent();
        e.x * e.y * e.z
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.lo + self.hi) * 0.5
    }

    /// `true` if the point lies inside the half-open box.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.lo.x
            && p.x < self.hi.x
            && p.y >= self.lo.y
            && p.y < self.hi.y
            && p.z >= self.lo.z
            && p.z < self.hi.z
    }

    /// Grows the box by `margin` on every face (the `r_c` halo of a
    /// subdomain — the paper's "neighbor region", Fig. 3).
    pub fn expanded(&self, margin: f64) -> Aabb {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        Aabb {
            lo: self.lo - Vec3::splat(margin),
            hi: self.hi + Vec3::splat(margin),
        }
    }

    /// Non-periodic open-interval overlap test (shared boundary does not
    /// count as overlap, matching the half-open atom ownership convention).
    pub fn intersects(&self, other: &Aabb) -> bool {
        (0..3).all(|d| self.lo[d] < other.hi[d] && other.lo[d] < self.hi[d])
    }

    /// Overlap test under periodic boundary conditions: do any periodic
    /// images of `other` intersect `self`?
    ///
    /// Both boxes must be subsets of the primary image of `sim_box` *before*
    /// halo expansion; halos may stick out, which is exactly why the periodic
    /// images (shift ∈ {-L, 0, +L} per periodic axis) must be checked.
    pub fn intersects_periodic(&self, other: &Aabb, sim_box: &SimBox) -> bool {
        let l = sim_box.lengths();
        let shifts = |d: usize| -> &'static [f64] {
            if sim_box.periodicity()[d] {
                &[-1.0, 0.0, 1.0]
            } else {
                &[0.0]
            }
        };
        for &sx in shifts(0) {
            for &sy in shifts(1) {
                for &sz in shifts(2) {
                    let shift = Vec3::new(sx * l.x, sy * l.y, sz * l.z);
                    let shifted = Aabb {
                        lo: other.lo + shift,
                        hi: other.hi + shift,
                    };
                    if self.intersects(&shifted) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Minimum separation between the two boxes along each axis under the
    /// minimum-image convention (0 where they overlap in projection).
    pub fn periodic_gap(&self, other: &Aabb, sim_box: &SimBox) -> Vec3 {
        let l = sim_box.lengths();
        let mut gap = Vec3::ZERO;
        for d in 0..3 {
            let mut best = f64::INFINITY;
            let shifts: &[f64] = if sim_box.periodicity()[d] { &[-1.0, 0.0, 1.0] } else { &[0.0] };
            for &s in shifts {
                let olo = other.lo[d] + s * l[d];
                let ohi = other.hi[d] + s * l[d];
                // 1-D gap between [lo,hi) intervals; 0 if overlapping.
                let g = if ohi <= self.lo[d] {
                    self.lo[d] - ohi
                } else if self.hi[d] <= olo {
                    olo - self.hi[d]
                } else {
                    0.0
                };
                best = best.min(g);
            }
            gap[d] = best;
        }
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb(lo: [f64; 3], hi: [f64; 3]) -> Aabb {
        Aabb::new(Vec3::from(lo), Vec3::from(hi))
    }

    #[test]
    fn contains_is_half_open() {
        let b = bb([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]);
        assert!(b.contains(Vec3::ZERO));
        assert!(!b.contains(Vec3::ONE));
        assert!(b.contains(Vec3::new(0.999, 0.5, 0.0)));
        assert!(!b.contains(Vec3::new(1.0, 0.5, 0.5)));
    }

    #[test]
    fn volume_extent_center() {
        let b = bb([1.0, 1.0, 1.0], [3.0, 5.0, 2.0]);
        assert_eq!(b.extent(), Vec3::new(2.0, 4.0, 1.0));
        assert_eq!(b.volume(), 8.0);
        assert_eq!(b.center(), Vec3::new(2.0, 3.0, 1.5));
    }

    #[test]
    fn expansion_grows_every_face() {
        let b = bb([2.0, 2.0, 2.0], [4.0, 4.0, 4.0]).expanded(0.5);
        assert_eq!(b.lo, Vec3::splat(1.5));
        assert_eq!(b.hi, Vec3::splat(4.5));
    }

    #[test]
    fn non_periodic_intersection() {
        let a = bb([0.0, 0.0, 0.0], [2.0, 2.0, 2.0]);
        let c = bb([1.9, 0.0, 0.0], [3.0, 1.0, 1.0]);
        let d = bb([2.0, 0.0, 0.0], [3.0, 1.0, 1.0]); // touching faces only
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
        assert!(c.intersects(&a), "intersection must be symmetric");
    }

    #[test]
    fn periodic_intersection_across_boundary() {
        let sim = SimBox::cubic(10.0);
        // Halo of a subdomain at the right edge sticks past x = 10 and must
        // hit a subdomain at the left edge.
        let right = bb([8.0, 0.0, 0.0], [10.0, 10.0, 10.0]).expanded(0.5);
        let left = bb([0.0, 0.0, 0.0], [2.0, 10.0, 10.0]);
        assert!(right.intersects_periodic(&left, &sim));
        // Without periodicity they do not intersect.
        let open = SimBox::with_periodicity(Vec3::splat(10.0), [false; 3]);
        assert!(!right.intersects_periodic(&left, &open));
    }

    #[test]
    fn periodic_gap_wraps() {
        let sim = SimBox::cubic(10.0);
        let a = bb([0.0, 0.0, 0.0], [1.0, 10.0, 10.0]);
        let b2 = bb([9.0, 0.0, 0.0], [10.0, 10.0, 10.0]);
        let g = a.periodic_gap(&b2, &sim);
        assert_eq!(g.x, 0.0, "adjacent across the boundary");
        let c = bb([5.0, 0.0, 0.0], [6.0, 10.0, 10.0]);
        let g2 = a.periodic_gap(&c, &sim);
        assert_eq!(g2.x, 4.0);
    }

    #[test]
    fn of_box_covers_everything() {
        let sim = SimBox::periodic(Vec3::new(3.0, 4.0, 5.0));
        let b = Aabb::of_box(&sim);
        assert_eq!(b.volume(), 60.0);
        assert!(b.contains(Vec3::new(2.9, 3.9, 4.9)));
    }

    #[test]
    #[should_panic(expected = "invalid AABB")]
    fn inverted_corners_panic() {
        let _ = bb([1.0, 0.0, 0.0], [0.0, 1.0, 1.0]);
    }
}
