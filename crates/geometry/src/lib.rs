//! # md-geometry
//!
//! Geometric substrate for molecular dynamics simulations: 3-D vectors,
//! orthorhombic periodic simulation boxes, crystal lattice generators and
//! axis-aligned regions.
//!
//! This crate is the foundation of the `sdc-md` workspace, the Rust
//! reproduction of *"Efficient Parallel Implementation of Molecular Dynamics
//! with Embedded Atom Method on Multi-core Platforms"* (Hu, Liu & Li,
//! ICPP 2009). The paper's experiments simulate pure BCC iron under periodic
//! boundary conditions; everything those experiments need geometrically lives
//! here:
//!
//! * [`Vec3`] — a plain-old-data 3-D vector with the usual arithmetic.
//! * [`SimBox`] — an orthorhombic periodic box with wrapping and
//!   minimum-image convention.
//! * [`lattice`] — BCC / FCC / SC crystal builders, including the exact
//!   test-case sizes of the paper (54,000 … 3,456,000 atoms).
//! * [`Aabb`] — axis-aligned boxes used by the spatial decomposition.
//!
//! The crate is dependency-free and `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod lattice;
pub mod simbox;
pub mod vec3;

pub use aabb::Aabb;
pub use lattice::{Lattice, LatticeSpec};
pub use simbox::SimBox;
pub use vec3::Vec3;

/// Spatial axes of the simulation domain.
///
/// Used throughout the workspace to select decomposition dimensions
/// (the paper's 1-D / 2-D / 3-D Spatial Decomposition Coloring variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The x axis (index 0).
    X,
    /// The y axis (index 1).
    Y,
    /// The z axis (index 2).
    Z,
}

impl Axis {
    /// All three axes in index order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Numeric index of the axis (`X = 0`, `Y = 1`, `Z = 2`).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Axis from its numeric index.
    ///
    /// # Panics
    /// Panics if `i > 2`.
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_round_trips_through_index() {
        for (i, ax) in Axis::ALL.iter().enumerate() {
            assert_eq!(ax.index(), i);
            assert_eq!(Axis::from_index(i), *ax);
        }
    }

    #[test]
    #[should_panic(expected = "axis index out of range")]
    fn axis_from_bad_index_panics() {
        let _ = Axis::from_index(3);
    }
}
