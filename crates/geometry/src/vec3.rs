//! A minimal, allocation-free 3-D vector of `f64` components.
//!
//! `Vec3` is deliberately plain: `Copy`, `repr(C)` and free of any SIMD or
//! generic machinery, so that a `&[Vec3]` slice is exactly the
//! structure-of-arrays-friendly `[x, y, z, x, y, z, …]` memory layout the
//! force kernels stream over. The compiler auto-vectorizes the hot loops
//! without any help.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-D vector with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Squared Euclidean norm. Cheaper than [`Vec3::norm`]; prefer it in
    /// cutoff tests (`r² < r_c²`), which is how every kernel in this
    /// workspace uses it.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the direction of `self`.
    ///
    /// Returns [`Vec3::ZERO`] for the zero vector instead of producing NaNs,
    /// which is the convenient convention for force directions between
    /// coincident points.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise product (Hadamard product).
    #[inline]
    pub fn mul_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Component-wise quotient.
    #[inline]
    pub fn div_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x / rhs.x, self.y / rhs.y, self.z / rhs.z)
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max_elem(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// `self + t * (rhs - self)`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f64) -> Vec3 {
        self + (rhs - self) * t
    }

    /// The vector as a `[f64; 3]` array (x, y, z).
    #[inline]
    pub const fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from a `[f64; 3]` array (x, y, z).
    #[inline]
    pub const fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// `true` if every component is finite (no NaN / ±inf).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Squared distance to another point.
    #[inline]
    pub fn distance_sq(self, rhs: Vec3) -> f64 {
        (self - rhs).norm_sq()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        self.distance_sq(rhs).sqrt()
    }

    /// Absolute value of each component.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        self.x += rhs.x;
        self.y += rhs.y;
        self.z += rhs.z;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        self.x -= rhs.x;
        self.y -= rhs.y;
        self.z -= rhs.z;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        self.x *= s;
        self.y *= s;
        self.z *= s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        self.x /= s;
        self.y /= s;
        self.z /= s;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Vec3> for Vec3 {
    fn sum<I: Iterator<Item = &'a Vec3>>(iter: I) -> Vec3 {
        iter.copied().sum()
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> [f64; 3] {
        v.to_array()
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3::new(x, y, z)
    }

    #[test]
    fn arithmetic_identities() {
        let a = v(1.0, -2.0, 3.0);
        let b = v(0.5, 4.0, -1.0);
        assert_eq!(a + b, v(1.5, 2.0, 2.0));
        assert_eq!(a - b, v(0.5, -6.0, 4.0));
        assert_eq!(a * 2.0, v(2.0, -4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, v(0.5, -1.0, 1.5));
        assert_eq!(-a, v(-1.0, 2.0, -3.0));
        assert_eq!(a + Vec3::ZERO, a);
    }

    #[test]
    fn compound_assignment() {
        let mut a = v(1.0, 2.0, 3.0);
        a += v(1.0, 1.0, 1.0);
        assert_eq!(a, v(2.0, 3.0, 4.0));
        a -= v(2.0, 2.0, 2.0);
        assert_eq!(a, v(0.0, 1.0, 2.0));
        a *= 3.0;
        assert_eq!(a, v(0.0, 3.0, 6.0));
        a /= 3.0;
        assert_eq!(a, v(0.0, 1.0, 2.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = v(1.0, 0.0, 0.0);
        let y = v(0.0, 1.0, 0.0);
        let z = v(0.0, 0.0, 1.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        // anti-commutativity
        assert_eq!(x.cross(y), -(y.cross(x)));
        // cross product orthogonal to both operands
        let a = v(1.2, -0.7, 2.9);
        let b = v(-3.1, 0.4, 0.8);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let a = v(3.0, 4.0, 0.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.norm(), 5.0);
        let u = a.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn elementwise_ops() {
        let a = v(1.0, 2.0, 3.0);
        let b = v(4.0, 0.5, -1.0);
        assert_eq!(a.mul_elem(b), v(4.0, 1.0, -3.0));
        assert_eq!(a.div_elem(v(2.0, 2.0, 2.0)), v(0.5, 1.0, 1.5));
        assert_eq!(a.min_elem(b), v(1.0, 0.5, -1.0));
        assert_eq!(a.max_elem(b), v(4.0, 2.0, 3.0));
        assert_eq!(b.min_component(), -1.0);
        assert_eq!(b.max_component(), 4.0);
        assert_eq!(b.abs(), v(4.0, 0.5, 1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = v(0.0, 0.0, 0.0);
        let b = v(2.0, 4.0, -6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), v(1.0, 2.0, -3.0));
    }

    #[test]
    fn indexing() {
        let mut a = v(1.0, 2.0, 3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert_eq!(a[2], 3.0);
        a[1] = 9.0;
        assert_eq!(a.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = v(0.0, 0.0, 0.0)[3];
    }

    #[test]
    fn array_round_trip() {
        let a = v(1.0, 2.0, 3.0);
        let arr: [f64; 3] = a.into();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from(arr), a);
    }

    #[test]
    fn sum_over_iterator() {
        let pts = [v(1.0, 0.0, 0.0), v(0.0, 2.0, 0.0), v(0.0, 0.0, 3.0)];
        let s: Vec3 = pts.iter().sum();
        assert_eq!(s, v(1.0, 2.0, 3.0));
        let s2: Vec3 = pts.into_iter().sum();
        assert_eq!(s2, s);
    }

    #[test]
    fn finiteness() {
        assert!(v(1.0, 2.0, 3.0).is_finite());
        assert!(!v(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!v(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn distances() {
        let a = v(1.0, 1.0, 1.0);
        let b = v(4.0, 5.0, 1.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn memory_layout_is_three_packed_f64() {
        assert_eq!(std::mem::size_of::<Vec3>(), 24);
        assert_eq!(std::mem::align_of::<Vec3>(), 8);
    }
}
