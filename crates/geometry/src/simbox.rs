//! Orthorhombic periodic simulation box.
//!
//! The paper's experiments simulate BCC iron "under periodic boundary
//! conditions" (§III.B). All short-range MD machinery in this workspace
//! assumes an orthorhombic (axis-aligned, right-angled) box, which is what
//! both XMD and the paper use. The box provides the two operations every MD
//! kernel needs:
//!
//! * **wrapping** a position back into the primary image, and
//! * the **minimum-image** displacement between two positions.
//!
//! The minimum-image convention is only valid when every box edge exceeds
//! twice the interaction cutoff; [`SimBox::validate_cutoff`] checks this and
//! the neighbor/decomposition layers enforce it.

use crate::{Axis, Vec3};

/// An orthorhombic periodic simulation box `[0, L_x) × [0, L_y) × [0, L_z)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBox {
    lengths: Vec3,
    periodic: [bool; 3],
}

impl SimBox {
    /// Creates a fully periodic box with the given edge lengths.
    ///
    /// # Panics
    /// Panics if any length is not strictly positive and finite.
    pub fn periodic(lengths: Vec3) -> SimBox {
        SimBox::with_periodicity(lengths, [true; 3])
    }

    /// Creates a cubic, fully periodic box with edge `l`.
    pub fn cubic(l: f64) -> SimBox {
        SimBox::periodic(Vec3::splat(l))
    }

    /// Creates a box with per-axis periodicity flags.
    ///
    /// Non-periodic axes neither wrap nor contribute image shifts; they are
    /// used for slab/surface setups in the examples.
    ///
    /// # Panics
    /// Panics if any length is not strictly positive and finite.
    pub fn with_periodicity(lengths: Vec3, periodic: [bool; 3]) -> SimBox {
        assert!(
            lengths.x > 0.0 && lengths.y > 0.0 && lengths.z > 0.0 && lengths.is_finite(),
            "box lengths must be positive and finite, got {lengths}"
        );
        SimBox { lengths, periodic }
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn lengths(&self) -> Vec3 {
        self.lengths
    }

    /// Length along a single axis.
    #[inline]
    pub fn length(&self, axis: Axis) -> f64 {
        self.lengths[axis.index()]
    }

    /// Per-axis periodicity flags.
    #[inline]
    pub fn periodicity(&self) -> [bool; 3] {
        self.periodic
    }

    /// `true` if the box is periodic along `axis`.
    #[inline]
    pub fn is_periodic(&self, axis: Axis) -> bool {
        self.periodic[axis.index()]
    }

    /// Box volume.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Wraps a position into the primary image `[0, L)` along each periodic
    /// axis. Non-periodic axes are left untouched.
    #[inline]
    pub fn wrap(&self, mut p: Vec3) -> Vec3 {
        for d in 0..3 {
            if self.periodic[d] {
                let l = self.lengths[d];
                // `rem_euclid` is exact for the common "one box over" case and
                // robust for arbitrarily distant images.
                p[d] = p[d].rem_euclid(l);
                // rem_euclid may return exactly `l` when p is a tiny negative
                // number; fold that back to 0 to keep the half-open invariant.
                if p[d] >= l {
                    p[d] = 0.0;
                }
            }
        }
        p
    }

    /// Minimum-image displacement `a - b`.
    ///
    /// Valid when both points lie within one box length of the primary image
    /// and every periodic edge is at least twice the interaction cutoff.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = a - b;
        for k in 0..3 {
            if self.periodic[k] {
                let l = self.lengths[k];
                if d[k] > 0.5 * l {
                    d[k] -= l;
                } else if d[k] < -0.5 * l {
                    d[k] += l;
                }
            }
        }
        d
    }

    /// Minimum-image squared distance between two points.
    #[inline]
    pub fn distance_sq(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm_sq()
    }

    /// Checks the minimum-image validity requirement for an interaction
    /// cutoff `rc`: every periodic edge must satisfy `L ≥ 2·rc`.
    pub fn validate_cutoff(&self, rc: f64) -> Result<(), BoxError> {
        assert!(rc > 0.0 && rc.is_finite(), "cutoff must be positive, got {rc}");
        for ax in Axis::ALL {
            if self.is_periodic(ax) && self.length(ax) < 2.0 * rc {
                return Err(BoxError::CutoffTooLarge {
                    axis: ax,
                    length: self.length(ax),
                    rc,
                });
            }
        }
        Ok(())
    }

    /// Returns a new box scaled by `factors` along each axis, together with
    /// the affine map to apply to atom positions. Used by the
    /// micro-deformation driver (the paper's workload is "micro-deformation
    /// behaviors of the pure Fe metals material", §III.B).
    pub fn scaled(&self, factors: Vec3) -> SimBox {
        assert!(
            factors.x > 0.0 && factors.y > 0.0 && factors.z > 0.0,
            "scale factors must be positive, got {factors}"
        );
        SimBox {
            lengths: self.lengths.mul_elem(factors),
            periodic: self.periodic,
        }
    }

    /// Maps a position from this box to the equivalent fractional position
    /// in `[0,1)³` (positions outside the primary image map outside `[0,1)`).
    #[inline]
    pub fn to_fractional(&self, p: Vec3) -> Vec3 {
        p.div_elem(self.lengths)
    }

    /// Maps fractional coordinates back to Cartesian.
    #[inline]
    pub fn from_fractional(&self, f: Vec3) -> Vec3 {
        f.mul_elem(self.lengths)
    }
}

/// Errors arising from box/cutoff geometry validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoxError {
    /// A periodic edge is shorter than `2 rc`, so the minimum-image
    /// convention (and the paper's `≥ 2 r_c` subdomain rule) cannot hold.
    CutoffTooLarge {
        /// Offending axis.
        axis: Axis,
        /// Edge length along that axis.
        length: f64,
        /// Requested cutoff.
        rc: f64,
    },
}

impl std::fmt::Display for BoxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoxError::CutoffTooLarge { axis, length, rc } => write!(
                f,
                "periodic box edge along {axis:?} is {length} but must be ≥ 2·rc = {}",
                2.0 * rc
            ),
        }
    }
}

impl std::error::Error for BoxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_puts_points_in_primary_image() {
        let b = SimBox::cubic(10.0);
        assert_eq!(b.wrap(Vec3::new(11.0, -1.0, 25.0)), Vec3::new(1.0, 9.0, 5.0));
        assert_eq!(b.wrap(Vec3::new(0.0, 10.0, 9.999)), Vec3::new(0.0, 0.0, 9.999));
    }

    #[test]
    fn wrap_handles_tiny_negative_values() {
        let b = SimBox::cubic(10.0);
        let p = b.wrap(Vec3::new(-1e-18, 0.0, 0.0));
        assert!(p.x >= 0.0 && p.x < 10.0, "wrapped x = {}", p.x);
    }

    #[test]
    fn wrap_respects_non_periodic_axes() {
        let b = SimBox::with_periodicity(Vec3::splat(10.0), [true, false, true]);
        let p = b.wrap(Vec3::new(12.0, 12.0, 12.0));
        assert_eq!(p, Vec3::new(2.0, 12.0, 2.0));
    }

    #[test]
    fn min_image_picks_nearest_copy() {
        let b = SimBox::cubic(10.0);
        let a = Vec3::new(9.5, 0.0, 0.0);
        let c = Vec3::new(0.5, 0.0, 0.0);
        let d = b.min_image(a, c);
        assert!((d.x - (-1.0)).abs() < 1e-12, "dx = {}", d.x);
        assert_eq!(b.distance_sq(a, c), 1.0);
    }

    #[test]
    fn min_image_is_antisymmetric() {
        let b = SimBox::periodic(Vec3::new(8.0, 12.0, 20.0));
        let a = Vec3::new(7.9, 11.0, 1.0);
        let c = Vec3::new(0.2, 0.5, 19.5);
        let dab = b.min_image(a, c);
        let dba = b.min_image(c, a);
        assert!((dab + dba).norm() < 1e-12);
    }

    #[test]
    fn min_image_non_periodic_axis_uses_raw_difference() {
        let b = SimBox::with_periodicity(Vec3::splat(10.0), [false, true, true]);
        let d = b.min_image(Vec3::new(9.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(d.x, 9.0);
    }

    #[test]
    fn volume_and_lengths() {
        let b = SimBox::periodic(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.length(Axis::Y), 3.0);
    }

    #[test]
    fn cutoff_validation() {
        let b = SimBox::cubic(10.0);
        assert!(b.validate_cutoff(4.9).is_ok());
        assert!(b.validate_cutoff(5.0).is_ok());
        let err = b.validate_cutoff(5.1).unwrap_err();
        match err {
            BoxError::CutoffTooLarge { rc, .. } => assert_eq!(rc, 5.1),
        }
        // error message formats
        assert!(err.to_string().contains("2·rc"));
    }

    #[test]
    fn cutoff_validation_skips_non_periodic_axes() {
        let b = SimBox::with_periodicity(Vec3::new(4.0, 100.0, 100.0), [false, true, true]);
        assert!(b.validate_cutoff(10.0).is_ok());
    }

    #[test]
    fn scaling_deforms_lengths() {
        let b = SimBox::periodic(Vec3::new(10.0, 10.0, 10.0));
        let s = b.scaled(Vec3::new(1.01, 1.0, 0.99));
        assert!((s.length(Axis::X) - 10.1).abs() < 1e-12);
        assert!((s.volume() - 10.1 * 10.0 * 9.9).abs() < 1e-9);
    }

    #[test]
    fn fractional_round_trip() {
        let b = SimBox::periodic(Vec3::new(2.0, 4.0, 8.0));
        let p = Vec3::new(1.0, 3.0, 6.0);
        let f = b.to_fractional(p);
        assert_eq!(f, Vec3::new(0.5, 0.75, 0.75));
        let q = b.from_fractional(f);
        assert!((q - p).norm() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_box_rejected() {
        let _ = SimBox::periodic(Vec3::new(0.0, 1.0, 1.0));
    }
}
