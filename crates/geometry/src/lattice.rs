//! Crystal lattice generators.
//!
//! The paper's four test cases are body-centered cubic (BCC) iron crystals
//! (§III.B): 54,000 / 265,302 / 1,062,882 / 3,456,000 atoms. BCC has two
//! atoms per conventional unit cell, so those counts correspond exactly to
//! 30³, 51³·2… — concretely `2·n³` with `n ∈ {30, 51, 81, 120}`. The
//! [`LatticeSpec::paper_case`] constructor reproduces them precisely.

use crate::{SimBox, Vec3};

/// Bravais lattice type (conventional cubic cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lattice {
    /// Simple cubic: 1 atom per cell at (0,0,0).
    Sc,
    /// Body-centered cubic: 2 atoms per cell. Ground state of iron.
    Bcc,
    /// Face-centered cubic: 4 atoms per cell.
    Fcc,
}

impl Lattice {
    /// Fractional basis positions within the conventional cubic cell.
    pub fn basis(self) -> &'static [Vec3] {
        match self {
            Lattice::Sc => &[Vec3 { x: 0.0, y: 0.0, z: 0.0 }],
            Lattice::Bcc => &[
                Vec3 { x: 0.0, y: 0.0, z: 0.0 },
                Vec3 { x: 0.5, y: 0.5, z: 0.5 },
            ],
            Lattice::Fcc => &[
                Vec3 { x: 0.0, y: 0.0, z: 0.0 },
                Vec3 { x: 0.5, y: 0.5, z: 0.0 },
                Vec3 { x: 0.5, y: 0.0, z: 0.5 },
                Vec3 { x: 0.0, y: 0.5, z: 0.5 },
            ],
        }
    }

    /// Atoms per conventional cell.
    #[inline]
    pub fn atoms_per_cell(self) -> usize {
        self.basis().len()
    }

    /// Nearest-neighbor distance for lattice constant `a`.
    pub fn nearest_neighbor_distance(self, a: f64) -> f64 {
        match self {
            Lattice::Sc => a,
            Lattice::Bcc => a * 3f64.sqrt() / 2.0,
            Lattice::Fcc => a * 2f64.sqrt() / 2.0,
        }
    }

    /// Number of nearest neighbors (coordination number).
    pub fn coordination(self) -> usize {
        match self {
            Lattice::Sc => 6,
            Lattice::Bcc => 8,
            Lattice::Fcc => 12,
        }
    }
}

/// A finite crystal: lattice type, lattice constant and cell counts per axis.
///
/// ```
/// use md_geometry::LatticeSpec;
///
/// // The paper's small test case: 30³ BCC cells of iron = 54,000 atoms.
/// let spec = LatticeSpec::paper_case(1);
/// assert_eq!(spec.atom_count(), 54_000);
/// let (sim_box, atoms) = LatticeSpec::bcc_fe(3).build();
/// assert_eq!(atoms.len(), 54);
/// assert!(sim_box.lengths().x > 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeSpec {
    /// Bravais lattice of the crystal.
    pub lattice: Lattice,
    /// Lattice constant `a` in Å.
    pub a: f64,
    /// Number of conventional cells along x, y, z.
    pub cells: [usize; 3],
}

/// Lattice constant of BCC iron in Å (α-iron at room temperature).
pub const FE_BCC_LATTICE_CONSTANT: f64 = 2.8665;

impl LatticeSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if `a ≤ 0` or any cell count is zero.
    pub fn new(lattice: Lattice, a: f64, cells: [usize; 3]) -> LatticeSpec {
        assert!(a > 0.0 && a.is_finite(), "lattice constant must be positive, got {a}");
        assert!(
            cells.iter().all(|&c| c > 0),
            "cell counts must be non-zero, got {cells:?}"
        );
        LatticeSpec { lattice, a, cells }
    }

    /// BCC iron with `n × n × n` conventional cells — the shape of all four
    /// test cases in the paper.
    pub fn bcc_fe(n: usize) -> LatticeSpec {
        LatticeSpec::new(Lattice::Bcc, FE_BCC_LATTICE_CONSTANT, [n, n, n])
    }

    /// The paper's four test cases (§III.B):
    ///
    /// | case | cells | atoms |
    /// |------|-------|-----------|
    /// | 1 (small)  | 30³  | 54,000 |
    /// | 2 (medium) | 51³  | 265,302 |
    /// | 3 (large)  | 81³  | 1,062,882 |
    /// | 4 (large)  | 120³ | 3,456,000 |
    ///
    /// # Panics
    /// Panics unless `case ∈ 1..=4`.
    pub fn paper_case(case: usize) -> LatticeSpec {
        let n = match case {
            1 => 30,
            2 => 51,
            3 => 81,
            4 => 120,
            _ => panic!("paper test case must be 1..=4, got {case}"),
        };
        LatticeSpec::bcc_fe(n)
    }

    /// Total number of atoms the spec generates.
    #[inline]
    pub fn atom_count(&self) -> usize {
        self.lattice.atoms_per_cell() * self.cells[0] * self.cells[1] * self.cells[2]
    }

    /// The periodic box that tiles this crystal exactly.
    pub fn sim_box(&self) -> SimBox {
        SimBox::periodic(Vec3::new(
            self.a * self.cells[0] as f64,
            self.a * self.cells[1] as f64,
            self.a * self.cells[2] as f64,
        ))
    }

    /// Generates atom positions in row-major cell order, basis-inner.
    ///
    /// Positions lie in `[0, L)` along each axis, so the crystal tiles the
    /// box returned by [`LatticeSpec::sim_box`] without duplicated boundary
    /// atoms.
    pub fn generate(&self) -> Vec<Vec3> {
        let mut out = Vec::with_capacity(self.atom_count());
        let basis = self.lattice.basis();
        for ix in 0..self.cells[0] {
            for iy in 0..self.cells[1] {
                for iz in 0..self.cells[2] {
                    let corner = Vec3::new(ix as f64, iy as f64, iz as f64) * self.a;
                    for b in basis {
                        out.push(corner + *b * self.a);
                    }
                }
            }
        }
        out
    }

    /// Generates positions and the matching box in one call.
    pub fn build(&self) -> (SimBox, Vec<Vec3>) {
        (self.sim_box(), self.generate())
    }

    /// Number density in atoms / Å³.
    pub fn number_density(&self) -> f64 {
        self.atom_count() as f64 / self.sim_box().volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_case_atom_counts_match_table() {
        assert_eq!(LatticeSpec::paper_case(1).atom_count(), 54_000);
        assert_eq!(LatticeSpec::paper_case(2).atom_count(), 265_302);
        assert_eq!(LatticeSpec::paper_case(3).atom_count(), 1_062_882);
        assert_eq!(LatticeSpec::paper_case(4).atom_count(), 3_456_000);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn paper_case_out_of_range_panics() {
        let _ = LatticeSpec::paper_case(5);
    }

    #[test]
    fn generated_count_matches_spec() {
        let spec = LatticeSpec::new(Lattice::Fcc, 3.6, [2, 3, 4]);
        let atoms = spec.generate();
        assert_eq!(atoms.len(), 4 * 2 * 3 * 4);
        assert_eq!(atoms.len(), spec.atom_count());
    }

    #[test]
    fn atoms_lie_inside_the_box() {
        let spec = LatticeSpec::bcc_fe(3);
        let (bx, atoms) = spec.build();
        for p in &atoms {
            for d in 0..3 {
                assert!(p[d] >= 0.0 && p[d] < bx.lengths()[d], "atom {p} outside box");
            }
        }
    }

    #[test]
    fn no_duplicate_positions() {
        let spec = LatticeSpec::bcc_fe(3);
        let atoms = spec.generate();
        for i in 0..atoms.len() {
            for j in (i + 1)..atoms.len() {
                assert!(
                    atoms[i].distance_sq(atoms[j]) > 1e-6,
                    "atoms {i} and {j} coincide at {}",
                    atoms[i]
                );
            }
        }
    }

    #[test]
    fn bcc_nearest_neighbor_count_under_pbc() {
        // Every BCC atom has exactly 8 nearest neighbors at a·√3/2.
        let spec = LatticeSpec::bcc_fe(3);
        let (bx, atoms) = spec.build();
        let nn = Lattice::Bcc.nearest_neighbor_distance(spec.a);
        let tol = 1e-6;
        for (i, &pi) in atoms.iter().enumerate() {
            let mut count = 0;
            for (j, &pj) in atoms.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = bx.distance_sq(pi, pj).sqrt();
                if (d - nn).abs() < tol {
                    count += 1;
                }
            }
            assert_eq!(count, 8, "atom {i} has {count} nearest neighbors");
        }
    }

    #[test]
    fn fcc_coordination_is_12() {
        let spec = LatticeSpec::new(Lattice::Fcc, 3.6, [3, 3, 3]);
        let (bx, atoms) = spec.build();
        let nn = Lattice::Fcc.nearest_neighbor_distance(spec.a);
        let p0 = atoms[0];
        let count = atoms
            .iter()
            .skip(1)
            .filter(|&&p| (bx.distance_sq(p0, p).sqrt() - nn).abs() < 1e-6)
            .count();
        assert_eq!(count, 12);
    }

    #[test]
    fn density_of_bcc_fe_is_physical() {
        // BCC Fe number density ≈ 0.0849 atoms/Å³.
        let d = LatticeSpec::bcc_fe(4).number_density();
        assert!((d - 2.0 / FE_BCC_LATTICE_CONSTANT.powi(3)).abs() < 1e-12);
        assert!((d - 0.0849).abs() < 1e-3, "density {d}");
    }

    #[test]
    fn basis_sizes() {
        assert_eq!(Lattice::Sc.atoms_per_cell(), 1);
        assert_eq!(Lattice::Bcc.atoms_per_cell(), 2);
        assert_eq!(Lattice::Fcc.atoms_per_cell(), 4);
        assert_eq!(Lattice::Sc.coordination(), 6);
        assert_eq!(Lattice::Bcc.coordination(), 8);
        assert_eq!(Lattice::Fcc.coordination(), 12);
    }

    #[test]
    fn box_tiles_crystal() {
        let spec = LatticeSpec::bcc_fe(2);
        let bx = spec.sim_box();
        let l = 2.0 * FE_BCC_LATTICE_CONSTANT;
        assert!((bx.lengths().x - l).abs() < 1e-12);
    }
}
