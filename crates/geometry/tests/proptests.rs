//! Property-based tests for the geometric substrate.

use md_geometry::{Aabb, Lattice, LatticeSpec, SimBox, Vec3};
use proptest::prelude::*;

fn arb_vec3(limit: f64) -> impl Strategy<Value = Vec3> {
    (-limit..limit, -limit..limit, -limit..limit).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn vector_algebra_identities(a in arb_vec3(1e3), b in arb_vec3(1e3), s in -100.0..100.0f64) {
        // Distributivity and linearity of dot.
        prop_assert!(((a + b).dot(a) - (a.dot(a) + b.dot(a))).abs() < 1e-6);
        prop_assert!(((a * s).dot(b) - s * a.dot(b)).abs() < 1e-6 * (1.0 + s.abs() * a.norm() * b.norm()));
        // Cauchy–Schwarz.
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-6);
        // Triangle inequality.
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        // Cross product orthogonality and Lagrange identity.
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() <= 1e-3 * (1.0 + a.norm_sq() * b.norm()));
        let lagrange = a.norm_sq() * b.norm_sq() - a.dot(b) * a.dot(b);
        prop_assert!((c.norm_sq() - lagrange).abs() <= 1e-4 * (1.0 + lagrange.abs()));
    }

    #[test]
    fn min_image_distance_is_translation_invariant(
        a in arb_vec3(30.0),
        b in arb_vec3(30.0),
        shift in arb_vec3(100.0),
        l in 10.0..50.0f64,
    ) {
        let bx = SimBox::cubic(l);
        let (wa, wb) = (bx.wrap(a), bx.wrap(b));
        let d0 = bx.distance_sq(wa, wb);
        // Shifting both points by the same vector (then wrapping) preserves
        // the minimum-image distance.
        let d1 = bx.distance_sq(bx.wrap(wa + shift), bx.wrap(wb + shift));
        prop_assert!((d0 - d1).abs() < 1e-6 * (1.0 + d0), "{d0} vs {d1}");
    }

    #[test]
    fn min_image_never_exceeds_half_diagonal(a in arb_vec3(40.0), b in arb_vec3(40.0), l in 10.0..40.0f64) {
        let bx = SimBox::cubic(l);
        let d = bx.min_image(bx.wrap(a), bx.wrap(b));
        for k in 0..3 {
            prop_assert!(d[k].abs() <= l / 2.0 + 1e-9);
        }
    }

    #[test]
    fn aabb_expansion_contains_original(
        lo in arb_vec3(50.0),
        extent in (0.1..20.0f64, 0.1..20.0f64, 0.1..20.0f64),
        margin in 0.0..10.0f64,
        p in arb_vec3(80.0),
    ) {
        let hi = lo + Vec3::new(extent.0, extent.1, extent.2);
        let bb = Aabb::new(lo, hi);
        let grown = bb.expanded(margin);
        // Monotonicity: everything inside bb stays inside grown.
        if bb.contains(p) {
            prop_assert!(grown.contains(p));
        }
        prop_assert!(grown.volume() >= bb.volume());
        prop_assert!(bb.intersects(&grown) || bb.volume() == 0.0);
    }

    #[test]
    fn lattice_counts_and_density(n in 1usize..6, a in 2.0..6.0f64) {
        for (lat, per_cell) in [(Lattice::Sc, 1usize), (Lattice::Bcc, 2), (Lattice::Fcc, 4)] {
            let spec = LatticeSpec::new(lat, a, [n, n, n]);
            let atoms = spec.generate();
            prop_assert_eq!(atoms.len(), per_cell * n * n * n);
            let bx = spec.sim_box();
            // All atoms inside, density matches count/volume.
            for p in &atoms {
                for d in 0..3 {
                    prop_assert!(p[d] >= 0.0 && p[d] < bx.lengths()[d]);
                }
            }
            let rho = spec.number_density();
            prop_assert!((rho - atoms.len() as f64 / bx.volume()).abs() < 1e-12);
        }
    }
}
