//! Chaos harness for `mdserve`: every injected fault must end in either a
//! completed job (with resume evidence where applicable) or a cleanly
//! failed job with the root cause named — never a hang, never a lost job.
//!
//! Uses in-process servers on ephemeral localhost ports; jobs are small
//! Lennard-Jones runs so the suite stays fast in debug builds. The true
//! kill-`-9`-the-process storm lives in `scripts/tier1.sh` (job 9).

use md_serve::{ChaosSpec, Client, JobSpec, Server, ServerConfig, ServerHandle, ShutdownMode};
use md_sim::JsonValue;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mdserve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &PathBuf, workers: usize, queue_capacity: usize) -> ServerHandle {
    let mut cfg = ServerConfig::new(dir);
    cfg.workers = workers;
    cfg.queue_capacity = queue_capacity;
    cfg.retry_base_ms = 5;
    cfg.retry_cap_ms = 50;
    Server::start(cfg).expect("server must start")
}

/// A fast job for debug builds: 256-atom LJ argon, ~3 ms/step.
fn small_job(name: &str, steps: usize) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        potential: "lj".to_string(),
        cells: 4,
        steps,
        temperature: 80.0,
        checkpoint_every: 20,
        ..JobSpec::default()
    }
}

fn field<'a>(job: &'a JsonValue, key: &str) -> &'a JsonValue {
    job.get(key).unwrap_or(&JsonValue::Null)
}

fn status_of(job: &JsonValue) -> &str {
    field(job, "status").as_str().unwrap_or("?")
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn storm_of_clients_completes_every_job() {
    let dir = chaos_dir("storm");
    let handle = start(&dir, 2, 64);
    let addr = handle.addr();
    let threads: Vec<_> = (0..3)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let ids: Vec<u64> = (0..3)
                    .map(|j| {
                        let mut spec = small_job(&format!("storm-{c}-{j}"), 60);
                        spec.seed = 1 + c * 10 + j;
                        client.submit(&spec).expect("submit")
                    })
                    .collect();
                for id in ids {
                    let job = client.wait(id, WAIT).expect("wait");
                    assert_eq!(status_of(&job), "completed", "job record: {job}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "jobs_completed").as_f64(), Some(9.0), "stats: {stats}");
    assert_eq!(field(&stats, "jobs_pending").as_f64(), Some(0.0), "stats: {stats}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_resumes_job_from_checkpoint() {
    let dir = chaos_dir("kill");
    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut spec = small_job("kill-me", 100);
    spec.checkpoint_every = 25;
    // Panic the worker mid-run on the first attempt only.
    spec.chaos = ChaosSpec { kill_at_step: Some(60), ..ChaosSpec::default() };
    let id = client.submit(&spec).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed", "job record: {job}");
    assert_eq!(field(&job, "attempt").as_f64(), Some(2.0), "job record: {job}");
    // The kill hit at step 60; chunks checkpoint at their entry, so the
    // durable state was step 50 and the retry must resume exactly there.
    assert_eq!(
        field(&job, "resumed_from_checkpoint").as_f64(),
        Some(50.0),
        "job record: {job}"
    );
    // Resume must integrate only the remaining 50 steps, not re-run the
    // full 100 from the checkpointed state.
    let message = field(&job, "message").as_str().unwrap_or("");
    assert!(
        message.contains("(50 on final attempt)"),
        "resume must not re-run completed steps: {message}"
    );
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "interrupted").as_f64(), Some(1.0), "stats: {stats}");
    assert_eq!(field(&stats, "resumes").as_f64(), Some(1.0), "stats: {stats}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_fault_fails_cleanly_with_root_cause() {
    let dir = chaos_dir("nan");
    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut spec = small_job("poisoned", 60);
    spec.max_retries = 2;
    spec.max_job_retries = 1;
    // A NaN velocity at every 10th step survives rollbacks and retries —
    // the job must end *failed*, not hung, with the fault named.
    spec.chaos = ChaosSpec { nan_every: Some(10), ..ChaosSpec::default() };
    let id = client.submit(&spec).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "failed", "job record: {job}");
    assert_eq!(
        field(&job, "fault").as_str(),
        Some("NonFiniteVelocity"),
        "root cause must be the injected fault: {job}"
    );
    let message = field(&job, "message").as_str().unwrap_or("");
    assert!(message.contains("recovery exhausted"), "message: {message}");
    handle.shutdown(ShutdownMode::Drain);
    assert!(
        !dir.join(format!("job-{id}.ckpt")).exists(),
        "a failed job must not leak its checkpoint file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_pushes_back_instead_of_accepting_silently() {
    let dir = chaos_dir("backpressure");
    let handle = start(&dir, 1, 2);
    let mut client = Client::connect(handle.addr()).unwrap();
    // Occupy the single worker with a long job, then fill the queue.
    let busy = client.submit(&small_job("busy", 2000)).unwrap();
    let t0 = Instant::now();
    loop {
        let stats = client.stats().unwrap();
        if field(&stats, "started").as_f64() == Some(1.0) {
            break;
        }
        assert!(t0.elapsed() < WAIT, "worker never picked the busy job");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.submit(&small_job("q1", 60)).unwrap();
    client.submit(&small_job("q2", 60)).unwrap();
    let err = client.submit(&small_job("q3", 60)).unwrap_err();
    assert!(err.contains("backpressure"), "rejection must be explicit: {err}");
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "rejected").as_f64(), Some(1.0), "stats: {stats}");
    // Shutdown-now interrupts the busy job at a chunk boundary with its
    // checkpoint flushed — verify the flush happened.
    handle.shutdown(ShutdownMode::Now);
    assert!(dir.join(format!("job-{busy}.ckpt")).exists(), "interrupt must flush a checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_resumes_interrupted_and_queued_jobs_with_zero_loss() {
    let dir = chaos_dir("restart");
    // Life 1: one long job running, two queued behind it.
    let handle = start(&dir, 1, 8);
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    let busy = client.submit(&small_job("long", 600)).unwrap();
    let q1 = client.submit(&small_job("queued-1", 60)).unwrap();
    let q2 = client.submit(&small_job("queued-2", 60)).unwrap();
    // Let the long job pass at least one checkpoint chunk (20 steps).
    let t0 = Instant::now();
    loop {
        let job = client.status(busy).unwrap();
        if status_of(&job) == "running" && t0.elapsed() > Duration::from_millis(300) {
            break;
        }
        assert!(t0.elapsed() < WAIT, "busy job never started");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(client);
    handle.shutdown(ShutdownMode::Now);

    // Life 2: same directory — replay must re-queue all three jobs and
    // resume the interrupted one from its flushed checkpoint.
    let handle = start(&dir, 2, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    for id in [busy, q1, q2] {
        let job = client.wait(id, WAIT).unwrap();
        assert_eq!(status_of(&job), "completed", "job {id} after restart: {job}");
        assert_eq!(field(&job, "recovered"), &JsonValue::Bool(true), "job {id}: {job}");
    }
    let resumed = field(&client.status(busy).unwrap(), "resumed_from_checkpoint").as_f64();
    assert!(
        matches!(resumed, Some(step) if step > 0.0),
        "interrupted job must carry resume evidence, got {resumed:?}"
    );
    let stats = client.stats().unwrap();
    assert_eq!(field(&stats, "jobs_total").as_f64(), Some(3.0), "no job lost: {stats}");
    assert_eq!(field(&stats, "jobs_completed").as_f64(), Some(3.0), "stats: {stats}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_dropped_and_server_keeps_going() {
    let dir = chaos_dir("torn-tail");
    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let id = client.submit(&small_job("before-crash", 60)).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed");
    drop(client);
    handle.shutdown(ShutdownMode::Drain);
    // Simulate a crash mid-append: garbage half-line at the tail.
    use std::io::Write;
    let journal = dir.join("queue.journal");
    let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
    f.write_all(b"{\"ev\":\"submit\",\"job\":99,\"spec\":{\"na").unwrap();
    drop(f);

    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    // The completed record before the tear survives; the torn line is gone.
    let job = client.status(id).unwrap();
    assert_eq!(status_of(&job), "completed", "history must survive the tear: {job}");
    assert!(client.status(99).is_err(), "the torn submit must not resurrect");
    // And the repaired journal accepts new work.
    let id2 = client.submit(&small_job("after-repair", 60)).unwrap();
    let job2 = client.wait(id2, WAIT).unwrap();
    assert_eq!(status_of(&job2), "completed", "job record: {job2}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_is_discarded_and_job_reruns_from_scratch() {
    let dir = chaos_dir("bad-ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    // Hand-craft life 1's leftovers: a journaled pending job whose
    // checkpoint file has a flipped byte in its checksummed payload.
    let spec = small_job("bit-rot", 60);
    {
        let mut journal = md_serve::Journal::open(dir.join("queue.journal")).unwrap();
        journal
            .append(&md_serve::JournalEvent::Submitted {
                job: 1,
                spec: spec.clone(),
                at_unix_ms: md_serve::unix_ms(),
            })
            .unwrap();
    }
    let ckpt = dir.join("job-1.ckpt");
    {
        let (lattice, _, mass) = spec.lattice().unwrap();
        let sim = md_sim::Simulation::builder(lattice)
            .mass(mass)
            .temperature(spec.temperature)
            .pair_potential(md_potential::LennardJones::new(0.0104, 3.4, 8.5))
            .strategy(md_sim::StrategyKind::Serial)
            .threads(1)
            .build()
            .unwrap();
        md_sim::save_checkpoint(&ckpt, sim.system(), 40).unwrap();
    }
    let len = std::fs::metadata(&ckpt).unwrap().len() as usize;
    md_sim::health::corrupt_file_byte(&ckpt, len / 2).unwrap();

    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let job = client.wait(1, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed", "job record: {job}");
    assert_eq!(
        field(&job, "resumed_from_checkpoint"),
        &JsonValue::Null,
        "a corrupt checkpoint must not be resumed from: {job}"
    );
    let message = field(&job, "message").as_str().unwrap_or("");
    assert!(message.contains("corrupt checkpoint discarded"), "message: {message}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphaned_checkpoints_are_swept_so_reissued_ids_start_fresh() {
    let dir = chaos_dir("orphan");
    std::fs::create_dir_all(&dir).unwrap();
    // Life 1's leftovers: job 1 is terminal in the journal, so next_id will
    // be 2 — and a *valid* job-2.ckpt survives from a journal-truncation
    // victim. Without the startup sweep, the first new submit would reuse
    // id 2 and silently resume from this unrelated checkpoint.
    {
        let mut journal = md_serve::Journal::open(dir.join("queue.journal")).unwrap();
        journal
            .append(&md_serve::JournalEvent::Submitted {
                job: 1,
                spec: small_job("earlier", 60),
                at_unix_ms: md_serve::unix_ms(),
            })
            .unwrap();
        journal
            .append(&md_serve::JournalEvent::Completed {
                job: 1,
                steps: 60,
                rollbacks: 0,
                resumed_from: 0,
            })
            .unwrap();
    }
    let bait = dir.join("job-2.ckpt");
    {
        let spec = small_job("bait", 60);
        let (lattice, _, mass) = spec.lattice().unwrap();
        let sim = md_sim::Simulation::builder(lattice)
            .mass(mass)
            .temperature(spec.temperature)
            .pair_potential(md_potential::LennardJones::new(0.0104, 3.4, 8.5))
            .strategy(md_sim::StrategyKind::Serial)
            .threads(1)
            .build()
            .unwrap();
        md_sim::save_checkpoint(&bait, sim.system(), 40).unwrap();
    }
    let stale = dir.join("job-9.ckpt");
    std::fs::write(&stale, b"not even a checkpoint").unwrap();

    let handle = start(&dir, 1, 8);
    assert!(!bait.exists(), "checkpoint with a reissuable id must be swept at startup");
    assert!(!stale.exists(), "unknown-id checkpoint must be swept at startup");
    let mut client = Client::connect(handle.addr()).unwrap();
    let id = client.submit(&small_job("fresh", 60)).unwrap();
    assert_eq!(id, 2, "the reissued id is exactly the hazardous one");
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed", "job record: {job}");
    assert_eq!(
        field(&job, "resumed_from_checkpoint"),
        &JsonValue::Null,
        "a fresh job must not resume from a stale stranger's checkpoint: {job}"
    );
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_keeps_counting_across_a_restart() {
    let dir = chaos_dir("deadline-restart");
    // Life 1: a job with a wall-clock deadline gets interrupted mid-run.
    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut spec = small_job("mortal", 100_000);
    spec.deadline_ms = Some(1_500);
    let id = client.submit(&spec).unwrap();
    let t0 = Instant::now();
    loop {
        if status_of(&client.status(id).unwrap()) == "running" {
            break;
        }
        assert!(t0.elapsed() < WAIT, "job never started");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(client);
    handle.shutdown(ShutdownMode::Now);

    // Downtime pushes the job past its deadline; the journaled acceptance
    // timestamp must keep counting while the server is gone.
    std::thread::sleep(Duration::from_millis(1_700));

    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(
        status_of(&job),
        "failed",
        "deadline must not restart with the server: {job}"
    );
    assert_eq!(field(&job, "fault").as_str(), Some("DeadlineExceeded"), "job record: {job}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_json_and_dropped_clients_leave_the_server_serving() {
    let dir = chaos_dir("rude-clients");
    let handle = start(&dir, 1, 8);
    let addr = handle.addr();
    // Malformed JSON gets an error response and the connection survives.
    let mut client = Client::connect(addr).unwrap();
    let err = client.raw_line("{this is not json").unwrap_err();
    assert!(err.contains("bad request"), "error: {err}");
    client.ping().expect("connection must survive a bad request");
    // A client that vanishes mid-request must not wedge anything.
    {
        use std::io::Write;
        let mut rude = std::net::TcpStream::connect(addr).unwrap();
        rude.write_all(b"{\"cmd\":\"sub").unwrap();
        // dropped here, mid-line
    }
    std::thread::sleep(Duration::from_millis(50));
    let id = client.submit(&small_job("after-rudeness", 60)).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed", "job record: {job}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_is_enforced_and_named() {
    let dir = chaos_dir("deadline");
    let handle = start(&dir, 1, 8);
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut spec = small_job("too-slow", 100_000);
    spec.deadline_ms = Some(300);
    let id = client.submit(&spec).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "failed", "job record: {job}");
    assert_eq!(field(&job, "fault").as_str(), Some("DeadlineExceeded"), "job record: {job}");
    handle.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_server_on_the_same_state_dir_is_refused() {
    // Two servers sharing a state directory would both replay the journal,
    // run the re-queued jobs twice, and race each other's checkpoint temp
    // files. The directory lock must refuse the second server outright —
    // and release on shutdown so a successor can take over.
    let dir = chaos_dir("dirlock");
    let handle = start(&dir, 1, 8);
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = 1;
    let err = match Server::start(cfg) {
        Err(e) => e,
        Ok(_) => panic!("second server must be refused"),
    };
    assert!(
        err.to_string().contains("already served"),
        "unexpected error: {err}"
    );
    // The refused attempt must not have perturbed the live server.
    let mut client = Client::connect(handle.addr()).unwrap();
    let id = client.submit(&small_job("post-refusal", 40)).unwrap();
    let job = client.wait(id, WAIT).unwrap();
    assert_eq!(status_of(&job), "completed", "job record: {job}");
    handle.shutdown(ShutdownMode::Drain);
    // Lock released: a successor starts cleanly on the same directory.
    let successor = start(&dir, 1, 8);
    successor.shutdown(ShutdownMode::Drain);
    let _ = std::fs::remove_dir_all(&dir);
}
