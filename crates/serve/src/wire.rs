//! Wire helpers: compact (single-line) JSON rendering and line-framed IO.
//!
//! [`md_sim::JsonValue`]'s `Display` is a pretty multi-line writer for
//! report files; the journal and the TCP protocol both need one record per
//! line, so this module provides a compact writer producing output the
//! strict `JsonValue::parse` round-trips.

use md_sim::JsonValue;
use std::io::{BufRead, Write};

/// Renders a value as single-line JSON (no interior newlines).
pub fn compact(value: &JsonValue) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

fn write_compact(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n:?}"));
            }
        }
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes one compact JSON line (value + `\n`) and flushes.
pub fn write_line(w: &mut impl Write, value: &JsonValue) -> std::io::Result<()> {
    let mut line = compact(value);
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one line and parses it. `Ok(None)` on clean EOF.
pub fn read_line(r: &mut impl BufRead) -> std::io::Result<Option<Result<JsonValue, String>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(Some(Err("empty line".to_string())));
    }
    Ok(Some(JsonValue::parse(trimmed).map_err(|e| e.to_string())))
}

/// Object field as u64 (JSON numbers are doubles; values must be integral
/// and non-negative).
pub fn get_u64(obj: &JsonValue, key: &str) -> Option<u64> {
    let n = obj.get(key)?.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15).then_some(n as u64)
}

/// Object field as usize.
pub fn get_usize(obj: &JsonValue, key: &str) -> Option<usize> {
    get_u64(obj, key).map(|n| n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips_through_strict_parser() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::str("a\"b\\c\nd")),
            ("n", JsonValue::num(1.5)),
            ("i", JsonValue::num(42)),
            ("b", JsonValue::Bool(true)),
            ("z", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::num(1), JsonValue::str("x")]),
            ),
            ("empty", JsonValue::Obj(vec![])),
        ]);
        let line = compact(&v);
        assert!(!line.contains('\n'), "compact output must be single-line");
        assert_eq!(JsonValue::parse(&line).unwrap(), v);
    }

    #[test]
    fn line_io_round_trips() {
        let v = JsonValue::obj(vec![("cmd", JsonValue::str("ping"))]);
        let mut buf = Vec::new();
        write_line(&mut buf, &v).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let got = read_line(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(got, v);
        assert!(read_line(&mut r).unwrap().is_none(), "EOF after one line");
    }
}
