//! Wire helpers: compact (single-line) JSON rendering and line-framed IO.
//!
//! [`md_sim::JsonValue`]'s `Display` is a pretty multi-line writer for
//! report files; the journal and the TCP protocol both need one record per
//! line, so this module provides a compact writer producing output the
//! strict `JsonValue::parse` round-trips.

use md_sim::JsonValue;
use std::io::{BufRead, Write};

/// Renders a value as single-line JSON (no interior newlines).
pub fn compact(value: &JsonValue) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

fn write_compact(out: &mut String, value: &JsonValue) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n:?}"));
            }
        }
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes one compact JSON line (value + `\n`) and flushes.
pub fn write_line(w: &mut impl Write, value: &JsonValue) -> std::io::Result<()> {
    let mut line = compact(value);
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Reads one line and parses it. `Ok(None)` on clean EOF.
pub fn read_line(r: &mut impl BufRead) -> std::io::Result<Option<Result<JsonValue, String>>> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    Ok(Some(parse_trimmed(line.trim())))
}

fn parse_trimmed(trimmed: &str) -> Result<JsonValue, String> {
    if trimmed.is_empty() {
        return Err("empty line".to_string());
    }
    JsonValue::parse(trimmed).map_err(|e| e.to_string())
}

/// Incremental line reader for sockets with a read timeout.
///
/// `BufRead::read_line` into a fresh `String` loses the bytes already
/// consumed when the read times out mid-line, so a request spanning a
/// timeout tick would be torn in two and both halves mis-parsed. This
/// reader keeps the partial line buffered across `WouldBlock`/`TimedOut`
/// errors and only yields once a full `\n`-terminated line has arrived.
#[derive(Debug, Default)]
pub struct LineReader {
    partial: Vec<u8>,
}

impl LineReader {
    /// An empty reader.
    pub fn new() -> LineReader {
        LineReader::default()
    }

    /// Reads until the buffered line is complete, then parses it.
    /// `Ok(None)` on EOF (a partial line cut off by EOF is dropped — the
    /// client is gone and the request was never framed). Timeout errors
    /// (`WouldBlock`/`TimedOut`) are returned to the caller with the
    /// partial line still buffered for the next call.
    pub fn read_line(
        &mut self,
        r: &mut impl BufRead,
    ) -> std::io::Result<Option<Result<JsonValue, String>>> {
        loop {
            let (consumed, complete) = {
                let available = match r.fill_buf() {
                    Ok(buf) => buf,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                if available.is_empty() {
                    self.partial.clear();
                    return Ok(None);
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        self.partial.extend_from_slice(&available[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        self.partial.extend_from_slice(available);
                        (available.len(), false)
                    }
                }
            };
            r.consume(consumed);
            if complete {
                let line = std::mem::take(&mut self.partial);
                return Ok(Some(match String::from_utf8(line) {
                    Ok(text) => parse_trimmed(text.trim()),
                    Err(_) => Err("request line is not valid UTF-8".to_string()),
                }));
            }
        }
    }
}

/// Object field as u64 (JSON numbers are doubles; values must be integral
/// and non-negative).
pub fn get_u64(obj: &JsonValue, key: &str) -> Option<u64> {
    let n = obj.get(key)?.as_f64()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= 9.0e15).then_some(n as u64)
}

/// Object field as usize.
pub fn get_usize(obj: &JsonValue, key: &str) -> Option<usize> {
    get_u64(obj, key).map(|n| n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trips_through_strict_parser() {
        let v = JsonValue::obj(vec![
            ("s", JsonValue::str("a\"b\\c\nd")),
            ("n", JsonValue::num(1.5)),
            ("i", JsonValue::num(42)),
            ("b", JsonValue::Bool(true)),
            ("z", JsonValue::Null),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::num(1), JsonValue::str("x")]),
            ),
            ("empty", JsonValue::Obj(vec![])),
        ]);
        let line = compact(&v);
        assert!(!line.contains('\n'), "compact output must be single-line");
        assert_eq!(JsonValue::parse(&line).unwrap(), v);
    }

    /// Yields its chunks one `read` at a time, interleaving `WouldBlock`
    /// errors — the shape of a socket whose read timeout fires mid-line.
    struct ChoppyReader {
        chunks: std::collections::VecDeque<Result<Vec<u8>, std::io::ErrorKind>>,
    }

    impl std::io::Read for ChoppyReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.chunks.pop_front() {
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(kind)) => Err(kind.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn line_reader_reassembles_a_request_split_by_read_timeouts() {
        let v = JsonValue::obj(vec![("cmd", JsonValue::str("submit")), ("n", JsonValue::num(7))]);
        let mut framed = compact(&v);
        framed.push('\n');
        let bytes = framed.as_bytes();
        let mid = bytes.len() / 2;
        let mut r = std::io::BufReader::new(ChoppyReader {
            chunks: [
                Ok(bytes[..mid].to_vec()),
                Err(std::io::ErrorKind::WouldBlock),
                Err(std::io::ErrorKind::TimedOut),
                Ok(bytes[mid..].to_vec()),
            ]
            .into_iter()
            .collect(),
        });
        let mut lines = LineReader::new();
        // Two timeout ticks fire mid-line; the partial bytes must survive.
        for _ in 0..2 {
            let err = lines.read_line(&mut r).unwrap_err();
            assert!(matches!(
                err.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ));
        }
        let got = lines.read_line(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(got, v, "request spanning timeout ticks must reassemble");
        assert!(lines.read_line(&mut r).unwrap().is_none(), "EOF after the line");
    }

    #[test]
    fn line_reader_drops_a_line_cut_off_by_eof() {
        let mut r = std::io::BufReader::new(ChoppyReader {
            chunks: [Ok(b"{\"cmd\":\"sub".to_vec())].into_iter().collect(),
        });
        let mut lines = LineReader::new();
        assert!(lines.read_line(&mut r).unwrap().is_none());
    }

    #[test]
    fn line_io_round_trips() {
        let v = JsonValue::obj(vec![("cmd", JsonValue::str("ping"))]);
        let mut buf = Vec::new();
        write_line(&mut buf, &v).unwrap();
        let mut r = std::io::BufReader::new(&buf[..]);
        let got = read_line(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(got, v);
        assert!(read_line(&mut r).unwrap().is_none(), "EOF after one line");
    }
}
