//! The `mdserve` job server: bounded journaled queue + supervised workers.
//!
//! Life of a job:
//!
//! ```text
//! submit ──journal──▶ queued ──pick──▶ running ──┬─▶ completed
//!    ▲                  ▲                        ├─▶ failed (root cause named)
//!    │ backpressure     │ retry (backoff+jitter) │
//!    └── rejected       └────────────────────────┘
//!                       ▲ requeue (resume from checkpoint)
//!                       └── worker death / shutdown / restart replay
//! ```
//!
//! Every transition is journaled before the client is told about it; see
//! [`crate::journal`] for the durability argument.

use crate::journal::{unix_ms, Journal, JournalEvent};
use crate::schedule::{self, QueueEntry};
use crate::spec::JobSpec;
use crate::wire;
use md_perfmodel::MachineParams;
use md_potential::{AnalyticEam, LennardJones};
use md_sim::{
    load_checkpoint, save_checkpoint, sweep_stale_tmp_dir, FaultInjector, InjectedFault,
    JsonValue, RecoveryConfig, RecoveryError, Simulation, StrategyKind, System,
};
use sdc_core::QueueMetrics;
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// State directory: journal (`queue.journal`) and per-job checkpoints
    /// (`job-<id>.ckpt`). Created if absent.
    pub dir: PathBuf,
    /// TCP port on 127.0.0.1 (0 = ephemeral; read the bound port from
    /// [`ServerHandle::addr`]).
    pub port: u16,
    /// Worker pool size (each worker runs one job at a time with the serial
    /// strategy — parallelism comes from running jobs side by side).
    pub workers: usize,
    /// Maximum *queued* (not running) jobs before submits are refused
    /// with a backpressure error.
    pub queue_capacity: usize,
    /// Machine model for predicted job costs (queue ordering).
    pub machine: MachineParams,
    /// Base of the exponential retry backoff (ms).
    pub retry_base_ms: u64,
    /// Backoff cap (ms).
    pub retry_cap_ms: u64,
}

impl ServerConfig {
    /// Defaults rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            dir: dir.into(),
            port: 0,
            workers: 2,
            queue_capacity: 64,
            machine: MachineParams::default(),
            retry_base_ms: 20,
            retry_cap_ms: 1000,
        }
    }
}

/// How to stop the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting; running jobs finish (checkpointing as they go);
    /// queued jobs stay journaled and resume on the next start.
    Drain,
    /// Stop accepting; running jobs are interrupted at the next checkpoint
    /// chunk boundary with their state flushed, and journaled as
    /// interrupted so the next start resumes them.
    Now,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Draining,
    Stopping,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Completed,
    Failed,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct Job {
    spec: JobSpec,
    status: JobStatus,
    /// Executions started (1-based, across server restarts).
    attempt: usize,
    /// Step the most recent execution resumed from, if it resumed.
    resumed_from: Option<usize>,
    rollbacks: usize,
    fault: Option<String>,
    message: String,
    wall_ms: u64,
    accepted_at: Instant,
    /// Wall-clock milliseconds the job had already lived (since acceptance)
    /// when `accepted_at` was (re)stamped — nonzero only for jobs rebuilt
    /// from the journal, where it carries the pre-restart elapsed time so
    /// deadlines are not silently extended by a recovery.
    prior_elapsed_ms: u64,
    /// True if this job was rebuilt from the journal at startup.
    recovered: bool,
}

impl Job {
    /// Absolute deadline instant, honoring time spent in previous server
    /// lives (including downtime): the deadline is `deadline_ms` of
    /// wall-clock time from original acceptance, not from the last restart.
    fn deadline(&self) -> Option<Instant> {
        self.spec.deadline_ms.map(|ms| {
            self.accepted_at + Duration::from_millis(ms.saturating_sub(self.prior_elapsed_ms))
        })
    }
}

struct State {
    jobs: BTreeMap<u64, Job>,
    queue: Vec<QueueEntry>,
    journal: Journal,
    next_id: u64,
    phase: Phase,
    running: usize,
    pops: u64,
}

struct Shared {
    cfg: ServerConfig,
    /// Exclusive advisory lock on `<dir>/serve.lock`, held for the server's
    /// lifetime. Two servers sharing a state directory would duplicate the
    /// re-queued jobs and race each other's checkpoint temp files; the OS
    /// releases the lock on any exit, including `kill -9`.
    #[allow(dead_code)]
    dir_lock: std::fs::File,
    state: Mutex<State>,
    /// Workers wait here for work; submitters and shutdown notify.
    work_cv: Condvar,
    /// `wait` requests and `wait_shutdown` block here; notified on every
    /// terminal job transition and on phase changes.
    done_cv: Condvar,
    metrics: QueueMetrics,
}

impl Shared {
    fn ckpt_path(&self, job: u64) -> PathBuf {
        self.cfg.dir.join(format!("job-{job}.ckpt"))
    }
}

/// Entry point: [`Server::start`].
pub struct Server;

impl Server {
    /// Creates the state directory, sweeps stale checkpoint temp files,
    /// replays the journal (re-queueing every non-terminal job), binds the
    /// listener, and spawns the worker pool.
    pub fn start(cfg: ServerConfig) -> std::io::Result<ServerHandle> {
        std::fs::create_dir_all(&cfg.dir)?;
        let dir_lock = std::fs::File::create(cfg.dir.join("serve.lock"))?;
        match dir_lock.try_lock() {
            Ok(()) => {}
            Err(std::fs::TryLockError::WouldBlock) => {
                return Err(std::io::Error::other(format!(
                    "state directory {} is already served by another mdserve",
                    cfg.dir.display()
                )));
            }
            Err(std::fs::TryLockError::Error(e)) => return Err(e),
        }
        for path in sweep_stale_tmp_dir(&cfg.dir)? {
            eprintln!("mdserve: swept stale checkpoint temp file {}", path.display());
        }
        let journal_path = cfg.dir.join("queue.journal");
        let replay = Journal::replay(&journal_path)?;
        if replay.truncated_bytes > 0 {
            eprintln!(
                "mdserve: journal had a torn tail; truncated {} bytes",
                replay.truncated_bytes
            );
        }
        let mut jobs: BTreeMap<u64, Job> = BTreeMap::new();
        let now = Instant::now();
        let now_unix = unix_ms();
        for event in &replay.events {
            let id = event.job();
            match event {
                JournalEvent::Submitted { spec, at_unix_ms, .. } => {
                    jobs.insert(
                        id,
                        Job {
                            spec: spec.clone(),
                            status: JobStatus::Queued,
                            attempt: 0,
                            resumed_from: None,
                            rollbacks: 0,
                            fault: None,
                            message: String::new(),
                            wall_ms: 0,
                            accepted_at: now,
                            // 0 = pre-timestamp journal: the original
                            // acceptance time is unknown, so the deadline
                            // restarts (old behavior) rather than expiring
                            // every recovered job outright.
                            prior_elapsed_ms: match at_unix_ms {
                                0 => 0,
                                at => now_unix.saturating_sub(*at),
                            },
                            recovered: true,
                        },
                    );
                }
                JournalEvent::Started { attempt, .. } => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.attempt = *attempt;
                    }
                }
                JournalEvent::Interrupted { reason, .. } => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.message = format!("interrupted: {reason}");
                    }
                }
                JournalEvent::Completed { steps, rollbacks, resumed_from, .. } => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.status = JobStatus::Completed;
                        job.rollbacks = *rollbacks;
                        job.resumed_from = (*resumed_from > 0).then_some(*resumed_from);
                        job.message = format!("{steps} steps");
                    }
                }
                JournalEvent::Failed { fault, message, .. } => {
                    if let Some(job) = jobs.get_mut(&id) {
                        job.status = JobStatus::Failed;
                        job.fault = Some(fault.clone());
                        job.message = message.clone();
                    }
                }
            }
        }
        // Sweep checkpoints that no pending job owns. These are dangerous,
        // not just untidy: journal truncation can forget a job whose id is
        // later reissued, and the fresh job would silently resume from the
        // stale file's unrelated system. Terminal jobs' leftovers (e.g. a
        // checkpoint orphaned by a crash between the Failed record and the
        // file removal) go the same way.
        for entry in std::fs::read_dir(&cfg.dir)? {
            let path = entry?.path();
            let owner = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("job-")?.strip_suffix(".ckpt")?.parse::<u64>().ok());
            let Some(id) = owner else { continue };
            if !jobs.get(&id).is_some_and(|job| job.status == JobStatus::Queued) {
                eprintln!("mdserve: removing orphaned checkpoint {}", path.display());
                let _ = std::fs::remove_file(&path);
            }
        }
        let queue: Vec<QueueEntry> = jobs
            .iter()
            .filter(|(_, job)| job.status == JobStatus::Queued)
            .map(|(id, job)| QueueEntry {
                id: *id,
                cost: job.spec.predicted_cost(&cfg.machine),
                enqueued_at_pop: 0,
                not_before: None,
            })
            .collect();
        if !queue.is_empty() {
            eprintln!("mdserve: re-queued {} pending job(s) from the journal", queue.len());
        }
        let next_id = jobs.keys().max().map_or(1, |m| m + 1);
        let journal = Journal::open(&journal_path)?;

        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, cfg.port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = cfg.workers.max(1);
        let metrics = QueueMetrics::new();
        metrics.depth.set(queue.len() as f64);
        let shared = Arc::new(Shared {
            cfg,
            dir_lock,
            state: Mutex::new(State {
                jobs,
                queue,
                journal,
                next_id,
                phase: Phase::Running,
                running: 0,
                pops: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            metrics,
        });

        let mut threads = Vec::new();
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mdserve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let clients: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let shared = Arc::clone(&shared);
            let clients = Arc::clone(&clients);
            threads.push(
                std::thread::Builder::new()
                    .name("mdserve-accept".to_string())
                    .spawn(move || accept_loop(&shared, &listener, &clients))?,
            );
        }
        Ok(ServerHandle { shared, addr, threads, clients, joined: false })
    }
}

/// Control handle for a started server. Dropping it without an explicit
/// shutdown stops the server as if by [`ShutdownMode::Now`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    clients: Arc<Mutex<Vec<JoinHandle<()>>>>,
    joined: bool,
}

impl ServerHandle {
    /// The bound listen address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins every thread.
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.begin_shutdown(mode);
        self.join_all();
    }

    /// Blocks until a client issues a `shutdown` command, then joins every
    /// thread. Used by the `mdserve` binary.
    pub fn wait_shutdown(mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            while st.phase == Phase::Running {
                st = self.shared.done_cv.wait(st).unwrap();
            }
        }
        self.join_all();
    }

    fn begin_shutdown(&self, mode: ShutdownMode) {
        let mut st = self.shared.state.lock().unwrap();
        match mode {
            ShutdownMode::Drain => {
                if st.phase == Phase::Running {
                    st.phase = Phase::Draining;
                }
            }
            ShutdownMode::Now => st.phase = Phase::Stopping,
        }
        drop(st);
        self.shared.work_cv.notify_all();
        self.shared.done_cv.notify_all();
    }

    fn join_all(&mut self) {
        if self.joined {
            return;
        }
        self.joined = true;
        // Workers (and the acceptor) first: during a drain they finish the
        // running jobs while client connections stay usable for `wait`.
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Then force the terminal phase so client threads exit within one
        // read-timeout tick, making the whole shutdown bounded.
        self.shared.state.lock().unwrap().phase = Phase::Stopping;
        self.shared.done_cv.notify_all();
        let handles: Vec<_> = self.clients.lock().unwrap().drain(..).collect();
        for t in handles {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.joined {
            self.begin_shutdown(ShutdownMode::Now);
            self.join_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        // Pick a job, or exit when the server is draining/stopping.
        let picked = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.phase != Phase::Running {
                    break None;
                }
                let now = Instant::now();
                if let Some(idx) = schedule::pick(&st.queue, now, st.pops) {
                    let entry = st.queue.remove(idx);
                    st.pops += 1;
                    shared.metrics.depth.set(st.queue.len() as f64);
                    let State { jobs, journal, running, .. } = &mut *st;
                    let job = jobs.get_mut(&entry.id).expect("queued job must exist");
                    // A deadline can expire while the job sits in the queue.
                    if deadline_over(job, now) {
                        finish_failed(
                            shared,
                            job,
                            journal,
                            entry.id,
                            "DeadlineExceeded",
                            "deadline expired while queued".to_string(),
                        );
                        shared.metrics.failed.inc();
                        shared.done_cv.notify_all();
                        continue;
                    }
                    job.status = JobStatus::Running;
                    job.attempt += 1;
                    *running += 1;
                    let attempt = job.attempt;
                    journal_append(journal, &JournalEvent::Started { job: entry.id, attempt });
                    shared.metrics.started.inc();
                    break Some((entry.id, job.spec.clone(), attempt, job.deadline()));
                }
                let timeout = schedule::next_wakeup(&st.queue, now)
                    .map(|t| t.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(200))
                    .max(Duration::from_millis(1));
                let (guard, _) = shared.work_cv.wait_timeout(st, timeout).unwrap();
                st = guard;
            }
        };
        let Some((id, spec, attempt, deadline)) = picked else {
            return;
        };

        // Execute outside the lock, supervised: a panic is a worker death,
        // not a server death.
        let started = Instant::now();
        let result =
            catch_unwind(AssertUnwindSafe(|| execute(shared, id, &spec, attempt, deadline)));
        let wall_ms = started.elapsed().as_millis() as u64;

        let mut st = shared.state.lock().unwrap();
        st.running -= 1;
        let State { jobs, queue, journal, pops, .. } = &mut *st;
        let job = jobs.get_mut(&id).expect("running job must exist");
        job.wall_ms += wall_ms;
        match result {
            Ok(Ok(outcome)) => {
                job.status = JobStatus::Completed;
                job.resumed_from = outcome.resumed_from;
                job.rollbacks += outcome.rollbacks;
                job.message = format!(
                    "{} steps ({} on final attempt), final T {:.1} K{}",
                    spec.steps,
                    outcome.steps_this_attempt,
                    outcome.final_temperature,
                    if outcome.corrupt_checkpoint_discarded {
                        " (corrupt checkpoint discarded, reran from scratch)"
                    } else {
                        ""
                    }
                );
                journal_append(
                    journal,
                    &JournalEvent::Completed {
                        job: id,
                        steps: spec.steps,
                        rollbacks: job.rollbacks,
                        resumed_from: outcome.resumed_from.unwrap_or(0),
                    },
                );
                shared.metrics.completed.inc();
                if outcome.resumed_from.is_some() {
                    shared.metrics.resumes.inc();
                }
                let _ = std::fs::remove_file(shared.ckpt_path(id));
            }
            Ok(Err(ExecStop::Fault { kind, message })) => {
                retry_or_fail(shared, job, queue, journal, *pops, id, kind, message);
            }
            Ok(Err(ExecStop::Deadline)) => {
                finish_failed(
                    shared,
                    job,
                    journal,
                    id,
                    "DeadlineExceeded",
                    format!("deadline of {} ms exceeded", spec.deadline_ms.unwrap_or(0)),
                );
                shared.metrics.failed.inc();
            }
            Ok(Err(ExecStop::Interrupted { at_step })) => {
                // Shutdown caught the job between chunks; its checkpoint is
                // flushed and the journal shows it non-terminal, so the
                // next server start resumes it.
                job.status = JobStatus::Queued;
                job.message = format!("interrupted by shutdown at step {at_step}");
                journal_append(
                    journal,
                    &JournalEvent::Interrupted {
                        job: id,
                        attempt,
                        reason: format!("shutdown at step {at_step}"),
                    },
                );
                shared.metrics.interrupted.inc();
            }
            Ok(Err(ExecStop::Io(message))) => {
                finish_failed(shared, job, journal, id, "Io", message);
                shared.metrics.failed.inc();
            }
            Err(panic) => {
                // Worker death. Journal the interruption, then retry from
                // the durable checkpoint (the whole point of this server).
                let reason = panic_message(panic.as_ref());
                journal_append(
                    journal,
                    &JournalEvent::Interrupted {
                        job: id,
                        attempt,
                        reason: format!("worker panicked: {reason}"),
                    },
                );
                shared.metrics.interrupted.inc();
                retry_or_fail(
                    shared,
                    job,
                    queue,
                    journal,
                    *pops,
                    id,
                    "WorkerPanic",
                    format!("worker panicked: {reason}"),
                );
            }
        }
        drop(st);
        shared.done_cv.notify_all();
        shared.work_cv.notify_all();
    }
}

fn deadline_over(job: &Job, now: Instant) -> bool {
    job.deadline().is_some_and(|d| now >= d)
}

fn finish_failed(
    shared: &Shared,
    job: &mut Job,
    journal: &mut Journal,
    id: u64,
    kind: &str,
    message: String,
) {
    job.status = JobStatus::Failed;
    job.fault = Some(kind.to_string());
    job.message = message.clone();
    journal_append(journal, &JournalEvent::Failed { job: id, fault: kind.to_string(), message });
    // Failed is terminal: drop the checkpoint like the completed path does,
    // or the state directory leaks one .ckpt per failed job forever.
    let _ = std::fs::remove_file(shared.ckpt_path(id));
}

#[allow(clippy::too_many_arguments)]
fn retry_or_fail(
    shared: &Shared,
    job: &mut Job,
    queue: &mut Vec<QueueEntry>,
    journal: &mut Journal,
    pops: u64,
    id: u64,
    kind: &str,
    message: String,
) {
    if job.attempt > job.spec.max_job_retries {
        finish_failed(
            shared,
            job,
            journal,
            id,
            kind,
            format!("{message} (after {} attempt(s))", job.attempt),
        );
        shared.metrics.failed.inc();
        return;
    }
    // Exponential backoff with deterministic jitter: base·2^(attempt−1)
    // plus up to one extra base, capped.
    let base = shared.cfg.retry_base_ms.max(1);
    let backoff = base.saturating_mul(1 << (job.attempt - 1).min(16)).min(shared.cfg.retry_cap_ms);
    let jitter = splitmix(id ^ ((job.attempt as u64) << 32)) % base;
    job.status = JobStatus::Queued;
    job.message = format!("retrying after: {message}");
    queue.push(QueueEntry {
        id,
        cost: job.spec.predicted_cost(&shared.cfg.machine),
        enqueued_at_pop: pops,
        not_before: Some(Instant::now() + Duration::from_millis(backoff + jitter)),
    });
    shared.metrics.retries.inc();
    shared.metrics.depth.set(queue.len() as f64);
}

fn journal_append(journal: &mut Journal, event: &JournalEvent) {
    // A journal write failure must not take the worker down mid-job; the
    // event is lost but in-memory state stays consistent and the operator
    // is told.
    if let Err(e) = journal.append(event) {
        eprintln!("mdserve: journal append failed: {e}");
    }
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

struct ExecOutcome {
    resumed_from: Option<usize>,
    /// Steps actually integrated by this execution (total minus the
    /// checkpointed resume step) — the evidence that a resume did not
    /// re-run work already done.
    steps_this_attempt: usize,
    rollbacks: usize,
    corrupt_checkpoint_discarded: bool,
    final_temperature: f64,
}

enum ExecStop {
    /// Recovery exhausted its rollback budget; retryable at server level.
    Fault { kind: &'static str, message: String },
    Deadline,
    /// Shutdown between chunks; checkpoint flushed, job still pending.
    Interrupted { at_step: usize },
    Io(String),
}

fn execute(
    shared: &Shared,
    id: u64,
    spec: &JobSpec,
    attempt: usize,
    deadline: Option<Instant>,
) -> Result<ExecOutcome, ExecStop> {
    let ckpt = shared.ckpt_path(id);
    // Resume from the durable checkpoint if one exists. A checkpoint that
    // fails its checksum (torn write, disk corruption) is discarded — the
    // job degrades to running from scratch rather than failing.
    let mut corrupt_checkpoint_discarded = false;
    let resume = if ckpt.exists() {
        match load_checkpoint(&ckpt) {
            Ok((system, step)) => Some((system, step)),
            Err(e) => {
                eprintln!(
                    "mdserve: job {id}: checkpoint {} unreadable ({e}); starting from scratch",
                    ckpt.display()
                );
                corrupt_checkpoint_discarded = true;
                let _ = std::fs::remove_file(&ckpt);
                None
            }
        }
    } else {
        None
    };
    let resumed_from = resume.as_ref().map(|(_, step)| *step);

    let (lattice, _, mass) = spec.lattice().map_err(ExecStop::Io)?;
    // A resumed run keeps the checkpointed velocities — no re-thermalizing —
    // and seeds the step counter with the checkpoint's absolute step, so
    // the remaining-work computation below, thermostat schedules, and every
    // checkpoint written from here on stay in absolute job steps.
    let builder = match resume {
        Some((system, step)) => Simulation::from_system(system).start_step(step),
        None => Simulation::builder(lattice).mass(mass).temperature(spec.temperature),
    };
    let builder = match spec.potential.as_str() {
        "fe" => builder.potential(AnalyticEam::fe()),
        "cu" => builder.potential(AnalyticEam::cu()),
        _ => builder.pair_potential(LennardJones::new(0.0104, 3.4, 8.5)),
    };
    let mut sim = builder
        .strategy(StrategyKind::Serial)
        .threads(1)
        .dt(spec.dt)
        .seed(spec.seed)
        .build()
        .map_err(|e| ExecStop::Io(format!("cannot build simulation: {e}")))?;

    // Chaos hooks (all no-ops for production jobs).
    let kill_at = spec.chaos.kill_at_step;
    let nan_every = spec.chaos.nan_every;
    let mut injector =
        spec.chaos.nan_at_step.map(|s| FaultInjector::new(s, InjectedFault::NanForce { atom: 0 }));
    let mut observe = move |system: &mut System, step: usize| {
        if attempt == 1 && kill_at == Some(step) {
            panic!("chaos: worker killed at step {step}");
        }
        if let Some(inj) = injector.as_mut() {
            inj.poke(system, step);
        }
        if let Some(k) = nan_every {
            if k > 0 && step > 0 && step.is_multiple_of(k) {
                system.velocities_mut()[0].x = f64::NAN;
            }
        }
    };

    let mut done = sim.step_count();
    let total = spec.steps;
    let mut rollbacks = 0usize;
    while done < total {
        // Between chunks: honor shutdown and the wall-clock deadline.
        let phase = shared.state.lock().unwrap().phase;
        if phase == Phase::Stopping {
            save_checkpoint(&ckpt, sim.system(), sim.step_count())
                .map_err(|e| ExecStop::Io(format!("cannot flush checkpoint: {e}")))?;
            return Err(ExecStop::Interrupted { at_step: done });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ExecStop::Deadline);
        }
        let chunk = (total - done).min(spec.checkpoint_every);
        let cfg = RecoveryConfig {
            checkpoint_every: chunk,
            checkpoint_path: Some(ckpt.clone()),
            max_retries: spec.max_retries,
            ..RecoveryConfig::default()
        };
        match sim.run_with_recovery_observed(chunk, &cfg, &mut observe) {
            Ok(report) => {
                rollbacks += report.rollbacks;
                done += chunk;
            }
            Err(RecoveryError::RetriesExhausted { fault, retries }) => {
                return Err(ExecStop::Fault {
                    kind: fault.kind(),
                    message: format!("recovery exhausted after {retries} retries: {fault}"),
                });
            }
            Err(RecoveryError::Checkpoint(e)) => {
                return Err(ExecStop::Io(format!("checkpoint write failed: {e}")));
            }
        }
    }
    Ok(ExecOutcome {
        resumed_from,
        steps_this_attempt: total.saturating_sub(resumed_from.unwrap_or(0)),
        rollbacks,
        corrupt_checkpoint_discarded,
        final_temperature: sim.thermo().temperature,
    })
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

fn accept_loop(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    clients: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.state.lock().unwrap().phase != Phase::Running {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                match std::thread::Builder::new()
                    .name("mdserve-client".to_string())
                    .spawn(move || handle_client(&shared, stream))
                {
                    Ok(handle) => clients.lock().unwrap().push(handle),
                    Err(e) => eprintln!("mdserve: cannot spawn client thread: {e}"),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("mdserve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn handle_client(shared: &Shared, stream: TcpStream) {
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Persistent across timeout ticks: a request line that spans the read
    // timeout stays buffered instead of being torn into two garbage halves.
    let mut lines = wire::LineReader::new();
    loop {
        if shared.state.lock().unwrap().phase == Phase::Stopping {
            return;
        }
        let request = match lines.read_line(&mut reader) {
            Ok(Some(Ok(v))) => v,
            Ok(Some(Err(parse_err))) => {
                // Malformed JSON: answer with an error and keep the
                // connection — one bad request must not kill a session.
                let _ = wire::write_line(&mut writer, &err_with(format!("bad request: {parse_err}")));
                continue;
            }
            Ok(None) => return, // clean EOF: client dropped
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // client dropped mid-request
        };
        let response = dispatch(shared, &request);
        if wire::write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn ok_with(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut all = vec![("ok", JsonValue::Bool(true))];
    all.extend(fields);
    JsonValue::obj(all)
}

fn err_with(message: String) -> JsonValue {
    JsonValue::obj(vec![("ok", JsonValue::Bool(false)), ("error", JsonValue::Str(message))])
}

fn dispatch(shared: &Shared, request: &JsonValue) -> JsonValue {
    let Some(cmd) = request.get("cmd").and_then(JsonValue::as_str) else {
        return err_with("missing 'cmd'".to_string());
    };
    match cmd {
        "ping" => ok_with(vec![("pong", JsonValue::Bool(true))]),
        "submit" => {
            let Some(spec_json) = request.get("spec") else {
                return err_with("submit needs a 'spec' object".to_string());
            };
            let spec = match JobSpec::from_json(spec_json) {
                Ok(s) => s,
                Err(e) => return err_with(format!("invalid spec: {e}")),
            };
            if let Err(e) = spec.validate() {
                return err_with(format!("invalid spec: {e}"));
            }
            shared.metrics.submitted.inc();
            let mut st = shared.state.lock().unwrap();
            if st.phase != Phase::Running {
                shared.metrics.rejected.inc();
                return err_with("server is shutting down".to_string());
            }
            if st.queue.len() >= shared.cfg.queue_capacity {
                shared.metrics.rejected.inc();
                return err_with(format!(
                    "backpressure: queue full ({} queued, capacity {})",
                    st.queue.len(),
                    shared.cfg.queue_capacity
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            // Durability before acknowledgement: the submit record must be
            // fsynced before the client hears "accepted".
            if let Err(e) = st.journal.append(&JournalEvent::Submitted {
                job: id,
                spec: spec.clone(),
                at_unix_ms: unix_ms(),
            }) {
                shared.metrics.rejected.inc();
                return err_with(format!("cannot journal submit: {e}"));
            }
            let cost = spec.predicted_cost(&shared.cfg.machine);
            let pops = st.pops;
            st.jobs.insert(
                id,
                Job {
                    spec,
                    status: JobStatus::Queued,
                    attempt: 0,
                    resumed_from: None,
                    rollbacks: 0,
                    fault: None,
                    message: String::new(),
                    wall_ms: 0,
                    accepted_at: Instant::now(),
                    prior_elapsed_ms: 0,
                    recovered: false,
                },
            );
            st.queue.push(QueueEntry { id, cost, enqueued_at_pop: pops, not_before: None });
            shared.metrics.accepted.inc();
            shared.metrics.depth.set(st.queue.len() as f64);
            drop(st);
            shared.work_cv.notify_all();
            ok_with(vec![("job", JsonValue::num(id as f64))])
        }
        "status" => {
            let Some(id) = wire::get_u64(request, "job") else {
                return err_with("status needs a 'job' id".to_string());
            };
            let st = shared.state.lock().unwrap();
            match st.jobs.get(&id) {
                Some(job) => ok_with(vec![("job", job_json(id, job))]),
                None => err_with(format!("unknown job {id}")),
            }
        }
        "wait" => {
            let Some(id) = wire::get_u64(request, "job") else {
                return err_with("wait needs a 'job' id".to_string());
            };
            let timeout =
                Duration::from_millis(wire::get_u64(request, "timeout_ms").unwrap_or(60_000));
            let deadline = Instant::now() + timeout;
            let mut st = shared.state.lock().unwrap();
            loop {
                match st.jobs.get(&id) {
                    None => return err_with(format!("unknown job {id}")),
                    Some(job)
                        if matches!(job.status, JobStatus::Completed | JobStatus::Failed) =>
                    {
                        return ok_with(vec![("job", job_json(id, job))]);
                    }
                    Some(_) => {}
                }
                if st.phase == Phase::Stopping {
                    return err_with("server is shutting down".to_string());
                }
                let now = Instant::now();
                if now >= deadline {
                    let job = &st.jobs[&id];
                    return err_with(format!("timeout: job {id} still {}", job.status.name()));
                }
                let (guard, _) = shared
                    .done_cv
                    .wait_timeout(st, (deadline - now).min(Duration::from_millis(200)))
                    .unwrap();
                st = guard;
            }
        }
        "jobs" => {
            let st = shared.state.lock().unwrap();
            let list: Vec<JsonValue> = st.jobs.iter().map(|(id, job)| job_json(*id, job)).collect();
            ok_with(vec![("jobs", JsonValue::Arr(list))])
        }
        "stats" => {
            let st = shared.state.lock().unwrap();
            let m = &shared.metrics;
            let count =
                |s: JobStatus| st.jobs.values().filter(|j| j.status == s).count() as f64;
            ok_with(vec![(
                "stats",
                JsonValue::obj(vec![
                    ("submitted", JsonValue::num(m.submitted.get() as f64)),
                    ("accepted", JsonValue::num(m.accepted.get() as f64)),
                    ("rejected", JsonValue::num(m.rejected.get() as f64)),
                    ("started", JsonValue::num(m.started.get() as f64)),
                    ("completed", JsonValue::num(m.completed.get() as f64)),
                    ("failed", JsonValue::num(m.failed.get() as f64)),
                    ("retries", JsonValue::num(m.retries.get() as f64)),
                    ("resumes", JsonValue::num(m.resumes.get() as f64)),
                    ("interrupted", JsonValue::num(m.interrupted.get() as f64)),
                    ("depth", JsonValue::num(st.queue.len() as f64)),
                    ("running", JsonValue::num(st.running as f64)),
                    ("jobs_total", JsonValue::num(st.jobs.len() as f64)),
                    ("jobs_completed", JsonValue::num(count(JobStatus::Completed))),
                    ("jobs_failed", JsonValue::num(count(JobStatus::Failed))),
                    (
                        "jobs_pending",
                        JsonValue::num(count(JobStatus::Queued) + count(JobStatus::Running)),
                    ),
                ]),
            )])
        }
        "shutdown" => {
            let mode = match request.get("mode").and_then(JsonValue::as_str) {
                Some("drain") | None => ShutdownMode::Drain,
                Some("now") => ShutdownMode::Now,
                Some(other) => return err_with(format!("unknown shutdown mode '{other}'")),
            };
            let mut st = shared.state.lock().unwrap();
            match mode {
                ShutdownMode::Drain => {
                    if st.phase == Phase::Running {
                        st.phase = Phase::Draining;
                    }
                }
                ShutdownMode::Now => st.phase = Phase::Stopping,
            }
            drop(st);
            shared.work_cv.notify_all();
            shared.done_cv.notify_all();
            ok_with(vec![("stopping", JsonValue::Bool(true))])
        }
        other => err_with(format!("unknown command '{other}'")),
    }
}

fn job_json(id: u64, job: &Job) -> JsonValue {
    JsonValue::obj(vec![
        ("id", JsonValue::num(id as f64)),
        ("name", JsonValue::str(job.spec.name.clone())),
        ("status", JsonValue::str(job.status.name())),
        ("attempt", JsonValue::num(job.attempt as f64)),
        (
            "resumed_from_checkpoint",
            match job.resumed_from {
                Some(step) => JsonValue::num(step as f64),
                None => JsonValue::Null,
            },
        ),
        ("rollbacks", JsonValue::num(job.rollbacks as f64)),
        (
            "fault",
            match &job.fault {
                Some(f) => JsonValue::str(f.clone()),
                None => JsonValue::Null,
            },
        ),
        ("message", JsonValue::str(job.message.clone())),
        ("steps", JsonValue::num(job.spec.steps as f64)),
        ("wall_ms", JsonValue::num(job.wall_ms as f64)),
        ("recovered", JsonValue::Bool(job.recovered)),
    ])
}
