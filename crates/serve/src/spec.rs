//! Job specifications: what a client asks the server to simulate.

use md_geometry::{Lattice, LatticeSpec};
use md_perfmodel::MachineParams;
use md_sim::JsonValue;

/// Chaos-injection knobs, used by the fault-tolerance harness to prove the
/// supervision machinery works. All default to off; production clients
/// simply omit the `chaos` object.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSpec {
    /// Panic the executing worker when the simulation reaches this step —
    /// only on the job's *first* attempt, so the retry can prove
    /// checkpoint-backed resume.
    pub kill_at_step: Option<usize>,
    /// Inject a single non-finite force at this step (recoverable: the
    /// watchdog trips, the run rolls back and retries with a smaller dt).
    pub nan_at_step: Option<usize>,
    /// Inject a non-finite force at *every* multiple of this step count —
    /// an unrecoverable persistent fault; the job must fail cleanly with
    /// `NonFiniteForce` as the root cause.
    pub nan_every: Option<usize>,
}

impl ChaosSpec {
    fn is_off(&self) -> bool {
        *self == ChaosSpec::default()
    }
}

/// A simulation job: lattice, potential, run length, and supervision
/// policy. Parsed from the `spec` object of a `submit` request and stored
/// verbatim in the journal so that replay can re-queue it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen label (shows up in listings; not unique).
    pub name: String,
    /// Potential / material: `fe` (bcc iron EAM), `cu` (fcc copper EAM),
    /// or `lj` (fcc argon Lennard-Jones).
    pub potential: String,
    /// Lattice cells per edge.
    pub cells: usize,
    /// Total time-steps to integrate.
    pub steps: usize,
    /// Time-step (ps).
    pub dt: f64,
    /// Initial temperature (K).
    pub temperature: f64,
    /// Velocity seed.
    pub seed: u64,
    /// Checkpoint (and supervision chunk) interval in steps.
    pub checkpoint_every: usize,
    /// Rollback budget per checkpoint interval
    /// (see [`md_sim::RecoveryConfig::max_retries`]).
    pub max_retries: usize,
    /// Server-level retry budget: how many times a faulted or killed
    /// execution may be re-queued before the job is declared failed.
    pub max_job_retries: usize,
    /// Wall-clock deadline from acceptance (ms); checked between chunks.
    pub deadline_ms: Option<u64>,
    /// Fault-injection knobs for the chaos harness.
    pub chaos: ChaosSpec,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            name: String::new(),
            potential: "fe".to_string(),
            cells: 5,
            steps: 200,
            dt: 0.002,
            temperature: 300.0,
            seed: 1,
            checkpoint_every: 50,
            max_retries: 3,
            max_job_retries: 2,
            deadline_ms: None,
            chaos: ChaosSpec::default(),
        }
    }
}

impl JobSpec {
    /// The lattice, element symbol, and atomic mass for this spec.
    pub fn lattice(&self) -> Result<(LatticeSpec, &'static str, f64), String> {
        match self.potential.as_str() {
            "fe" => Ok((LatticeSpec::bcc_fe(self.cells), "Fe", 55.845)),
            "cu" => Ok((
                LatticeSpec::new(Lattice::Fcc, 3.615, [self.cells; 3]),
                "Cu",
                63.546,
            )),
            "lj" => Ok((
                LatticeSpec::new(Lattice::Fcc, 5.27, [self.cells; 3]),
                "Ar",
                39.948,
            )),
            other => Err(format!("unknown potential '{other}' (fe | cu | lj)")),
        }
    }

    /// Atom count implied by the lattice.
    pub fn atoms(&self) -> usize {
        self.lattice().map(|(spec, _, _)| spec.atom_count()).unwrap_or(0)
    }

    /// Predicted serial cost (seconds) of the whole job under the PR-5
    /// machine model: two sweeps (density + force) over ~29 stored pairs
    /// per atom per step. Used for shortest-job-first queue ordering.
    pub fn predicted_cost(&self, machine: &MachineParams) -> f64 {
        2.0 * self.atoms() as f64 * 29.0 * machine.pair_cost * self.steps as f64
    }

    /// Rejects specs the server is unwilling to run (unknown potential,
    /// degenerate or unreasonably large geometry, nonsense numerics).
    pub fn validate(&self) -> Result<(), String> {
        self.lattice()?;
        if !(3..=24).contains(&self.cells) {
            return Err(format!("cells {} out of range 3..=24", self.cells));
        }
        if self.steps == 0 || self.steps > 1_000_000 {
            return Err(format!("steps {} out of range 1..=1000000", self.steps));
        }
        if !(self.dt.is_finite() && self.dt > 0.0 && self.dt <= 0.1) {
            return Err(format!("dt {} must be finite in (0, 0.1] ps", self.dt));
        }
        if !(self.temperature.is_finite() && (0.0..=1.0e5).contains(&self.temperature)) {
            return Err(format!("temperature {} out of range", self.temperature));
        }
        if self.checkpoint_every == 0 {
            return Err("checkpoint_every must be >= 1".to_string());
        }
        if self.max_job_retries > 16 {
            return Err(format!("max_job_retries {} > 16", self.max_job_retries));
        }
        Ok(())
    }

    /// Serializes to the wire/journal JSON object (defaults included, so
    /// journal replay is insensitive to future default changes).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("name", JsonValue::str(self.name.clone())),
            ("potential", JsonValue::str(self.potential.clone())),
            ("cells", JsonValue::num(self.cells as f64)),
            ("steps", JsonValue::num(self.steps as f64)),
            ("dt", JsonValue::num(self.dt)),
            ("temperature", JsonValue::num(self.temperature)),
            ("seed", JsonValue::num(self.seed as f64)),
            ("checkpoint_every", JsonValue::num(self.checkpoint_every as f64)),
            ("max_retries", JsonValue::num(self.max_retries as f64)),
            ("max_job_retries", JsonValue::num(self.max_job_retries as f64)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", JsonValue::num(ms as f64)));
        }
        if !self.chaos.is_off() {
            let mut chaos = Vec::new();
            if let Some(s) = self.chaos.kill_at_step {
                chaos.push(("kill_at_step", JsonValue::num(s as f64)));
            }
            if let Some(s) = self.chaos.nan_at_step {
                chaos.push(("nan_at_step", JsonValue::num(s as f64)));
            }
            if let Some(s) = self.chaos.nan_every {
                chaos.push(("nan_every", JsonValue::num(s as f64)));
            }
            fields.push(("chaos", JsonValue::obj(chaos)));
        }
        JsonValue::obj(fields)
    }

    /// Parses a spec object. Unknown keys are rejected (a typo in a field
    /// name must not silently fall back to a default), absent keys take
    /// the documented defaults.
    pub fn from_json(value: &JsonValue) -> Result<JobSpec, String> {
        let fields = value.as_obj().ok_or("spec must be a JSON object")?;
        let mut spec = JobSpec::default();
        for (key, v) in fields {
            match key.as_str() {
                "name" => spec.name = v.as_str().ok_or("name must be a string")?.to_string(),
                "potential" => {
                    spec.potential = v.as_str().ok_or("potential must be a string")?.to_string()
                }
                "cells" => spec.cells = int_field(v, "cells")?,
                "steps" => spec.steps = int_field(v, "steps")?,
                "dt" => spec.dt = v.as_f64().ok_or("dt must be a number")?,
                "temperature" => {
                    spec.temperature = v.as_f64().ok_or("temperature must be a number")?
                }
                "seed" => spec.seed = int_field(v, "seed")? as u64,
                "checkpoint_every" => spec.checkpoint_every = int_field(v, "checkpoint_every")?,
                "max_retries" => spec.max_retries = int_field(v, "max_retries")?,
                "max_job_retries" => spec.max_job_retries = int_field(v, "max_job_retries")?,
                "deadline_ms" => spec.deadline_ms = Some(int_field(v, "deadline_ms")? as u64),
                "chaos" => spec.chaos = chaos_from_json(v)?,
                other => return Err(format!("unknown spec field '{other}'")),
            }
        }
        Ok(spec)
    }
}

fn int_field(v: &JsonValue, name: &str) -> Result<usize, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("{name} must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > 9.0e15 {
        return Err(format!("{name} must be a non-negative integer, got {n}"));
    }
    Ok(n as usize)
}

fn chaos_from_json(value: &JsonValue) -> Result<ChaosSpec, String> {
    let fields = value.as_obj().ok_or("chaos must be a JSON object")?;
    let mut chaos = ChaosSpec::default();
    for (key, v) in fields {
        match key.as_str() {
            "kill_at_step" => chaos.kill_at_step = Some(int_field(v, "kill_at_step")?),
            "nan_at_step" => chaos.nan_at_step = Some(int_field(v, "nan_at_step")?),
            "nan_every" => chaos.nan_every = Some(int_field(v, "nan_every")?),
            other => return Err(format!("unknown chaos field '{other}'")),
        }
    }
    Ok(chaos)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trips() {
        let spec = JobSpec {
            name: "storm-3".to_string(),
            potential: "cu".to_string(),
            cells: 4,
            steps: 120,
            dt: 0.001,
            temperature: 150.0,
            seed: 9,
            checkpoint_every: 40,
            max_retries: 2,
            max_job_retries: 1,
            deadline_ms: Some(5000),
            chaos: ChaosSpec {
                kill_at_step: Some(60),
                nan_at_step: None,
                nan_every: Some(10),
            },
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_fields_are_rejected_not_defaulted() {
        let v = JsonValue::parse(r#"{"stepz": 100}"#).unwrap();
        let err = JobSpec::from_json(&v).unwrap_err();
        assert!(err.contains("stepz"), "error should name the typo: {err}");
    }

    #[test]
    fn validation_bounds_geometry_and_numerics() {
        assert!(JobSpec::default().validate().is_ok());
        let bad = |f: fn(&mut JobSpec)| {
            let mut s = JobSpec::default();
            f(&mut s);
            s.validate().unwrap_err()
        };
        bad(|s| s.potential = "xx".to_string());
        bad(|s| s.cells = 2);
        bad(|s| s.cells = 100);
        bad(|s| s.steps = 0);
        bad(|s| s.dt = f64::NAN);
        bad(|s| s.dt = -1.0);
        bad(|s| s.checkpoint_every = 0);
    }

    #[test]
    fn predicted_cost_orders_by_work() {
        let machine = MachineParams::default();
        let small = JobSpec { cells: 4, steps: 100, ..JobSpec::default() };
        let big = JobSpec { cells: 8, steps: 100, ..JobSpec::default() };
        let long = JobSpec { cells: 4, steps: 1000, ..JobSpec::default() };
        assert!(small.predicted_cost(&machine) < big.predicted_cost(&machine));
        assert!(small.predicted_cost(&machine) < long.predicted_cost(&machine));
    }
}
